//! Scenario execution into structured [`Report`] documents.
//!
//! The `fgqos` CLI historically rendered its results with ad-hoc
//! `println!` calls. This module runs the same simulation but captures
//! the outcome as a `fgqos.exp-report` document — the shared currency of
//! the `exp_*` binaries, `fgqos --json`, and the `fgqos-serve` result
//! cache (which requires byte-deterministic output for equal inputs).

use crate::scenario::{ParseScenarioError, ScenarioSpec};
use fgqos_bench::report::Report;
use fgqos_serve::cache::fnv64;
use fgqos_serve::protocol::JobSpec;
use fgqos_serve::Executor;
use fgqos_sim::axi::MasterId;
use std::sync::Arc;

/// How to run a scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Cycle budget (also the cap when `until_done` is set).
    pub cycles: u64,
    /// Stop as soon as this master's workload completes.
    pub until_done: Option<String>,
}

/// Why a scenario run failed.
#[derive(Debug)]
pub enum RunError {
    /// The scenario text did not parse or validate.
    Parse(ParseScenarioError),
    /// The run itself was impossible (e.g. unknown `until_done` master).
    Run(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Parse(e) => write!(f, "{e}"),
            RunError::Run(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Runs `text` as a scenario and renders the outcome as a report.
///
/// The document is a pure function of `(text, opts)` — the simulator is
/// deterministic and every rendered number comes from it — which is what
/// lets `fgqos-serve` cache results content-addressed and still promise
/// byte-identical responses.
pub fn scenario_report(text: &str, opts: &RunOptions) -> Result<Report, RunError> {
    let spec = ScenarioSpec::parse(text).map_err(RunError::Parse)?;
    let (mut soc, fabric) = spec.build();

    let mut report = Report::new("scenario");
    report.banner(
        "SCENARIO",
        &format!("content {:016x}", fnv64(text.as_bytes())),
    );
    report.context("cycles", opts.cycles);

    let ran = match &opts.until_done {
        Some(name) => {
            let id = soc
                .master_id(name)
                .ok_or_else(|| RunError::Run(format!("--until-done: no master named {name:?}")))?;
            report.context("until_done", name);
            match soc.run_until_done(id, opts.cycles) {
                Some(t) => {
                    report.context("finished_at", t);
                    t.get()
                }
                None => {
                    report.note(format!(
                        "master {name:?} did not finish within {} cycles",
                        opts.cycles
                    ));
                    soc.now().get()
                }
            }
        }
        None => {
            soc.run(opts.cycles);
            opts.cycles
        }
    };
    report.context("simulated_cycles", ran);
    report.context("clock", soc.freq());

    report.header(&["master", "txns", "bytes", "bandwidth", "p50", "p99", "max"]);
    for i in 0..soc.master_count() {
        let id = MasterId::new(i);
        let st = soc.master_stats(id);
        report.row(vec![
            spec.masters[i].name.clone(),
            st.completed_txns.to_string(),
            st.bytes_completed.to_string(),
            format!("{}", soc.master_bandwidth(id)),
            st.latency.percentile(0.50).to_string(),
            st.latency.percentile(0.99).to_string(),
            st.latency.max().to_string(),
        ]);
    }
    report.blank();
    let d = soc.dram_stats();
    report.note(format!(
        "dram: {} bytes, row-hit ratio {:.2}, bus utilization {:.2}, {} refreshes",
        d.bytes_completed,
        d.row_hit_ratio(),
        d.bus_busy_cycles as f64 / ran.max(1) as f64,
        d.refreshes,
    ));
    report.blank();
    report.note("qos fabric:");
    for line in fabric.report().lines() {
        report.note(line);
    }
    Ok(report)
}

/// The simulator-backed [`Executor`] `fgqos serve` injects into
/// `fgqos-serve` (which is deliberately ignorant of scenario parsing).
pub fn serve_executor() -> Executor {
    Arc::new(|job: &JobSpec| {
        scenario_report(
            &job.scenario,
            &RunOptions {
                cycles: job.cycles,
                until_done: job.until_done.clone(),
            },
        )
        .map_err(|e| e.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO: &str = "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern seq
footprint 1M
txn 256
total 2000

[master dma]
kind accel
role best-effort
period 1000
budget 2K
pattern seq
base 0x40000000
footprint 4M
txn 512
";

    #[test]
    fn report_is_deterministic_for_equal_inputs() {
        let opts = RunOptions {
            cycles: 50_000,
            until_done: None,
        };
        let a = scenario_report(SCENARIO, &opts).expect("runs");
        let b = scenario_report(SCENARIO, &opts).expect("runs");
        assert_eq!(
            a.to_json().to_compact(),
            b.to_json().to_compact(),
            "equal inputs must serialize byte-identically"
        );
    }

    #[test]
    fn report_carries_the_cli_tables() {
        let opts = RunOptions {
            cycles: 50_000,
            until_done: None,
        };
        let r = scenario_report(SCENARIO, &opts).expect("runs");
        let text = r.render_text();
        assert!(text.contains("cpu"), "master rows present");
        assert!(text.contains("dram:"), "dram summary present");
        assert!(text.contains("qos fabric:"), "fabric report present");
    }

    #[test]
    fn until_done_unknown_master_is_a_run_error() {
        let opts = RunOptions {
            cycles: 1_000,
            until_done: Some("ghost".into()),
        };
        match scenario_report(SCENARIO, &opts) {
            Err(RunError::Run(m)) => assert!(m.contains("ghost")),
            other => panic!("expected Run error, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_surface_with_line_numbers() {
        match scenario_report("bogus line\n", &RunOptions::default()) {
            Err(RunError::Parse(e)) => assert_eq!(e.line, 1),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn executor_matches_direct_calls() {
        let exec = serve_executor();
        let job = JobSpec {
            scenario: SCENARIO.to_string(),
            cycles: 50_000,
            until_done: None,
        };
        let via_exec = exec(&job).expect("executes");
        let direct = scenario_report(
            SCENARIO,
            &RunOptions {
                cycles: 50_000,
                until_done: None,
            },
        )
        .expect("runs");
        assert_eq!(
            via_exec.to_json().to_compact(),
            direct.to_json().to_compact()
        );
    }
}
