//! Scenario execution into structured [`Report`] documents.
//!
//! The `fgqos` CLI historically rendered its results with ad-hoc
//! `println!` calls. This module runs the same simulation but captures
//! the outcome as a `fgqos.exp-report` document — the shared currency of
//! the `exp_*` binaries, `fgqos --json`, and the `fgqos-serve` result
//! cache (which requires byte-deterministic output for equal inputs).

use crate::scenario::{
    ExpectKind, ExpectSpec, LatencyMetric, ParseScenarioError, Role, ScenarioSpec,
};
use fgqos_bench::report::{Block, Report};
use fgqos_core::fabric::QosFabric;
use fgqos_core::program::ProgramOp;
use fgqos_serve::cache::fnv64;
use fgqos_serve::live::{BoundaryCmd, JournalEntry, LiveSession, LIVE_SCHEMA, LIVE_VERSION};
#[cfg(test)]
use fgqos_serve::protocol::BatchKind;
use fgqos_serve::protocol::{BatchPoint, BatchSpec, ControlSet, JobSpec, LiveSpec};
use fgqos_serve::{BatchExecutor, Executor, LiveExecutor, SnapshotExecutor};
use fgqos_sim::axi::{MasterId, BEAT_BYTES, MAX_BURST_BEATS};
use fgqos_sim::json::Value;
use fgqos_sim::snapshot::SocSnapshot;
use fgqos_sim::system::{Soc, WindowBoundary};
use fgqos_sim::{BlobStore, ForkCtx, SnapshotBlob, StateHasher};
use std::sync::Arc;

/// How to run a scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Cycle budget (also the cap when `until_done` is set).
    pub cycles: u64,
    /// Stop as soon as this master's workload completes.
    pub until_done: Option<String>,
}

/// Why a scenario run failed.
#[derive(Debug)]
pub enum RunError {
    /// The scenario text did not parse or validate.
    Parse(ParseScenarioError),
    /// The run itself was impossible (e.g. unknown `until_done` master).
    Run(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Parse(e) => write!(f, "{e}"),
            RunError::Run(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Runs `text` as a scenario and renders the outcome as a report.
///
/// The document is a pure function of `(text, opts)` — the simulator is
/// deterministic and every rendered number comes from it — which is what
/// lets `fgqos-serve` cache results content-addressed and still promise
/// byte-identical responses.
pub fn scenario_report(text: &str, opts: &RunOptions) -> Result<Report, RunError> {
    let spec = ScenarioSpec::parse(text).map_err(RunError::Parse)?;
    let (mut soc, fabric) = spec.build();

    let mut report = Report::new("scenario");
    report.banner(
        "SCENARIO",
        &format!("content {:016x}", fnv64(text.as_bytes())),
    );
    report.context("cycles", opts.cycles);

    let ran = match &opts.until_done {
        Some(name) => {
            let id = soc
                .master_id(name)
                .ok_or_else(|| RunError::Run(format!("--until-done: no master named {name:?}")))?;
            report.context("until_done", name);
            match soc.run_until_done(id, opts.cycles) {
                Some(t) => {
                    report.context("finished_at", t);
                    t.get()
                }
                None => {
                    report.note(format!(
                        "master {name:?} did not finish within {} cycles",
                        opts.cycles
                    ));
                    soc.now().get()
                }
            }
        }
        None => {
            soc.run(opts.cycles);
            opts.cycles
        }
    };
    report.context("simulated_cycles", ran);
    report.context("clock", soc.freq());
    leap_block(&mut report, &soc);
    stats_tables(&mut report, &spec, &soc, &fabric, ran);
    assertion_block(&mut report, &spec, &soc, &fabric);
    Ok(report)
}

/// Appends steady-state leap telemetry to a scenario report.
///
/// Purely informational: leap-on and leap-off runs produce bit-identical
/// simulation results (proptest-pinned in `tests/leap.rs`), so every
/// *measured* number in the document is unaffected — these lines only say
/// how much of the horizon was crossed algebraically. They stay a pure
/// function of `(text, opts)` under a fixed environment; flipping
/// `FGQOS_NO_LEAP`/`FGQOS_NAIVE` changes them (and nothing else), which is
/// why point reports — compared byte-for-byte across mixed naive/fast
/// fleet workers in CI — deliberately do *not* carry this block.
fn leap_block(report: &mut Report, soc: &Soc) {
    let leap = soc.leap_telemetry();
    report.context("leap_enabled", leap.enabled);
    report.context("leap_periods_detected", leap.periods_detected);
    report.context("leap_cycles_skipped", leap.cycles_skipped);
    report.context("leap_leaps", leap.leaps);
}

/// Largest single AXI burst in bytes. Window accounting can overshoot by
/// at most one in-flight burst even under correct regulation, so
/// `expect isolation(...)` tolerates exactly this much per-window
/// overshoot and no more.
const ISOLATION_OVERSHOOT_SLACK: u64 = MAX_BURST_BEATS as u64 * BEAT_BYTES;

/// Outcome of one `expect` directive after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertionResult {
    /// The directive as written in the scenario (without the keyword).
    pub text: String,
    /// Human-readable measured value backing the verdict.
    pub measured: String,
    /// Whether the directive holds (negation already applied).
    pub pass: bool,
}

/// Evaluates every `expect` directive of `spec` against the finished run.
///
/// Targets were validated at parse time (the master exists and has the
/// role the metric needs), so lookups here cannot fail. Results come back
/// in declaration order.
pub fn evaluate_expectations(
    spec: &ScenarioSpec,
    soc: &Soc,
    fabric: &QosFabric,
) -> Vec<AssertionResult> {
    spec.expects
        .iter()
        .map(|e| evaluate_expect(e, spec, soc, fabric))
        .collect()
}

fn evaluate_expect(
    e: &ExpectSpec,
    spec: &ScenarioSpec,
    soc: &Soc,
    fabric: &QosFabric,
) -> AssertionResult {
    let stats_of = |name: &str| {
        let id = soc
            .master_id(name)
            .expect("expect target validated at parse time");
        soc.master_stats(id)
    };
    let (measured, holds) = match &e.kind {
        ExpectKind::Latency {
            metric,
            master,
            op,
            value,
        } => {
            let st = stats_of(master);
            let got = match metric {
                LatencyMetric::P50 => st.latency.percentile(0.50),
                LatencyMetric::P99 => st.latency.percentile(0.99),
                LatencyMetric::Max => st.latency.max(),
            };
            (format!("{got} cycles"), op.holds(got, *value))
        }
        ExpectKind::Bytes { master, op, value } => {
            let got = stats_of(master).bytes_completed;
            (format!("{got} bytes"), op.holds(got, *value))
        }
        ExpectKind::WithinBudget { master, percent } => {
            let d = fabric
                .driver(master)
                .expect("expect target validated at parse time");
            let t = d.telemetry();
            if t.windows == 0 {
                ("no completed windows".to_string(), false)
            } else {
                // Average over *completed* windows only: the open window
                // is still filling and would bias the mean downward.
                let avg = (t.total_bytes - t.window_bytes) as f64 / t.windows as f64;
                let budget = f64::from(d.budget_bytes());
                let dev = if budget == 0.0 {
                    if avg == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (avg - budget).abs() / budget * 100.0
                };
                (
                    format!("{avg:.0} bytes/window, {dev:.1}% off budget"),
                    dev <= *percent,
                )
            }
        }
        ExpectKind::Isolation { master } => {
            let stalls = stats_of(master).gate_stall_cycles;
            let worst = spec
                .masters
                .iter()
                .filter(|m| m.role == Role::BestEffort)
                .filter_map(|m| {
                    fabric
                        .driver(&m.name)
                        .map(|d| (m.name.as_str(), d.telemetry().max_overshoot))
                })
                .max_by_key(|(_, o)| *o);
            let (worst_name, worst_over) = worst.unwrap_or(("-", 0));
            (
                format!("{stalls} gate stalls, worst overshoot {worst_over}B ({worst_name})"),
                stalls == 0 && worst_over <= ISOLATION_OVERSHOOT_SLACK,
            )
        }
    };
    AssertionResult {
        text: e.text.clone(),
        measured,
        pass: if e.negated { !holds } else { holds },
    }
}

/// Appends the assertion verdict table (and summary context lines) when
/// the scenario carries `expect` directives; a scenario without them gets
/// no block at all, keeping v1 report bytes unchanged.
fn assertion_block(report: &mut Report, spec: &ScenarioSpec, soc: &Soc, fabric: &QosFabric) {
    let results = evaluate_expectations(spec, soc, fabric);
    if results.is_empty() {
        return;
    }
    let passed = results.iter().filter(|r| r.pass).count() as u64;
    let failed = results.len() as u64 - passed;
    report.blank();
    report.note("assertions:");
    report.context("assertions_passed", passed);
    report.context("assertions_failed", failed);
    report.header(&["assertion", "measured", "verdict"]);
    for r in results {
        report.row(vec![
            r.text,
            r.measured,
            if r.pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
}

/// Reads the assertion summary back out of a rendered [`Report`]:
/// `Some((passed, failed))` when the scenario carried `expect`
/// directives, `None` otherwise. This is how the CLI decides its exit
/// status for reports that crossed the serve wire as documents.
pub fn assertion_outcome(report: &Report) -> Option<(u64, u64)> {
    let mut passed = None;
    let mut failed = None;
    for b in report.blocks() {
        if let Block::Context { key, value } = b {
            match key.as_str() {
                "assertions_passed" => passed = value.parse().ok(),
                "assertions_failed" => failed = value.parse().ok(),
                _ => {}
            }
        }
    }
    Some((passed?, failed?))
}

/// The shared result body: per-master table, DRAM summary and the QoS
/// fabric report. `ran` normalizes bus utilization.
fn stats_tables(report: &mut Report, spec: &ScenarioSpec, soc: &Soc, fabric: &QosFabric, ran: u64) {
    report.header(&["master", "txns", "bytes", "bandwidth", "p50", "p99", "max"]);
    for i in 0..soc.master_count() {
        let id = MasterId::new(i);
        let st = soc.master_stats(id);
        report.row(vec![
            spec.masters[i].name.clone(),
            st.completed_txns.to_string(),
            st.bytes_completed.to_string(),
            format!("{}", soc.master_bandwidth(id)),
            st.latency.percentile(0.50).to_string(),
            st.latency.percentile(0.99).to_string(),
            st.latency.max().to_string(),
        ]);
    }
    report.blank();
    let d = soc.dram_stats();
    report.note(format!(
        "dram: {} bytes, row-hit ratio {:.2}, bus utilization {:.2}, {} refreshes",
        d.bytes_completed,
        d.row_hit_ratio(),
        d.bus_busy_cycles as f64 / ran.max(1) as f64,
        d.refreshes,
    ));
    report.blank();
    report.note("qos fabric:");
    for line in fabric.report().lines() {
        report.note(line);
    }
}

/// Slack appended to a batch's `warmup` while searching for a quiesced
/// boundary; when no gap opens in this range the batch falls back to
/// per-point cold runs of the identical schedule.
const BATCH_QUIESCE_SLACK: u64 = 100_000;

/// Runs a warm-start batch: one report per point, in point order.
///
/// The scenario is built once and warmed for `spec.warmup` cycles, then
/// advanced to the first quiesced boundary within a fixed slack
/// (`BATCH_QUIESCE_SLACK`). From there every point forks the boundary
/// [`SocSnapshot`], programs its
/// `period`/`budget` into every best-effort regulator and runs the
/// divergent tail (`spec.cycles`, or `until_done` capped by it). When no
/// quiesced boundary opens — a scenario that keeps the pipeline
/// saturated through the slack window — each point instead replays the
/// identical schedule cold, so the result is the same pure function of
/// `(spec, point)` either way; only the wall-clock differs.
pub fn batch_reports(spec: &BatchSpec) -> Result<Vec<Report>, RunError> {
    batch_reports_with_store(spec, None)
}

/// [`batch_reports`] with an optional shared warm-boundary store.
///
/// When a [`BlobStore`] is supplied, the quiesced boundary is looked up
/// by [`warm_boundary_key`] before any simulation: a hit restores the
/// serialized snapshot (fingerprint-verified against a freshly built
/// skeleton) and skips the warmup run entirely; a miss warms as usual
/// and files the boundary blob for every later run — including runs in
/// *other processes*, which is what lets a sharded serve fleet warm each
/// distinct `(scenario, warmup)` once instead of once per worker.
/// Results are byte-identical either way: the blob's fingerprint check
/// proves the restored state equals the in-memory boundary bit for bit.
pub fn batch_reports_with_store(
    spec: &BatchSpec,
    store: Option<&BlobStore>,
) -> Result<Vec<Report>, RunError> {
    let parsed = ScenarioSpec::parse(&spec.scenario).map_err(RunError::Parse)?;
    // Resolve `until_done` before simulating anything: an unknown
    // master fails the batch up front, not per point. The probe build
    // also tells us which simulation core is in effect — part of the
    // warm-boundary key because the core flag is in the snapshot stream.
    let (probe, _) = parsed.build();
    if let Some(name) = &spec.until_done {
        if probe.master_id(name).is_none() {
            return Err(RunError::Run(format!(
                "--until-done: no master named {name:?}"
            )));
        }
    }
    let key = warm_boundary_key(&spec.scenario, spec.warmup, probe.is_naive());
    if let Some(store) = store {
        if let Ok(Some(encoded)) = store.get_named(&key) {
            if let Ok(blob) = SnapshotBlob::decode(&encoded) {
                let (soc, fabric) = parsed.build();
                if let Ok(snap) = SocSnapshot::load_into(soc, &blob) {
                    return point_forks(&parsed, &snap, &fabric, spec);
                }
                // A blob that fails to load (stale format, wrong
                // recipe) is a miss: fall through and re-warm.
            }
        }
    }
    let (mut soc, fabric) = parsed.build();
    soc.run(spec.warmup);
    if soc.quiesce_point(BATCH_QUIESCE_SLACK).is_some() {
        let snap = soc
            .snapshot()
            .map_err(|e| RunError::Run(format!("boundary snapshot failed: {e}")))?;
        if let Some(store) = store {
            // Best-effort write-through; a full disk must not fail the
            // batch itself.
            let _ = store.put_named(&key, &snap.to_blob(&spec.scenario).encode());
        }
        point_forks(&parsed, &snap, &fabric, spec)
    } else {
        // Cold fallback: the failed quiesce search above advanced the
        // warm SoC to warmup + slack; each cold replay runs the same
        // schedule so boundary and results stay deterministic.
        spec.points
            .iter()
            .map(|point| {
                let (mut soc, fabric) = parsed.build();
                soc.run(spec.warmup);
                let _ = soc.quiesce_point(BATCH_QUIESCE_SLACK);
                point_report(&parsed, &mut soc, &fabric, spec, point)
            })
            .collect()
    }
}

/// Runs every batch point as a fork of the warm boundary, in point order.
fn point_forks(
    parsed: &ScenarioSpec,
    snap: &SocSnapshot,
    fabric: &QosFabric,
    spec: &BatchSpec,
) -> Result<Vec<Report>, RunError> {
    spec.points
        .iter()
        .map(|point| {
            let mut ctx = ForkCtx::new();
            let mut fork = snap.fork_with(&mut ctx);
            let fabric = fabric.fork_rebound(&mut ctx);
            point_report(parsed, &mut fork, &fabric, spec, point)
        })
        .collect()
}

/// Key under which a batch's warm boundary is filed in a [`BlobStore`]:
/// a hash of every input that shapes the boundary state — scenario text,
/// warmup budget, and the simulation core in use (the core flag is part
/// of the snapshot stream, so the two cores produce distinct blobs).
pub fn warm_boundary_key(scenario: &str, warmup: u64, naive: bool) -> String {
    let mut h = StateHasher::new();
    h.section("fgqos.warm-boundary-key");
    h.write_str(scenario);
    h.write_u64(warmup);
    h.write_bool(naive);
    format!("{:016x}", h.finish())
}

/// Warms `text` for `warmup` cycles, advances to the first quiesced
/// boundary within the usual slack and returns the boundary as an
/// encoded [`SnapshotBlob`]. `Ok(None)` means the scenario kept the
/// pipeline saturated through the whole slack window and has no
/// serializable boundary.
pub fn warm_boundary_blob(text: &str, warmup: u64) -> Result<Option<Vec<u8>>, RunError> {
    let parsed = ScenarioSpec::parse(text).map_err(RunError::Parse)?;
    let (mut soc, _fabric) = parsed.build();
    soc.run(warmup);
    if soc.quiesce_point(BATCH_QUIESCE_SLACK).is_none() {
        return Ok(None);
    }
    let snap = soc
        .snapshot()
        .map_err(|e| RunError::Run(format!("boundary snapshot failed: {e}")))?;
    Ok(Some(snap.to_blob(text).encode()))
}

/// Restores a serialized snapshot end to end: rebuilds the SoC skeleton
/// from the scenario text the blob carries, loads the state stream into
/// it (re-verifying the fingerprint) and returns the live snapshot with
/// its parsed recipe and QoS fabric. The fabric's drivers share register
/// files with the loaded SoC through the usual `Arc`s, so one restore
/// fixes both the hardware and software views.
pub fn restore_snapshot(
    blob: &SnapshotBlob,
) -> Result<(ScenarioSpec, SocSnapshot, QosFabric), RunError> {
    let parsed = ScenarioSpec::parse(&blob.scenario).map_err(RunError::Parse)?;
    let (soc, fabric) = parsed.build();
    let snap = SocSnapshot::load_into(soc, blob)
        .map_err(|e| RunError::Run(format!("snapshot load failed: {e}")))?;
    Ok((parsed, snap, fabric))
}

/// Programs one point's knobs at the boundary and renders its divergent
/// run, mirroring [`scenario_report`]'s document shape.
fn point_report(
    parsed: &ScenarioSpec,
    soc: &mut Soc,
    fabric: &QosFabric,
    spec: &BatchSpec,
    point: &BatchPoint,
) -> Result<Report, RunError> {
    fabric.set_best_effort_budgets(
        point.period.min(u32::MAX as u64) as u32,
        point.budget.min(u32::MAX as u64) as u32,
    );
    let boundary = soc.now().get();
    let mut report = Report::new("scenario-point");
    report.banner(
        "SCENARIO-POINT",
        &format!("content {:016x}", fnv64(spec.scenario.as_bytes())),
    );
    report.context("cycles", spec.cycles);
    report.context("warmup", spec.warmup);
    report.context("boundary", boundary);
    report.context("period", point.period);
    report.context("budget", point.budget);
    let ran = match &spec.until_done {
        Some(name) => {
            let id = soc
                .master_id(name)
                .ok_or_else(|| RunError::Run(format!("--until-done: no master named {name:?}")))?;
            report.context("until_done", name);
            match soc.run_until_done(id, spec.cycles) {
                Some(t) => {
                    report.context("finished_at", t);
                    t.get()
                }
                None => {
                    report.note(format!(
                        "master {name:?} did not finish within {} cycles of the boundary",
                        spec.cycles
                    ));
                    soc.now().get()
                }
            }
        }
        None => {
            soc.run(spec.cycles);
            soc.now().get()
        }
    };
    report.context("simulated_cycles", ran);
    report.context("clock", soc.freq());
    stats_tables(&mut report, parsed, soc, fabric, ran);
    assertion_block(&mut report, parsed, soc, fabric);
    Ok(report)
}

/// The simulator-backed [`Executor`] `fgqos serve` injects into
/// `fgqos-serve` (which is deliberately ignorant of scenario parsing).
pub fn serve_executor() -> Executor {
    Arc::new(|job: &JobSpec| {
        scenario_report(
            &job.scenario,
            &RunOptions {
                cycles: job.cycles,
                until_done: job.until_done.clone(),
            },
        )
        .map_err(|e| e.to_string())
    })
}

/// The simulator-backed [`BatchExecutor`] behind `submit_batch`: the
/// warm-start path of [`batch_reports`], injected next to
/// [`serve_executor`].
pub fn serve_batch_executor() -> BatchExecutor {
    Arc::new(|spec: &BatchSpec| batch_reports(spec).map_err(|e| e.to_string()))
}

/// A [`BatchExecutor`] backed by a shared warm-boundary [`BlobStore`] at
/// `dir`: the first batch for a `(scenario, warmup)` pair warms and
/// persists the quiesced boundary; later batches — including ones in
/// *other worker processes* sharing the directory — restore it from the
/// blob instead of re-warming. Reports are byte-identical either way
/// (that equivalence is test- and proptest-enforced), so the cache
/// purity contract of [`BatchExecutor`] still holds.
pub fn serve_batch_executor_with_store(dir: impl Into<std::path::PathBuf>) -> BatchExecutor {
    let dir = dir.into();
    Arc::new(move |spec: &BatchSpec| {
        let store = BlobStore::open(&dir).map_err(|e| format!("warm-boundary store: {e}"))?;
        batch_reports_with_store(spec, Some(&store)).map_err(|e| e.to_string())
    })
}

/// The simulator-backed [`SnapshotExecutor`] serving the v3 `snapshot`
/// op: [`warm_boundary_blob`] behind the serve crate's injection seam.
pub fn serve_snapshot_executor() -> SnapshotExecutor {
    Arc::new(|scenario: &str, warmup: u64| {
        warm_boundary_blob(scenario, warmup).map_err(|e| e.to_string())
    })
}

/// Phase-name prefix reserved for journal replay. Scenarios may not
/// declare phases with this prefix, so [`replay_scenario_text`] can
/// always append its synthesized sections without a name collision.
pub const LIVE_PHASE_PREFIX: &str = "live_ctl_";

/// How to run a scenario live (windowed, with runtime control writes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveOptions {
    /// Cycle budget for the run.
    pub cycles: u64,
    /// Telemetry window in cycles: one frame per window, and the
    /// granularity at which queued control writes take effect.
    pub window: u64,
    /// Force the simulation core (`Some(true)` = naive), instead of the
    /// `FGQOS_NAIVE` environment default. Tests pin this so replay
    /// byte-identity is checked under a *known* core.
    pub naive: Option<bool>,
    /// Force the steady-state leap engine on/off, instead of the
    /// `FGQOS_LEAP`/`FGQOS_NO_LEAP` environment default.
    pub leap: Option<bool>,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            cycles: 1_000_000,
            window: fgqos_serve::protocol::DEFAULT_LIVE_WINDOW,
            naive: None,
            leap: None,
        }
    }
}

/// One event of a live run, handed to the caller's sink as it happens.
#[derive(Debug)]
pub enum LiveEvent<'a> {
    /// A control write was accepted and applied at a window boundary.
    Control(&'a JournalEntry),
    /// A telemetry frame was read out at a window boundary.
    Frame(&'a Value),
}

/// Everything a finished live run produced.
#[derive(Debug)]
pub struct LiveOutcome {
    /// One telemetry frame per window boundary, in order (also handed
    /// to the sink as [`LiveEvent::Frame`] while running).
    pub frames: Vec<Value>,
    /// Accepted control writes, in application order.
    pub journal: Vec<JournalEntry>,
    /// The final report. Its banner hashes [`LiveOutcome::replay_scenario`],
    /// and it deliberately omits the leap-telemetry block, so a
    /// monolithic [`live_replay_report`] of the replay scenario renders
    /// byte-identically.
    pub report: Report,
    /// The original scenario text with the journal appended as
    /// synthesized `[phase live_ctl_<i>]` sections.
    pub replay_scenario: String,
    /// [`Soc::fingerprint`] of the final architectural state.
    pub fingerprint: u64,
    /// The run stopped early at a window boundary (the control source
    /// asked for an abort); replay identity is not claimed for the
    /// partial run.
    pub aborted: bool,
}

fn control_op(set: ControlSet) -> ProgramOp {
    match set {
        ControlSet::Budget(b) => ProgramOp::Budget(b),
        ControlSet::Period(p) => ProgramOp::Period(p),
        ControlSet::Enable(e) => ProgramOp::Enabled(e),
    }
}

/// Cumulative per-master counters, remembered across boundaries so each
/// frame can carry window deltas.
#[derive(Clone, Copy, Default)]
struct MasterCum {
    bytes: u64,
    txns: u64,
    gate: u64,
    fifo: u64,
}

fn cum_snapshot(soc: &Soc) -> Vec<MasterCum> {
    (0..soc.master_count())
        .map(|i| {
            let st = soc.master_stats(MasterId::new(i));
            MasterCum {
                bytes: st.bytes_completed,
                txns: st.completed_txns,
                gate: st.gate_stall_cycles,
                fifo: st.fifo_stall_cycles,
            }
        })
        .collect()
}

/// Renders one `fgqos.live` telemetry frame at a window boundary:
/// per-master window deltas (bytes, txns, stalls) next to cumulative
/// totals and latency percentiles, leap telemetry, and the control
/// writes this boundary absorbed.
fn live_frame(
    run_id: u64,
    soc: &Soc,
    spec: &ScenarioSpec,
    b: &WindowBoundary,
    prev: &mut [MasterCum],
    applied: &[JournalEntry],
) -> Value {
    let mut f = Value::obj();
    f.set("schema", Value::str(LIVE_SCHEMA));
    f.set("version", Value::from(LIVE_VERSION));
    f.set("stream", Value::str("frame"));
    f.set("run", Value::from(run_id));
    f.set("window", Value::from(b.index));
    f.set("start", Value::from(b.start.get()));
    f.set("end", Value::from(b.end.get()));
    f.set("last", Value::from(b.last));
    let mut masters = Value::arr();
    for (i, prev_cum) in prev.iter_mut().enumerate().take(soc.master_count()) {
        let st = soc.master_stats(MasterId::new(i));
        let cum = MasterCum {
            bytes: st.bytes_completed,
            txns: st.completed_txns,
            gate: st.gate_stall_cycles,
            fifo: st.fifo_stall_cycles,
        };
        let mut m = Value::obj();
        m.set("name", Value::str(spec.masters[i].name.clone()));
        m.set("bytes", Value::from(cum.bytes - prev_cum.bytes));
        m.set("txns", Value::from(cum.txns - prev_cum.txns));
        m.set("gate_stalls", Value::from(cum.gate - prev_cum.gate));
        m.set("fifo_stalls", Value::from(cum.fifo - prev_cum.fifo));
        m.set("total_bytes", Value::from(cum.bytes));
        m.set("p50", Value::from(st.latency.percentile(0.50)));
        m.set("p99", Value::from(st.latency.percentile(0.99)));
        m.set("max", Value::from(st.latency.max()));
        masters.push(m);
        *prev_cum = cum;
    }
    f.set("masters", masters);
    let leap = soc.leap_telemetry();
    let mut lv = Value::obj();
    lv.set("enabled", Value::from(leap.enabled));
    lv.set("periods_detected", Value::from(leap.periods_detected));
    lv.set("cycles_skipped", Value::from(leap.cycles_skipped));
    lv.set("leaps", Value::from(leap.leaps));
    f.set("leap", lv);
    let mut controls = Value::arr();
    for e in applied {
        controls.push(e.to_json());
    }
    f.set("controls", controls);
    f
}

/// Synthesizes the replay scenario for a live run: the original text
/// with one `[phase live_ctl_<i>]` section appended per journal entry,
/// in journal order.
///
/// Each section programs exactly what the live write programmed, `at`
/// the boundary cycle the write took effect. Appending (rather than
/// merging into existing phases) preserves ordering under the scenario
/// engine's *stable* sort by `at`: an original `[phase]` op scheduled at
/// the same cycle still fires first, matching the live run, where the
/// boundary settles scheduled controllers before external writes land.
pub fn replay_scenario_text(text: &str, journal: &[JournalEntry]) -> String {
    let mut out = String::from(text);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    for (i, e) in journal.iter().enumerate() {
        let value = match e.set {
            ControlSet::Budget(b) => b.to_string(),
            ControlSet::Period(p) => p.to_string(),
            ControlSet::Enable(true) => "on".to_string(),
            ControlSet::Enable(false) => "off".to_string(),
        };
        out.push_str(&format!(
            "\n[phase {LIVE_PHASE_PREFIX}{i}]\nat {}\n{} {} {}\n",
            e.at,
            e.set.key(),
            e.target,
            value
        ));
    }
    out
}

/// The shared live-report shape: like [`scenario_report`]'s document but
/// bannered with the *replay* scenario's content hash and without the
/// leap-telemetry block (leap counters depend on run segmentation, and
/// the whole point of this document is byte-comparison between a
/// windowed live run and its monolithic replay).
fn live_style_report(
    replay_text: &str,
    spec: &ScenarioSpec,
    soc: &Soc,
    fabric: &QosFabric,
    cycles: u64,
    ran: u64,
) -> Report {
    let mut report = Report::new("scenario-live");
    report.banner(
        "SCENARIO-LIVE",
        &format!("content {:016x}", fnv64(replay_text.as_bytes())),
    );
    report.context("cycles", cycles);
    report.context("simulated_cycles", ran);
    report.context("clock", soc.freq());
    stats_tables(&mut report, spec, soc, fabric, ran);
    assertion_block(&mut report, spec, soc, fabric);
    report
}

fn build_live_soc(
    text: &str,
    opts: &LiveOptions,
) -> Result<(ScenarioSpec, Soc, QosFabric), RunError> {
    if opts.window == 0 {
        return Err(RunError::Run("window must be at least one cycle".into()));
    }
    if opts.cycles == 0 {
        return Err(RunError::Run("cycles must be at least one cycle".into()));
    }
    let spec = ScenarioSpec::parse(text).map_err(RunError::Parse)?;
    let (mut soc, fabric) = spec.build();
    if let Some(naive) = opts.naive {
        soc.set_naive(naive);
    }
    if let Some(leap) = opts.leap {
        soc.set_leap(leap);
    }
    Ok((spec, soc, fabric))
}

/// Masters a live run accepts control writes for: the scenario's
/// best-effort masters, in declaration order (the same set `[phase]`
/// sections may target).
pub fn live_targets(spec: &ScenarioSpec) -> Vec<String> {
    spec.masters
        .iter()
        .filter(|m| m.role == Role::BestEffort)
        .map(|m| m.name.clone())
        .collect()
}

/// Runs `text` live: in `opts.window`-sized segments with explicit
/// yield points at every window boundary, where `poll` supplies queued
/// control writes and `sink` observes accepted writes and telemetry
/// frames as they happen.
///
/// At each **interior** boundary the drained writes are applied through
/// [`ProgramOp::apply`] — the single code path `[phase]` directives use —
/// and journaled, stamped with the boundary's sim cycle. The **final**
/// boundary accepts no writes (a monolithic run never executes the
/// deadline cycle, so a write there could not be replayed; see
/// [`Soc::run_windowed`]). A write whose target is not one of
/// [`live_targets`] is silently dropped — the serve session screens
/// targets at `control` time, so the engine only double-checks.
///
/// The determinism contract: replaying
/// [`LiveOutcome::replay_scenario`] monolithically via
/// [`live_replay_report`] (same `opts`) reproduces
/// [`LiveOutcome::report`] and [`LiveOutcome::fingerprint`] byte for
/// byte. With an empty journal this degenerates to the windowed ≡
/// monolithic equivalence of [`Soc::run_windowed`].
pub fn live_run(
    text: &str,
    opts: &LiveOptions,
    run_id: u64,
    mut poll: impl FnMut(&WindowBoundary) -> BoundaryCmd,
    mut sink: impl FnMut(LiveEvent<'_>),
) -> Result<LiveOutcome, RunError> {
    let (spec, mut soc, fabric) = build_live_soc(text, opts)?;
    if let Some(p) = spec
        .phases
        .iter()
        .find(|p| p.name.starts_with(LIVE_PHASE_PREFIX))
    {
        return Err(RunError::Run(format!(
            "phase name {:?} uses the prefix {LIVE_PHASE_PREFIX:?}, which is reserved for \
             control-journal replay",
            p.name
        )));
    }
    let mut journal: Vec<JournalEntry> = Vec::new();
    let mut frames: Vec<Value> = Vec::new();
    let mut aborted = false;
    let mut prev = cum_snapshot(&soc);
    soc.run_windowed(opts.cycles, opts.window, |soc, b| {
        let mut applied: Vec<JournalEntry> = Vec::new();
        if !b.last {
            let cmd = poll(&b);
            if cmd.abort {
                aborted = true;
            } else {
                for w in cmd.writes {
                    let Some(driver) = fabric.driver(&w.target) else {
                        continue;
                    };
                    control_op(w.set).apply(driver);
                    let entry = JournalEntry {
                        at: b.end.get(),
                        window: b.index,
                        target: w.target,
                        set: w.set,
                    };
                    sink(LiveEvent::Control(&entry));
                    applied.push(entry);
                }
            }
        }
        let frame = live_frame(run_id, soc, &spec, &b, &mut prev, &applied);
        sink(LiveEvent::Frame(&frame));
        frames.push(frame);
        journal.extend(applied);
        !aborted
    });
    let replay_scenario = replay_scenario_text(text, &journal);
    let fingerprint = soc.fingerprint();
    let ran = soc.now().get();
    let report = live_style_report(&replay_scenario, &spec, &soc, &fabric, opts.cycles, ran);
    Ok(LiveOutcome {
        frames,
        journal,
        report,
        replay_scenario,
        fingerprint,
        aborted,
    })
}

/// Replays a synthesized scenario (see [`replay_scenario_text`]) as one
/// monolithic run and renders it in the live-report shape. Returns the
/// report and the final [`Soc::fingerprint`]; for a completed live run
/// both must equal the live side's byte for byte / bit for bit.
pub fn live_replay_report(
    replay_text: &str,
    opts: &LiveOptions,
) -> Result<(Report, u64), RunError> {
    let (spec, mut soc, fabric) = build_live_soc(replay_text, opts)?;
    soc.run(opts.cycles);
    let report = live_style_report(replay_text, &spec, &soc, &fabric, opts.cycles, opts.cycles);
    Ok((report, soc.fingerprint()))
}

/// The simulator-backed [`LiveExecutor`] behind the v4 `subscribe` op:
/// runs the scenario via [`live_run`] against its [`LiveSession`] —
/// `begin` with the scenario's controllable targets, drain queued
/// control writes at every boundary, record accepted writes, publish
/// frames (pacing by `spec.pace_ms` between them), and `finish` with the
/// final report and replay scenario.
pub fn serve_live_executor() -> LiveExecutor {
    Arc::new(|spec: &LiveSpec, session: Arc<LiveSession>| {
        let opts = LiveOptions {
            cycles: spec.cycles,
            window: spec.window,
            naive: None,
            leap: None,
        };
        let parsed = ScenarioSpec::parse(&spec.scenario).map_err(|e| e.to_string())?;
        session.begin(live_targets(&parsed));
        let pace = std::time::Duration::from_millis(spec.pace_ms);
        let outcome = live_run(
            &spec.scenario,
            &opts,
            session.id(),
            |_b| session.drain_controls(),
            |event| match event {
                LiveEvent::Control(entry) => session.record(entry.clone()),
                LiveEvent::Frame(frame) => {
                    session.publish(frame.clone());
                    if !pace.is_zero() {
                        session.pause(pace);
                    }
                }
            },
        )
        .map_err(|e| e.to_string())?;
        if outcome.aborted {
            session.finish(
                None,
                None,
                Some("run aborted at a window boundary (server draining)".into()),
            );
        } else {
            session.finish(
                Some(outcome.report.to_json()),
                Some(outcome.replay_scenario),
                None,
            );
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO: &str = "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern seq
footprint 1M
txn 256
total 2000

[master dma]
kind accel
role best-effort
period 1000
budget 2K
pattern seq
base 0x40000000
footprint 4M
txn 512
";

    #[test]
    fn report_is_deterministic_for_equal_inputs() {
        let opts = RunOptions {
            cycles: 50_000,
            until_done: None,
        };
        let a = scenario_report(SCENARIO, &opts).expect("runs");
        let b = scenario_report(SCENARIO, &opts).expect("runs");
        assert_eq!(
            a.to_json().to_compact(),
            b.to_json().to_compact(),
            "equal inputs must serialize byte-identically"
        );
    }

    #[test]
    fn report_carries_the_cli_tables() {
        let opts = RunOptions {
            cycles: 50_000,
            until_done: None,
        };
        let r = scenario_report(SCENARIO, &opts).expect("runs");
        let text = r.render_text();
        assert!(text.contains("cpu"), "master rows present");
        assert!(text.contains("dram:"), "dram summary present");
        assert!(text.contains("qos fabric:"), "fabric report present");
    }

    #[test]
    fn until_done_unknown_master_is_a_run_error() {
        let opts = RunOptions {
            cycles: 1_000,
            until_done: Some("ghost".into()),
        };
        match scenario_report(SCENARIO, &opts) {
            Err(RunError::Run(m)) => assert!(m.contains("ghost")),
            other => panic!("expected Run error, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_surface_with_line_numbers() {
        match scenario_report("bogus line\n", &RunOptions::default()) {
            Err(RunError::Parse(e)) => assert_eq!(e.line, 1),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    fn batch(points: Vec<BatchPoint>) -> BatchSpec {
        BatchSpec {
            scenario: SCENARIO.to_string(),
            cycles: 20_000,
            until_done: None,
            warmup: 30_000,
            points,
            kind: BatchKind::Sweep,
        }
    }

    #[test]
    fn batch_reports_are_pure_and_point_sensitive() {
        let spec = batch(vec![
            BatchPoint {
                period: 1_000,
                budget: 512,
            },
            BatchPoint {
                period: 1_000,
                budget: 8_192,
            },
        ]);
        let a = batch_reports(&spec).expect("runs");
        let b = batch_reports(&spec).expect("runs");
        assert_eq!(a.len(), 2, "one report per point");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.to_json().to_compact(),
                y.to_json().to_compact(),
                "equal (spec, point) must serialize byte-identically"
            );
        }
        assert_ne!(
            a[0].to_json().to_compact(),
            a[1].to_json().to_compact(),
            "the budget knob must change the divergent tail"
        );
    }

    #[test]
    fn batch_until_done_unknown_master_fails_up_front() {
        let mut spec = batch(vec![BatchPoint {
            period: 1_000,
            budget: 2_048,
        }]);
        spec.until_done = Some("ghost".into());
        match batch_reports(&spec) {
            Err(RunError::Run(m)) => assert!(m.contains("ghost")),
            other => panic!("expected Run error, got {other:?}"),
        }
    }

    #[test]
    fn warm_store_hit_matches_in_memory_batch() {
        let dir = std::env::temp_dir().join(format!("fgqos-warmstore-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = BlobStore::open(&dir).expect("store opens");
        let spec = batch(vec![
            BatchPoint {
                period: 1_000,
                budget: 512,
            },
            BatchPoint {
                period: 1_000,
                budget: 8_192,
            },
        ]);
        let cold = batch_reports(&spec).expect("runs");
        // First store run warms and files the boundary blob…
        let miss = batch_reports_with_store(&spec, Some(&store)).expect("runs");
        let key = warm_boundary_key(&spec.scenario, spec.warmup, false);
        assert!(
            store.get_named(&key).expect("store readable").is_some(),
            "miss run must file the warm boundary"
        );
        // …second run restores it from disk instead of re-warming.
        let hit = batch_reports_with_store(&spec, Some(&store)).expect("runs");
        assert_eq!(miss.len(), cold.len());
        assert_eq!(hit.len(), cold.len());
        for (x, y) in cold.iter().zip(miss.iter()) {
            assert_eq!(x.to_json().to_compact(), y.to_json().to_compact());
        }
        for (x, y) in cold.iter().zip(hit.iter()) {
            assert_eq!(
                x.to_json().to_compact(),
                y.to_json().to_compact(),
                "blob-restored batch must be byte-identical to in-memory"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_boundary_blob_roundtrips_through_restore() {
        let encoded = warm_boundary_blob(SCENARIO, 30_000)
            .expect("runs")
            .expect("scenario quiesces");
        let blob = SnapshotBlob::decode(&encoded).expect("container decodes");
        let (_spec, snap, _fabric) = restore_snapshot(&blob).expect("restores");
        assert_eq!(
            snap.fingerprint(),
            blob.fingerprint,
            "restored snapshot carries the recorded fingerprint"
        );
    }

    #[test]
    fn assertion_free_reports_carry_no_outcome() {
        let opts = RunOptions {
            cycles: 20_000,
            until_done: None,
        };
        let r = scenario_report(SCENARIO, &opts).expect("runs");
        assert_eq!(assertion_outcome(&r), None);
        assert!(!r.render_text().contains("assertions:"));
    }

    #[test]
    fn expect_directives_render_and_gate_the_outcome() {
        let text = format!(
            "expect bytes(cpu) > 0\n\
             expect bytes(cpu) > 100G\n\
             expect isolation(cpu)\n\
             {SCENARIO}"
        );
        let opts = RunOptions {
            cycles: 50_000,
            until_done: None,
        };
        let r = scenario_report(&text, &opts).expect("runs");
        let rendered = r.render_text();
        assert!(rendered.contains("assertions:"));
        assert!(rendered.contains("PASS"));
        assert!(rendered.contains("FAIL"), "the 100G bound cannot hold");
        let (passed, failed) = assertion_outcome(&r).expect("summary present");
        assert_eq!(passed + failed, 3);
        assert_eq!(failed, 1);
        // Assertion evaluation is part of the pure document function.
        let again = scenario_report(&text, &opts).expect("runs");
        assert_eq!(r.to_json().to_compact(), again.to_json().to_compact());
    }

    #[test]
    fn batch_points_evaluate_expectations_too() {
        let mut spec = batch(vec![BatchPoint {
            period: 1_000,
            budget: 2_048,
        }]);
        spec.scenario = format!("expect bytes(dma) > 0\n{SCENARIO}");
        let reports = batch_reports(&spec).expect("runs");
        let (passed, failed) = assertion_outcome(&reports[0]).expect("summary present");
        assert_eq!((passed, failed), (1, 0));
    }

    #[test]
    fn batch_executor_matches_direct_calls() {
        let spec = batch(vec![BatchPoint {
            period: 2_000,
            budget: 1_024,
        }]);
        let via_exec = serve_batch_executor()(&spec).expect("executes");
        let direct = batch_reports(&spec).expect("runs");
        assert_eq!(via_exec.len(), direct.len());
        for (x, y) in via_exec.iter().zip(&direct) {
            assert_eq!(x.to_json().to_compact(), y.to_json().to_compact());
        }
    }

    #[test]
    fn live_replay_reproduces_report_and_fingerprint() {
        use fgqos_serve::live::ControlWrite;
        for naive in [false, true] {
            let opts = LiveOptions {
                cycles: 40_000,
                window: 5_000,
                naive: Some(naive),
                leap: Some(!naive),
            };
            let scripted = [
                (
                    2u64,
                    ControlWrite {
                        target: "dma".into(),
                        set: ControlSet::Budget(512),
                    },
                ),
                (
                    5u64,
                    ControlWrite {
                        target: "dma".into(),
                        set: ControlSet::Period(500),
                    },
                ),
            ];
            let mut events = 0usize;
            let outcome = live_run(
                SCENARIO,
                &opts,
                7,
                |b| {
                    let mut cmd = BoundaryCmd::default();
                    for (window, write) in &scripted {
                        if *window == b.index {
                            cmd.writes.push(write.clone());
                        }
                    }
                    cmd
                },
                |_| events += 1,
            )
            .expect("runs");
            assert!(!outcome.aborted);
            assert_eq!(outcome.journal.len(), 2, "both writes journaled");
            assert_eq!(outcome.frames.len(), 8, "one frame per boundary");
            assert_eq!(events, outcome.frames.len() + outcome.journal.len());
            let (replay, fp) =
                live_replay_report(&outcome.replay_scenario, &opts).expect("replays");
            assert_eq!(
                outcome.report.to_json().to_compact(),
                replay.to_json().to_compact(),
                "live report must equal its monolithic replay byte for byte (naive={naive})"
            );
            assert_eq!(outcome.fingerprint, fp, "final state bit-identical");
        }
    }

    #[test]
    fn live_run_rejects_reserved_phase_names() {
        let text = format!("{SCENARIO}\n[phase live_ctl_0]\nat 100\nbudget dma 64\n");
        match live_run(
            &text,
            &LiveOptions::default(),
            0,
            |_| BoundaryCmd::default(),
            |_| {},
        ) {
            Err(RunError::Run(m)) => assert!(m.contains("reserved")),
            other => panic!("expected Run error, got {other:?}"),
        }
    }

    #[test]
    fn executor_matches_direct_calls() {
        let exec = serve_executor();
        let job = JobSpec {
            scenario: SCENARIO.to_string(),
            cycles: 50_000,
            until_done: None,
        };
        let via_exec = exec(&job).expect("executes");
        let direct = scenario_report(
            SCENARIO,
            &RunOptions {
                cycles: 50_000,
                until_done: None,
            },
        )
        .expect("runs");
        assert_eq!(
            via_exec.to_json().to_compact(),
            direct.to_json().to_compact()
        );
    }
}
