//! `fgqos` — run a declarative scenario file and report QoS statistics.
//!
//! ```text
//! Usage: fgqos <scenario-file> [options]
//!
//! Options:
//!   --cycles N        run for N cycles (default 1000000)
//!   --until-done NAME run until master NAME finishes (fallback: --cycles cap)
//!   --histogram       print each master's latency distribution
//!   --quiet           suppress the per-port fabric report
//! ```

use fgqos::scenario::ScenarioSpec;
use fgqos::sim::axi::MasterId;
use std::process::ExitCode;

struct Args {
    scenario_path: String,
    cycles: u64,
    until_done: Option<String>,
    quiet: bool,
    histogram: bool,
}

fn usage() -> &'static str {
    "usage: fgqos <scenario-file> [--cycles N] [--until-done NAME] [--histogram] [--quiet]"
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut scenario_path = None;
    let mut cycles = 1_000_000u64;
    let mut until_done = None;
    let mut quiet = false;
    let mut histogram = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--cycles" => {
                let v = argv.next().ok_or("--cycles needs a value")?;
                cycles = v.parse().map_err(|e| format!("bad --cycles value: {e}"))?;
            }
            "--until-done" => {
                until_done = Some(argv.next().ok_or("--until-done needs a master name")?);
            }
            "--quiet" => quiet = true,
            "--histogram" => histogram = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()));
            }
            other => {
                if scenario_path.replace(other.to_string()).is_some() {
                    return Err(format!("more than one scenario file given\n{}", usage()));
                }
            }
        }
    }
    let scenario_path = scenario_path.ok_or_else(|| usage().to_string())?;
    Ok(Args {
        scenario_path,
        cycles,
        until_done,
        quiet,
        histogram,
    })
}

fn run(args: Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.scenario_path)
        .map_err(|e| format!("cannot read {}: {e}", args.scenario_path))?;
    let spec = ScenarioSpec::parse(&text).map_err(|e| e.to_string())?;
    let (mut soc, fabric) = spec.build();

    let ran = match &args.until_done {
        Some(name) => {
            let id = soc
                .master_id(name)
                .ok_or_else(|| format!("--until-done: no master named {name:?}"))?;
            match soc.run_until_done(id, args.cycles) {
                Some(t) => {
                    println!("master {name:?} finished at {t}");
                    t.get()
                }
                None => {
                    println!(
                        "master {name:?} did not finish within {} cycles",
                        args.cycles
                    );
                    soc.now().get()
                }
            }
        }
        None => {
            soc.run(args.cycles);
            args.cycles
        }
    };

    println!("\nsimulated {ran} cycles at {}", soc.freq());
    println!(
        "{:<12} {:>10} {:>14} {:>12} {:>9} {:>9} {:>9}",
        "master", "txns", "bytes", "bandwidth", "p50", "p99", "max"
    );
    for i in 0..soc.master_count() {
        let id = MasterId::new(i);
        let st = soc.master_stats(id);
        let name = spec.masters[i].name.clone();
        println!(
            "{:<12} {:>10} {:>14} {:>12} {:>9} {:>9} {:>9}",
            name,
            st.completed_txns,
            st.bytes_completed,
            format!("{}", soc.master_bandwidth(id)),
            st.latency.percentile(0.50),
            st.latency.percentile(0.99),
            st.latency.max(),
        );
    }
    let d = soc.dram_stats();
    println!(
        "\ndram: {} bytes, row-hit ratio {:.2}, bus utilization {:.2}, {} refreshes",
        d.bytes_completed,
        d.row_hit_ratio(),
        d.bus_busy_cycles as f64 / ran.max(1) as f64,
        d.refreshes,
    );
    if args.histogram {
        for i in 0..soc.master_count() {
            let id = MasterId::new(i);
            let st = soc.master_stats(id);
            if st.latency.count() == 0 {
                continue;
            }
            println!("\nlatency histogram for {}:", spec.masters[i].name);
            let peak = st
                .latency
                .nonzero_buckets()
                .map(|(_, c)| c)
                .max()
                .unwrap_or(1);
            for (lo, count) in st.latency.nonzero_buckets() {
                let bar = "#".repeat((count * 40 / peak).max(1) as usize);
                println!("{lo:>9} {count:>9} {bar}");
            }
        }
    }
    if !args.quiet {
        println!("\nqos fabric:");
        print!("{}", fabric.report());
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Args, String> {
        parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_defaults() {
        let a = args(&["scen.fgq"]).expect("parses");
        assert_eq!(a.scenario_path, "scen.fgq");
        assert_eq!(a.cycles, 1_000_000);
        assert!(a.until_done.is_none());
        assert!(!a.quiet);
    }

    #[test]
    fn parses_all_options() {
        let a = args(&[
            "s.fgq",
            "--cycles",
            "500",
            "--until-done",
            "cpu",
            "--quiet",
            "--histogram",
        ])
        .expect("parses");
        assert_eq!(a.cycles, 500);
        assert_eq!(a.until_done.as_deref(), Some("cpu"));
        assert!(a.quiet);
        assert!(a.histogram);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(args(&[]).is_err());
        assert!(args(&["a", "b"]).is_err());
        assert!(args(&["a", "--cycles"]).is_err());
        assert!(args(&["a", "--cycles", "xyz"]).is_err());
        assert!(args(&["a", "--frobnicate"]).is_err());
    }

    #[test]
    fn run_reports_missing_file() {
        let e = run(Args {
            scenario_path: "/nonexistent/scenario.fgq".into(),
            cycles: 10,
            until_done: None,
            quiet: true,
            histogram: false,
        })
        .unwrap_err();
        assert!(e.contains("cannot read"));
    }
}
