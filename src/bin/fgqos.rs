//! `fgqos` — run, check, serve and submit declarative QoS scenarios.
//!
//! ```text
//! Usage:
//!   fgqos <scenario-file> [run options]      simulate a scenario locally
//!   fgqos check <scenario-file>              parse + validate (and run the
//!                                            scenario when it carries
//!                                            `expect` assertions)
//!   fgqos hunt <scenario-file> [options]     search for the worst-case
//!                                            interference pattern against
//!                                            the scenario's critical master
//!   fgqos serve [serve options]              start the execution service
//!   fgqos worker --connect HOST:PORT [...]   start a worker, join a fleet
//!   fgqos submit <scenario-file> [options]   run a scenario via a server
//!   fgqos watch <scenario-file> | --run ID   stream live per-window
//!                                            telemetry from a server
//!   fgqos ctl --run ID --master NAME ...     inject a regulator register
//!                                            write into a live run
//!   fgqos shutdown [--addr HOST:PORT]        drain and stop a server
//!   fgqos --version | -V                     print crate + wire/format
//!                                            versions
//!
//! Run options:
//!   --cycles N        run for N cycles (default: the scenario's `cycles`
//!                     directive, then 1000000)
//!   --until-done NAME run until master NAME finishes (fallback: --cycles cap;
//!                     default: the scenario's `until_done` directive)
//!   --json            print the structured report document instead of text
//!   --histogram       print each master's latency distribution
//!   --quiet           suppress the per-port fabric report
//!
//! Hunt options:
//!   --seed N          root seed; equal seeds give byte-identical reports
//!   --evals N         total candidate evaluation budget (default 48)
//!   --explore N       random candidates before refinement (default 24)
//!   --top-k N         parents carried per refinement round (default 4)
//!   --mutants N       mutants drawn per parent per round (default 3)
//!   --bisect N        extra evaluations bisecting the winner's burst
//!                     phases and fault cycles after the climb (default 12)
//!   --objective M     maximized critical metric: p99 | max (default max)
//!   --warmup N        shared warm-up cycles before the fork boundary
//!   --cycles N        divergent tail cycles after the boundary
//!   --addr HOST:PORT  evaluate through a running `fgqos serve` instead of
//!                     the in-process pool
//!   --out PATH        write the fgqos.hunt-report JSON document to PATH
//!   --fgq PATH        write the replayable winning scenario to PATH
//!   --quiet           suppress the human-readable summary
//!
//! Serve options:
//!   --addr HOST:PORT  listen address (default 127.0.0.1:7171)
//!   --threads N       worker threads (default: FGQOS_SERVE_THREADS or cores)
//!   --max-frame N     per-request byte cap (default 262144)
//!   --admit-budget N  per-client ingress budget, bytes/period (default 1 MiB)
//!   --admit-period-ms N  ingress budget period (default 1000)
//!   --admit-depth N   per-client burst allowance, bytes (default 2 MiB)
//!   --deadline-ms N   default queue deadline for submitted jobs
//!   --cache-dir DIR   persist the result cache in DIR (survives restarts)
//!   --blob-dir DIR    shared warm-boundary snapshot store for batches
//!   --workers N       fleet mode: run a coordinator and spawn N worker
//!                     processes (N=0: bare coordinator for manual fleets
//!                     built with `fgqos worker --connect`)
//!
//! Worker options:
//!   --connect HOST:PORT  coordinator to register with (required)
//!   --addr HOST:PORT  worker listen address (default 127.0.0.1:0)
//!   --threads / --max-frame / --admit-* / --blob-dir   as for serve
//!
//! Submit options:
//!   --addr HOST:PORT  server address (default 127.0.0.1:7171)
//!   --cycles N / --until-done NAME   as for a local run
//!   --client NAME     admission-control principal (default: peer address)
//!   --deadline-ms N   queue deadline for this job
//!   --timeout-ms N    how long to wait for the result (default 60000)
//!
//! Watch options (see docs/live.md):
//!   --addr HOST:PORT  server address (default 127.0.0.1:7171)
//!   --cycles N        run length (default: the scenario's `cycles`
//!                     directive, then 1000000)
//!   --window N        telemetry window in cycles (default 10000); also
//!                     the granularity at which control writes apply
//!   --pace MS         host sleep after each frame (sim-invisible pacing)
//!   --json            print raw frame objects instead of summary lines
//!   --verify-replay   after the run, fetch the control journal and
//!                     verify the synthesized replay scenario reproduces
//!                     the live report byte-identically
//!
//! Ctl options:
//!   --run ID          live run to control (required)
//!   --master NAME     best-effort master whose regulator is written
//!   --budget N / --period N / --enable on|off   exactly one register
//!                     write; it applies at the next window boundary
//!   --addr HOST:PORT  server address (default 127.0.0.1:7171)
//!
//! Exit status: 0 on success (including `--help`), 1 on runtime errors
//! (unreadable or invalid scenarios, server failures) and on failed
//! `expect` assertions, 2 on usage errors.
//! ```

use fgqos::bench::report::Report;
use fgqos::hunt::{run_hunt, HuntOptions};
use fgqos::hunt_engine::Objective;
use fgqos::runner::{
    assertion_outcome, evaluate_expectations, live_replay_report, scenario_report,
    serve_batch_executor, serve_batch_executor_with_store, serve_executor, serve_live_executor,
    serve_snapshot_executor, AssertionResult, LiveOptions, RunError, RunOptions,
};
use fgqos::scenario::{load_scenario_text, ScenarioSpec};
use fgqos::serve::admission::AdmissionConfig;
use fgqos::serve::client::{Client, ClientError, SubmitOptions};
use fgqos::serve::coordinator::{start_coordinator, CoordinatorConfig};
use fgqos::serve::live::{JOURNAL_SCHEMA, JOURNAL_VERSION, LIVE_SCHEMA, LIVE_VERSION};
use fgqos::serve::protocol::{
    ControlSet, LiveSpec, DEFAULT_LIVE_WINDOW, DEFAULT_MAX_FRAME_BYTES, SERVE_VERSION,
};
use fgqos::serve::server::{start_live, ServeConfig};
use fgqos::serve::BatchExecutor;
use fgqos::sim::axi::MasterId;
use fgqos::sim::json::Value;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// Fallback run length when neither the command line nor the scenario's
/// `cycles` directive names one.
const DEFAULT_CYCLES: u64 = 1_000_000;

struct RunArgs {
    scenario_path: String,
    cycles: Option<u64>,
    until_done: Option<String>,
    json: bool,
    quiet: bool,
    histogram: bool,
}

struct ServeArgs {
    addr: String,
    threads: usize,
    max_frame_bytes: usize,
    admission: AdmissionConfig,
    admit_overridden: bool,
    default_deadline_ms: Option<u64>,
    cache_dir: Option<PathBuf>,
    blob_dir: Option<PathBuf>,
    workers: Option<usize>,
}

struct WorkerArgs {
    addr: String,
    connect: String,
    threads: usize,
    max_frame_bytes: usize,
    admission: AdmissionConfig,
    blob_dir: Option<PathBuf>,
}

struct SubmitArgs {
    scenario_path: String,
    addr: String,
    cycles: Option<u64>,
    until_done: Option<String>,
    client: Option<String>,
    deadline_ms: Option<u64>,
    timeout_ms: u64,
}

struct HuntArgs {
    scenario_path: String,
    options: HuntOptions,
    out: Option<PathBuf>,
    fgq: Option<PathBuf>,
    quiet: bool,
}

struct WatchArgs {
    scenario_path: Option<String>,
    run: Option<u64>,
    addr: String,
    cycles: Option<u64>,
    window: u64,
    pace_ms: u64,
    json: bool,
    verify_replay: bool,
}

struct CtlArgs {
    run: u64,
    master: String,
    set: ControlSet,
    addr: String,
}

enum Cmd {
    Help,
    Version,
    Run(RunArgs),
    Check { scenario_path: String },
    Hunt(HuntArgs),
    Serve(ServeArgs),
    Worker(WorkerArgs),
    Submit(SubmitArgs),
    Watch(WatchArgs),
    Ctl(CtlArgs),
    Shutdown { addr: String },
}

fn usage() -> &'static str {
    "usage: fgqos <scenario-file> [--cycles N] [--until-done NAME] [--json] [--histogram] [--quiet]
       fgqos check <scenario-file>
       fgqos hunt <scenario-file> [--seed N] [--evals N] [--explore N] [--top-k N] [--mutants N]
                  [--bisect N] [--objective p99|max] [--warmup N] [--cycles N] [--addr HOST:PORT]
                  [--out REPORT.json] [--fgq WINNER.fgq] [--quiet]
       fgqos serve [--addr HOST:PORT] [--threads N] [--max-frame N]
                   [--admit-budget N] [--admit-period-ms N] [--admit-depth N] [--deadline-ms N]
                   [--cache-dir DIR] [--blob-dir DIR] [--workers N]
       fgqos worker --connect HOST:PORT [--addr HOST:PORT] [--threads N] [--max-frame N]
                    [--admit-budget N] [--admit-period-ms N] [--admit-depth N] [--blob-dir DIR]
       fgqos submit <scenario-file> [--addr HOST:PORT] [--cycles N] [--until-done NAME]
                    [--client NAME] [--deadline-ms N] [--timeout-ms N]
       fgqos watch (<scenario-file> | --run ID) [--addr HOST:PORT] [--cycles N] [--window N]
                   [--pace MS] [--json] [--verify-replay]
       fgqos ctl --run ID --master NAME (--budget N | --period N | --enable on|off)
                 [--addr HOST:PORT]
       fgqos shutdown [--addr HOST:PORT]
       fgqos --version"
}

fn value_of(argv: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    argv.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn num_of<T: std::str::FromStr>(
    argv: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value_of(argv, flag)?
        .parse()
        .map_err(|e| format!("bad {flag} value: {e}"))
}

fn parse_run(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut scenario_path = None;
    let mut cycles = None;
    let mut until_done = None;
    let mut json = false;
    let mut quiet = false;
    let mut histogram = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--cycles" => cycles = Some(num_of(&mut argv, "--cycles")?),
            "--until-done" => until_done = Some(value_of(&mut argv, "--until-done")?),
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--histogram" => histogram = true,
            "--help" | "-h" => return Ok(Cmd::Help),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()));
            }
            other => {
                if scenario_path.replace(other.to_string()).is_some() {
                    return Err(format!("more than one scenario file given\n{}", usage()));
                }
            }
        }
    }
    let scenario_path = scenario_path.ok_or_else(|| usage().to_string())?;
    Ok(Cmd::Run(RunArgs {
        scenario_path,
        cycles,
        until_done,
        json,
        quiet,
        histogram,
    }))
}

fn parse_check(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut scenario_path = None;
    for arg in argv.by_ref() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(Cmd::Help),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()));
            }
            other => {
                if scenario_path.replace(other.to_string()).is_some() {
                    return Err(format!("more than one scenario file given\n{}", usage()));
                }
            }
        }
    }
    let scenario_path = scenario_path.ok_or("check needs a scenario file".to_string())?;
    Ok(Cmd::Check { scenario_path })
}

fn parse_hunt(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut scenario_path = None;
    let mut options = HuntOptions::default();
    let mut out = None;
    let mut fgq = None;
    let mut quiet = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--seed" => options.config.seed = num_of(&mut argv, "--seed")?,
            "--evals" => options.config.evals = num_of(&mut argv, "--evals")?,
            "--explore" => options.config.explore = num_of(&mut argv, "--explore")?,
            "--top-k" => options.config.top_k = num_of(&mut argv, "--top-k")?,
            "--mutants" => options.config.mutants_per_parent = num_of(&mut argv, "--mutants")?,
            "--bisect" => options.config.bisect = num_of(&mut argv, "--bisect")?,
            "--objective" => {
                options.config.objective = Objective::parse(&value_of(&mut argv, "--objective")?)?
            }
            "--warmup" => options.warmup = num_of(&mut argv, "--warmup")?,
            "--cycles" => options.tail_cycles = num_of(&mut argv, "--cycles")?,
            "--addr" => options.addr = Some(value_of(&mut argv, "--addr")?),
            "--out" => out = Some(PathBuf::from(value_of(&mut argv, "--out")?)),
            "--fgq" => fgq = Some(PathBuf::from(value_of(&mut argv, "--fgq")?)),
            "--quiet" => quiet = true,
            "--help" | "-h" => return Ok(Cmd::Help),
            other if other.starts_with('-') => {
                return Err(format!("unknown hunt option {other:?}\n{}", usage()));
            }
            other => {
                if scenario_path.replace(other.to_string()).is_some() {
                    return Err(format!("more than one scenario file given\n{}", usage()));
                }
            }
        }
    }
    let scenario_path = scenario_path.ok_or("hunt needs a scenario file".to_string())?;
    Ok(Cmd::Hunt(HuntArgs {
        scenario_path,
        options,
        out,
        fgq,
        quiet,
    }))
}

fn parse_serve(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut args = ServeArgs {
        addr: DEFAULT_ADDR.to_string(),
        threads: 0,
        max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        admission: AdmissionConfig::default(),
        admit_overridden: false,
        default_deadline_ms: None,
        cache_dir: None,
        blob_dir: None,
        workers: None,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => args.addr = value_of(&mut argv, "--addr")?,
            "--threads" => args.threads = num_of(&mut argv, "--threads")?,
            "--max-frame" => args.max_frame_bytes = num_of(&mut argv, "--max-frame")?,
            "--admit-budget" => {
                args.admission.budget_bytes = num_of(&mut argv, "--admit-budget")?;
                args.admit_overridden = true;
            }
            "--admit-period-ms" => {
                // The ingress regulator runs at 1 cycle = 1 µs.
                let ms: u32 = num_of(&mut argv, "--admit-period-ms")?;
                args.admission.period_cycles = ms.saturating_mul(1_000).max(1);
                args.admit_overridden = true;
            }
            "--admit-depth" => {
                args.admission.depth_bytes = num_of(&mut argv, "--admit-depth")?;
                args.admit_overridden = true;
            }
            "--deadline-ms" => args.default_deadline_ms = Some(num_of(&mut argv, "--deadline-ms")?),
            "--cache-dir" => args.cache_dir = Some(value_of(&mut argv, "--cache-dir")?.into()),
            "--blob-dir" => args.blob_dir = Some(value_of(&mut argv, "--blob-dir")?.into()),
            "--workers" => args.workers = Some(num_of(&mut argv, "--workers")?),
            "--help" | "-h" => return Ok(Cmd::Help),
            other => return Err(format!("unknown serve option {other:?}\n{}", usage())),
        }
    }
    Ok(Cmd::Serve(args))
}

fn parse_worker(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut connect = None;
    let mut args = WorkerArgs {
        addr: "127.0.0.1:0".to_string(),
        connect: String::new(),
        threads: 0,
        max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        admission: AdmissionConfig::default(),
        blob_dir: None,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--connect" => connect = Some(value_of(&mut argv, "--connect")?),
            "--addr" => args.addr = value_of(&mut argv, "--addr")?,
            "--threads" => args.threads = num_of(&mut argv, "--threads")?,
            "--max-frame" => args.max_frame_bytes = num_of(&mut argv, "--max-frame")?,
            "--admit-budget" => args.admission.budget_bytes = num_of(&mut argv, "--admit-budget")?,
            "--admit-period-ms" => {
                let ms: u32 = num_of(&mut argv, "--admit-period-ms")?;
                args.admission.period_cycles = ms.saturating_mul(1_000).max(1);
            }
            "--admit-depth" => args.admission.depth_bytes = num_of(&mut argv, "--admit-depth")?,
            "--blob-dir" => args.blob_dir = Some(value_of(&mut argv, "--blob-dir")?.into()),
            "--help" | "-h" => return Ok(Cmd::Help),
            other => return Err(format!("unknown worker option {other:?}\n{}", usage())),
        }
    }
    args.connect = connect.ok_or("worker needs --connect HOST:PORT".to_string())?;
    Ok(Cmd::Worker(args))
}

fn parse_submit(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut scenario_path = None;
    let mut args = SubmitArgs {
        scenario_path: String::new(),
        addr: DEFAULT_ADDR.to_string(),
        cycles: None,
        until_done: None,
        client: None,
        deadline_ms: None,
        timeout_ms: 60_000,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => args.addr = value_of(&mut argv, "--addr")?,
            "--cycles" => args.cycles = Some(num_of(&mut argv, "--cycles")?),
            "--until-done" => args.until_done = Some(value_of(&mut argv, "--until-done")?),
            "--client" => args.client = Some(value_of(&mut argv, "--client")?),
            "--deadline-ms" => args.deadline_ms = Some(num_of(&mut argv, "--deadline-ms")?),
            "--timeout-ms" => args.timeout_ms = num_of(&mut argv, "--timeout-ms")?,
            "--help" | "-h" => return Ok(Cmd::Help),
            other if other.starts_with('-') => {
                return Err(format!("unknown submit option {other:?}\n{}", usage()));
            }
            other => {
                if scenario_path.replace(other.to_string()).is_some() {
                    return Err(format!("more than one scenario file given\n{}", usage()));
                }
            }
        }
    }
    args.scenario_path = scenario_path.ok_or("submit needs a scenario file".to_string())?;
    Ok(Cmd::Submit(args))
}

fn parse_watch(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut args = WatchArgs {
        scenario_path: None,
        run: None,
        addr: DEFAULT_ADDR.to_string(),
        cycles: None,
        window: DEFAULT_LIVE_WINDOW,
        pace_ms: 0,
        json: false,
        verify_replay: false,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--run" => args.run = Some(num_of(&mut argv, "--run")?),
            "--addr" => args.addr = value_of(&mut argv, "--addr")?,
            "--cycles" => args.cycles = Some(num_of(&mut argv, "--cycles")?),
            "--window" => args.window = num_of(&mut argv, "--window")?,
            "--pace" => args.pace_ms = num_of(&mut argv, "--pace")?,
            "--json" => args.json = true,
            "--verify-replay" => args.verify_replay = true,
            "--help" | "-h" => return Ok(Cmd::Help),
            other if other.starts_with('-') => {
                return Err(format!("unknown watch option {other:?}\n{}", usage()));
            }
            other => {
                if args.scenario_path.replace(other.to_string()).is_some() {
                    return Err(format!("more than one scenario file given\n{}", usage()));
                }
            }
        }
    }
    match (&args.scenario_path, args.run) {
        (None, None) => Err("watch needs a scenario file or --run ID".to_string()),
        (Some(_), Some(_)) => Err("watch takes a scenario file or --run ID, not both".to_string()),
        _ => {
            if args.window == 0 {
                return Err("--window must be at least 1".to_string());
            }
            Ok(Cmd::Watch(args))
        }
    }
}

fn parse_ctl(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut run = None;
    let mut master = None;
    let mut set: Option<ControlSet> = None;
    let put = |s: ControlSet, set: &mut Option<ControlSet>| {
        if set.replace(s).is_some() {
            return Err("ctl takes exactly one of --budget/--period/--enable".to_string());
        }
        Ok(())
    };
    let mut addr = DEFAULT_ADDR.to_string();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--run" => run = Some(num_of(&mut argv, "--run")?),
            "--master" => master = Some(value_of(&mut argv, "--master")?),
            "--budget" => put(ControlSet::Budget(num_of(&mut argv, "--budget")?), &mut set)?,
            "--period" => {
                let p: u32 = num_of(&mut argv, "--period")?;
                if p == 0 {
                    return Err("--period must be at least 1".to_string());
                }
                put(ControlSet::Period(p), &mut set)?;
            }
            "--enable" => {
                let v = value_of(&mut argv, "--enable")?;
                let on = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--enable takes on|off, got {other:?}")),
                };
                put(ControlSet::Enable(on), &mut set)?;
            }
            "--addr" => addr = value_of(&mut argv, "--addr")?,
            "--help" | "-h" => return Ok(Cmd::Help),
            other => return Err(format!("unknown ctl option {other:?}\n{}", usage())),
        }
    }
    let run = run.ok_or("ctl needs --run ID".to_string())?;
    let master = master.ok_or("ctl needs --master NAME".to_string())?;
    let set = set.ok_or("ctl needs one of --budget/--period/--enable".to_string())?;
    Ok(Cmd::Ctl(CtlArgs {
        run,
        master,
        set,
        addr,
    }))
}

fn parse_shutdown(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut addr = DEFAULT_ADDR.to_string();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => addr = value_of(&mut argv, "--addr")?,
            "--help" | "-h" => return Ok(Cmd::Help),
            other => return Err(format!("unknown shutdown option {other:?}\n{}", usage())),
        }
    }
    Ok(Cmd::Shutdown { addr })
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    match argv.next() {
        None => Err(usage().to_string()),
        Some(first) => match first.as_str() {
            "--help" | "-h" => Ok(Cmd::Help),
            "--version" | "-V" => Ok(Cmd::Version),
            "check" => parse_check(argv),
            "hunt" => parse_hunt(argv),
            "serve" => parse_serve(argv),
            "worker" => parse_worker(argv),
            "submit" => parse_submit(argv),
            "watch" => parse_watch(argv),
            "ctl" => parse_ctl(argv),
            "shutdown" => parse_shutdown(argv),
            _ => parse_run(std::iter::once(first).chain(argv)),
        },
    }
}

/// Prints per-assertion verdict lines; `Err` when any assertion failed
/// (which the caller turns into exit status 1).
fn assertion_verdicts(results: &[AssertionResult]) -> Result<(), String> {
    if results.is_empty() {
        return Ok(());
    }
    println!("\nassertions:");
    for r in results {
        println!(
            "  {} expect {}  [{}]",
            if r.pass { "PASS" } else { "FAIL" },
            r.text,
            r.measured
        );
    }
    let failed = results.iter().filter(|r| !r.pass).count();
    if failed > 0 {
        return Err(format!("{failed} of {} assertion(s) failed", results.len()));
    }
    Ok(())
}

fn run(args: RunArgs) -> Result<(), String> {
    let text =
        load_scenario_text(&args.scenario_path).map_err(|e| e.diagnostic(&args.scenario_path))?;
    // CLI flags beat the scenario's own `cycles`/`until_done` directives,
    // which beat the historical defaults.
    let spec = ScenarioSpec::parse(&text).map_err(|e| e.diagnostic(&args.scenario_path))?;
    let cycles = args.cycles.or(spec.cycles).unwrap_or(DEFAULT_CYCLES);
    let until_done = args.until_done.clone().or_else(|| spec.until_done.clone());
    let opts = RunOptions {
        cycles,
        until_done: until_done.clone(),
    };
    if args.json {
        let report = scenario_report(&text, &opts).map_err(|e| match e {
            RunError::Parse(p) => p.diagnostic(&args.scenario_path),
            RunError::Run(m) => m,
        })?;
        println!("{}", report.to_json().to_pretty());
        if let Some((_, failed)) = assertion_outcome(&report) {
            if failed > 0 {
                return Err(format!("{failed} assertion(s) failed"));
            }
        }
        return Ok(());
    }

    // The classic text path keeps its historical layout (and the
    // --histogram / --quiet extras the report document doesn't carry).
    let (mut soc, fabric) = spec.build();
    let ran = match &until_done {
        Some(name) => {
            let id = soc
                .master_id(name)
                .ok_or_else(|| format!("--until-done: no master named {name:?}"))?;
            match soc.run_until_done(id, cycles) {
                Some(t) => {
                    println!("master {name:?} finished at {t}");
                    t.get()
                }
                None => {
                    println!("master {name:?} did not finish within {cycles} cycles");
                    soc.now().get()
                }
            }
        }
        None => {
            soc.run(cycles);
            cycles
        }
    };

    println!("\nsimulated {ran} cycles at {}", soc.freq());
    println!(
        "{:<12} {:>10} {:>14} {:>12} {:>9} {:>9} {:>9}",
        "master", "txns", "bytes", "bandwidth", "p50", "p99", "max"
    );
    for i in 0..soc.master_count() {
        let id = MasterId::new(i);
        let st = soc.master_stats(id);
        let name = spec.masters[i].name.clone();
        println!(
            "{:<12} {:>10} {:>14} {:>12} {:>9} {:>9} {:>9}",
            name,
            st.completed_txns,
            st.bytes_completed,
            format!("{}", soc.master_bandwidth(id)),
            st.latency.percentile(0.50),
            st.latency.percentile(0.99),
            st.latency.max(),
        );
    }
    let d = soc.dram_stats();
    println!(
        "\ndram: {} bytes, row-hit ratio {:.2}, bus utilization {:.2}, {} refreshes",
        d.bytes_completed,
        d.row_hit_ratio(),
        d.bus_busy_cycles as f64 / ran.max(1) as f64,
        d.refreshes,
    );
    if args.histogram {
        for i in 0..soc.master_count() {
            let id = MasterId::new(i);
            let st = soc.master_stats(id);
            if st.latency.count() == 0 {
                continue;
            }
            println!("\nlatency histogram for {}:", spec.masters[i].name);
            let peak = st
                .latency
                .nonzero_buckets()
                .map(|(_, c)| c)
                .max()
                .unwrap_or(1);
            for (lo, count) in st.latency.nonzero_buckets() {
                let bar = "#".repeat((count * 40 / peak).max(1) as usize);
                println!("{lo:>9} {count:>9} {bar}");
            }
        }
    }
    if !args.quiet {
        println!("\nqos fabric:");
        print!("{}", fabric.report());
    }
    assertion_verdicts(&evaluate_expectations(&spec, &soc, &fabric))
}

fn check(path: &str) -> Result<(), String> {
    let text = load_scenario_text(path).map_err(|e| e.diagnostic(path))?;
    let spec = ScenarioSpec::parse(&text).map_err(|e| e.diagnostic(path))?;
    let mut extras = String::new();
    if spec.reclaim.is_some() {
        extras.push_str(", reclaim policy");
    }
    if !spec.phases.is_empty() {
        extras.push_str(&format!(", {} phase(s)", spec.phases.len()));
    }
    if !spec.faults.is_empty() {
        extras.push_str(&format!(", {} fault(s)", spec.faults.len()));
    }
    println!(
        "{path}: ok ({} master{}{extras})",
        spec.masters.len(),
        if spec.masters.len() == 1 { "" } else { "s" },
    );
    if spec.expects.is_empty() {
        return Ok(());
    }
    // Assertions make `check` a run: the scenario's own `cycles` /
    // `until_done` directives (or the usual default) drive it, and a
    // failed expectation fails the check.
    let cycles = spec.cycles.unwrap_or(DEFAULT_CYCLES);
    let (mut soc, fabric) = spec.build();
    match &spec.until_done {
        Some(name) => {
            let id = soc
                .master_id(name)
                .expect("until_done master validated at parse time");
            let _ = soc.run_until_done(id, cycles);
        }
        None => soc.run(cycles),
    }
    assertion_verdicts(&evaluate_expectations(&spec, &soc, &fabric))
}

fn hunt(args: HuntArgs) -> Result<(), String> {
    let text =
        load_scenario_text(&args.scenario_path).map_err(|e| e.diagnostic(&args.scenario_path))?;
    let result = run_hunt(&text, &args.options)?;

    if let Some(path) = &args.fgq {
        std::fs::write(path, &result.winner_fgq)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{}\n", result.report.to_pretty()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    let m = &result.outcome.best.measured;
    let cand = &result.outcome.best.candidate;
    if !args.quiet {
        println!(
            "hunt: seed {}, {} evaluation(s) across {} family(ies), \
             {} refinement round(s), {} bisection probe(s)",
            args.options.config.seed,
            result.outcome.evals_used,
            result.outcome.families,
            result.outcome.rounds,
            result.outcome.bisect_evals,
        );
        println!(
            "worst case: {} aggressor(s), {} fault(s), period {} budget {}",
            cand.family.aggressors.len(),
            cand.family.faults.len(),
            cand.period,
            cand.budget,
        );
        println!(
            "  critical p50 {} p99 {} max {} cycles, {} bytes",
            m.p50, m.p99, m.max, m.bytes
        );
        let bound = result.report.get("bound");
        match bound
            .and_then(|b| b.get("delay_bound"))
            .and_then(|v| v.as_u64())
        {
            Some(limit) => println!(
                "  analytic delay bound {limit} cycles: measured max {} ({})",
                m.max,
                if result.bound_violated {
                    "VIOLATED"
                } else {
                    "holds"
                }
            ),
            None => println!("  analytic delay bound: unmodeled for this configuration"),
        }
        println!(
            "  winner replay: {}",
            if result.replay_verified {
                "verified bit-identical"
            } else {
                "MISMATCH"
            }
        );
    }
    if result.bound_violated {
        eprintln!(
            "warning: measured worst case exceeds the analytic bound; \
             pin the emitted scenario as a regression case"
        );
    }
    if !result.replay_verified {
        return Err("winner replay did not reproduce the measured worst case".to_string());
    }
    Ok(())
}

fn batch_executor_for(blob_dir: &Option<PathBuf>) -> BatchExecutor {
    match blob_dir {
        Some(dir) => serve_batch_executor_with_store(dir.clone()),
        None => serve_batch_executor(),
    }
}

fn serve(args: ServeArgs) -> Result<(), String> {
    if args.workers.is_some() {
        return serve_fleet(args);
    }
    let handle = start_live(
        ServeConfig {
            addr: args.addr,
            threads: args.threads,
            max_frame_bytes: args.max_frame_bytes,
            admission: args.admission,
            default_deadline_ms: args.default_deadline_ms,
            cache_dir: args.cache_dir,
        },
        serve_executor(),
        batch_executor_for(&args.blob_dir),
        serve_snapshot_executor(),
        serve_live_executor(),
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    // Scripts (and CI) parse this line for the bound port.
    println!("listening on {}", handle.addr());
    handle.join();
    println!("server drained and stopped");
    Ok(())
}

/// Fleet mode: a coordinator plus `--workers N` spawned worker
/// processes (re-invocations of this binary as `fgqos worker`).
fn serve_fleet(args: ServeArgs) -> Result<(), String> {
    let n = args.workers.unwrap_or(0);
    let handle = start_coordinator(CoordinatorConfig {
        addr: args.addr,
        max_frame_bytes: args.max_frame_bytes,
        cache_dir: args.cache_dir,
        ..CoordinatorConfig::default()
    })
    .map_err(|e| format!("cannot start coordinator: {e}"))?;
    println!("listening on {}", handle.addr());

    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("worker")
            .arg("--connect")
            .arg(handle.addr().to_string())
            // Workers print their own "listening on" line; keep the
            // coordinator's the only one on stdout for port-scraping
            // scripts.
            .stdout(std::process::Stdio::null());
        if args.threads != 0 {
            cmd.arg("--threads").arg(args.threads.to_string());
        }
        if let Some(dir) = &args.blob_dir {
            cmd.arg("--blob-dir").arg(dir);
        }
        if args.admit_overridden {
            cmd.arg("--admit-budget")
                .arg(args.admission.budget_bytes.to_string());
            cmd.arg("--admit-depth")
                .arg(args.admission.depth_bytes.to_string());
        } else {
            // All fleet ingress funnels through one coordinator
            // principal, so per-client throttling defaults sized for
            // external clients would strangle it; effectively disable
            // admission on spawned workers unless the operator asked.
            cmd.arg("--admit-budget").arg((1u32 << 30).to_string());
            cmd.arg("--admit-depth").arg((1u32 << 30).to_string());
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn worker: {e}"))?;
        eprintln!("spawned worker pid {}", child.id());
        children.push(child);
    }
    // Wait for the spawned fleet to register before declaring ready.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while handle.core().live_worker_count() < n {
        if std::time::Instant::now() >= deadline {
            return Err(format!(
                "only {} of {n} workers registered within 30s",
                handle.core().live_worker_count()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if n > 0 {
        println!("fleet ready: {n} workers");
    }
    handle.join();
    for mut child in children {
        let _ = child.wait();
    }
    println!("coordinator drained and stopped");
    Ok(())
}

fn worker(args: WorkerArgs) -> Result<(), String> {
    let handle = start_live(
        ServeConfig {
            addr: args.addr,
            threads: args.threads,
            max_frame_bytes: args.max_frame_bytes,
            admission: args.admission,
            default_deadline_ms: None,
            cache_dir: None,
        },
        serve_executor(),
        batch_executor_for(&args.blob_dir),
        serve_snapshot_executor(),
        serve_live_executor(),
    )
    .map_err(|e| format!("cannot start worker: {e}"))?;
    println!("listening on {}", handle.addr());
    // The coordinator may still be binding when we come up; retry the
    // registration briefly before giving up.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let outcome = Client::connect(&args.connect)
            .and_then(|mut c| c.register_worker(&handle.addr().to_string()));
        match outcome {
            Ok(live) => {
                eprintln!("registered with {} ({live} live workers)", args.connect);
                break;
            }
            Err(e) if std::time::Instant::now() >= deadline => {
                return Err(format!("cannot register with {}: {e}", args.connect));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    handle.join();
    println!("worker drained and stopped");
    Ok(())
}

fn submit(args: SubmitArgs) -> Result<(), String> {
    let text =
        load_scenario_text(&args.scenario_path).map_err(|e| e.diagnostic(&args.scenario_path))?;
    // Run-control directives are resolved client-side so the wire job is
    // fully explicit; the flattened (extends-resolved) text is what the
    // server hashes for its cache.
    let spec = ScenarioSpec::parse(&text).map_err(|e| e.diagnostic(&args.scenario_path))?;
    let cycles = args.cycles.or(spec.cycles).unwrap_or(DEFAULT_CYCLES);
    let until_done = args.until_done.clone().or(spec.until_done);
    let mut client =
        Client::connect(&args.addr).map_err(|e| format!("cannot connect to {}: {e}", args.addr))?;
    let opts = SubmitOptions {
        until_done,
        client: args.client.clone(),
        deadline_ms: args.deadline_ms,
    };
    let (ack, report) = client
        .submit_and_wait(&text, cycles, &opts, Duration::from_millis(args.timeout_ms))
        .map_err(|e| match e {
            ClientError::Denied(m) => format!("server denied the submission: {m}"),
            other => other.to_string(),
        })?;
    eprintln!(
        "job {} {}",
        ack.job,
        if ack.cached {
            "(cache hit)"
        } else {
            "(executed)"
        }
    );
    // Exactly the document `fgqos <file> --json` prints, so the two
    // paths diff byte-identically.
    println!("{}", report.to_pretty());
    // The document carries the assertion summary across the wire; the
    // exit status must match a local run of the same scenario.
    if let Some((_, failed)) = Report::from_json(&report)
        .ok()
        .as_ref()
        .and_then(assertion_outcome)
    {
        if failed > 0 {
            return Err(format!("{failed} assertion(s) failed"));
        }
    }
    Ok(())
}

/// One human-readable line per streamed frame: window span, per-master
/// window bytes, and any control writes the boundary absorbed.
fn frame_line(doc: &Value) -> String {
    let field = |k: &str| doc.get(k).and_then(Value::as_u64).unwrap_or(0);
    let mut line = format!(
        "window {:>4} [{}..{}]",
        field("window"),
        field("start"),
        field("end")
    );
    if let Some(masters) = doc.get("masters").and_then(Value::as_arr) {
        for m in masters {
            let name = m.get("name").and_then(Value::as_str).unwrap_or("?");
            let bytes = m.get("bytes").and_then(Value::as_u64).unwrap_or(0);
            line.push_str(&format!("  {name} {bytes}B"));
        }
    }
    if let Some(controls) = doc.get("controls").and_then(Value::as_arr) {
        for c in controls {
            line.push_str(&format!(
                "  [ctl {} {}={}]",
                c.get("target").and_then(Value::as_str).unwrap_or("?"),
                c.get("set").and_then(Value::as_str).unwrap_or("?"),
                c.get("value").map(Value::to_compact).unwrap_or_default()
            ));
        }
    }
    line
}

/// Reads a `u64` context line (e.g. `cycles`) back out of a report.
fn report_context_u64(report: &Report, key: &str) -> Option<u64> {
    use fgqos::bench::report::Block;
    report.blocks().iter().find_map(|b| match b {
        Block::Context { key: k, value } if k == key => value.parse().ok(),
        _ => None,
    })
}

/// Verifies a finished run's determinism contract client-side: replays
/// the journal doc's synthesized scenario as one monolithic local run
/// and byte-compares the rendered report against the server's.
fn verify_replay(doc: &Value) -> Result<(), String> {
    let replay = doc
        .get("replay_scenario")
        .and_then(Value::as_str)
        .ok_or("journal carries no replay scenario (run not finished?)")?;
    let report = doc.get("report").ok_or("journal carries no final report")?;
    let parsed =
        Report::from_json(report).map_err(|e| format!("bad report in journal doc: {e}"))?;
    let cycles = report_context_u64(&parsed, "cycles")
        .ok_or("report in journal doc has no cycles context")?;
    let opts = LiveOptions {
        cycles,
        // The replay is monolithic; the window only shapes the live side.
        window: 1,
        naive: None,
        leap: None,
    };
    let (local, _fingerprint) = live_replay_report(replay, &opts).map_err(|e| e.to_string())?;
    if local.to_json().to_compact() == report.to_compact() {
        println!("replay verified: byte-identical");
        Ok(())
    } else {
        Err("replay mismatch: local monolithic replay differs from the live report".to_string())
    }
}

fn watch(args: WatchArgs) -> Result<(), String> {
    let mut client =
        Client::connect(&args.addr).map_err(|e| format!("cannot connect to {}: {e}", args.addr))?;
    let run = match &args.scenario_path {
        Some(path) => {
            let text = load_scenario_text(path).map_err(|e| e.diagnostic(path))?;
            // Parse client-side: a bad scenario fails here with line
            // numbers instead of as a server error string.
            let spec = ScenarioSpec::parse(&text).map_err(|e| e.diagnostic(path))?;
            let cycles = args.cycles.or(spec.cycles).unwrap_or(DEFAULT_CYCLES);
            let live = LiveSpec {
                scenario: text,
                cycles,
                window: args.window,
                pace_ms: args.pace_ms,
            };
            client
                .subscribe(&live, None)
                .map_err(|e| format!("subscribe failed: {e}"))?
        }
        None => {
            let run = args.run.expect("parser guarantees one of scenario/--run");
            client
                .subscribe_run(run)
                .map_err(|e| format!("subscribe failed: {e}"))?
        }
    };
    // Scripts (and CI) parse this line for the run id to `fgqos ctl`.
    println!("run {run}");
    let end = loop {
        let doc = client.next_live_frame().map_err(|e| e.to_string())?;
        if doc.get("stream").and_then(Value::as_str) == Some("end") {
            break doc;
        }
        if args.json {
            println!("{}", doc.to_compact());
        } else {
            println!("{}", frame_line(&doc));
        }
    };
    let text_of = |k: &str| {
        end.get(k)
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let count_of = |k: &str| end.get(k).and_then(Value::as_u64).unwrap_or(0);
    let state = text_of("state");
    eprintln!(
        "stream ended: {state}, {} frames, {} controls, {} dropped",
        count_of("frames"),
        count_of("controls"),
        count_of("dropped"),
    );
    if state != "done" {
        return Err(format!("live run failed: {}", text_of("error")));
    }
    if args.verify_replay {
        // The connection reverted to request/response at end-of-stream.
        let doc = client
            .journal(run)
            .map_err(|e| format!("journal fetch failed: {e}"))?;
        verify_replay(&doc)?;
    }
    Ok(())
}

fn ctl(args: CtlArgs) -> Result<(), String> {
    let mut client =
        Client::connect(&args.addr).map_err(|e| format!("cannot connect to {}: {e}", args.addr))?;
    let queued = client
        .control(args.run, &args.master, args.set)
        .map_err(|e| format!("control failed: {e}"))?;
    println!(
        "queued {} {} for run {} at position {queued}",
        args.set.key(),
        args.master,
        args.run
    );
    Ok(())
}

/// `--version`: the crate version plus every versioned wire/disk format
/// this binary speaks, so a bug report names them all in one line each.
fn version_text() -> String {
    format!(
        "fgqos {}\nserve protocol: {}\nsnapshot stream: {}\nhunt report: {} v{}\nlive stream: {} v{}\ncontrol journal: {} v{}",
        env!("CARGO_PKG_VERSION"),
        SERVE_VERSION,
        fgqos::sim::SNAPSHOT_VERSION,
        fgqos::hunt_engine::HUNT_SCHEMA,
        fgqos::hunt_engine::HUNT_VERSION,
        LIVE_SCHEMA,
        LIVE_VERSION,
        JOURNAL_SCHEMA,
        JOURNAL_VERSION,
    )
}

fn shutdown(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let summary = client.shutdown().map_err(|e| e.to_string())?;
    let stat = |k: &str| {
        summary
            .get(k)
            .and_then(fgqos::sim::json::Value::as_u64)
            .unwrap_or(0)
    };
    println!(
        "server drained: {} submitted, {} executed, {} failed, {} expired",
        stat("submitted"),
        stat("executed"),
        stat("failed"),
        stat("expired"),
    );
    Ok(())
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Cmd::Help) => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Ok(Cmd::Version) => {
            println!("{}", version_text());
            ExitCode::SUCCESS
        }
        Ok(cmd) => {
            let outcome = match cmd {
                Cmd::Help | Cmd::Version => unreachable!("handled above"),
                Cmd::Run(args) => run(args),
                Cmd::Check { scenario_path } => check(&scenario_path),
                Cmd::Hunt(args) => hunt(args),
                Cmd::Serve(args) => serve(args),
                Cmd::Worker(args) => worker(args),
                Cmd::Submit(args) => submit(args),
                Cmd::Watch(args) => watch(args),
                Cmd::Ctl(args) => ctl(args),
                Cmd::Shutdown { addr } => shutdown(&addr),
            };
            match outcome {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Cmd, String> {
        parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_run_defaults() {
        let Ok(Cmd::Run(a)) = args(&["scen.fgq"]) else {
            panic!("expected run");
        };
        assert_eq!(a.scenario_path, "scen.fgq");
        assert_eq!(a.cycles, None, "resolved later against the scenario");
        assert!(a.until_done.is_none());
        assert!(!a.json && !a.quiet && !a.histogram);
    }

    #[test]
    fn parses_hunt_options() {
        let Ok(Cmd::Hunt(h)) = args(&["hunt", "s.fgq"]) else {
            panic!("expected hunt");
        };
        assert_eq!(h.scenario_path, "s.fgq");
        assert_eq!(h.options.config.seed, HuntOptions::default().config.seed);
        assert!(h.options.addr.is_none() && h.out.is_none() && h.fgq.is_none());
        assert!(!h.quiet);

        let Ok(Cmd::Hunt(h)) = args(&[
            "hunt",
            "s.fgq",
            "--seed",
            "9",
            "--evals",
            "12",
            "--explore",
            "6",
            "--top-k",
            "2",
            "--mutants",
            "5",
            "--bisect",
            "4",
            "--objective",
            "p99",
            "--warmup",
            "5000",
            "--cycles",
            "7000",
            "--addr",
            "127.0.0.1:7171",
            "--out",
            "r.json",
            "--fgq",
            "w.fgq",
            "--quiet",
        ]) else {
            panic!("expected hunt");
        };
        assert_eq!(h.options.config.seed, 9);
        assert_eq!(h.options.config.evals, 12);
        assert_eq!(h.options.config.explore, 6);
        assert_eq!(h.options.config.top_k, 2);
        assert_eq!(h.options.config.mutants_per_parent, 5);
        assert_eq!(h.options.config.bisect, 4);
        assert!(matches!(h.options.config.objective, Objective::P99));
        assert_eq!(h.options.warmup, 5_000);
        assert_eq!(h.options.tail_cycles, 7_000);
        assert_eq!(h.options.addr.as_deref(), Some("127.0.0.1:7171"));
        assert_eq!(h.out.as_deref(), Some(std::path::Path::new("r.json")));
        assert_eq!(h.fgq.as_deref(), Some(std::path::Path::new("w.fgq")));
        assert!(h.quiet);

        assert!(args(&["hunt"]).is_err(), "scenario file is required");
        assert!(args(&["hunt", "s.fgq", "--objective", "mean"]).is_err());
        assert!(matches!(args(&["hunt", "--help"]), Ok(Cmd::Help)));
    }

    #[test]
    fn parses_all_run_options() {
        let Ok(Cmd::Run(a)) = args(&[
            "s.fgq",
            "--cycles",
            "500",
            "--until-done",
            "cpu",
            "--json",
            "--quiet",
            "--histogram",
        ]) else {
            panic!("expected run");
        };
        assert_eq!(a.cycles, Some(500));
        assert_eq!(a.until_done.as_deref(), Some("cpu"));
        assert!(a.json && a.quiet && a.histogram);
    }

    #[test]
    fn help_is_not_an_error() {
        assert!(matches!(args(&["--help"]), Ok(Cmd::Help)));
        assert!(matches!(args(&["-h"]), Ok(Cmd::Help)));
        assert!(matches!(args(&["serve", "--help"]), Ok(Cmd::Help)));
        assert!(matches!(args(&["s.fgq", "-h"]), Ok(Cmd::Help)));
    }

    #[test]
    fn parses_subcommands() {
        assert!(matches!(
            args(&["check", "s.fgq"]),
            Ok(Cmd::Check { scenario_path }) if scenario_path == "s.fgq"
        ));
        let Ok(Cmd::Serve(s)) = args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "3",
            "--admit-period-ms",
            "50",
        ]) else {
            panic!("expected serve");
        };
        assert_eq!(s.addr, "127.0.0.1:0");
        assert_eq!(s.threads, 3);
        assert_eq!(s.admission.period_cycles, 50_000);
        let Ok(Cmd::Submit(su)) = args(&[
            "submit",
            "s.fgq",
            "--addr",
            "127.0.0.1:9",
            "--cycles",
            "42",
            "--client",
            "ci",
        ]) else {
            panic!("expected submit");
        };
        assert_eq!(su.scenario_path, "s.fgq");
        assert_eq!(su.addr, "127.0.0.1:9");
        assert_eq!(su.cycles, Some(42));
        assert_eq!(su.client.as_deref(), Some("ci"));
        assert!(matches!(args(&["shutdown"]), Ok(Cmd::Shutdown { .. })));
    }

    #[test]
    fn parses_fleet_options() {
        let Ok(Cmd::Serve(s)) = args(&[
            "serve",
            "--workers",
            "4",
            "--cache-dir",
            "/tmp/cache",
            "--blob-dir",
            "/tmp/blobs",
        ]) else {
            panic!("expected serve");
        };
        assert_eq!(s.workers, Some(4));
        assert_eq!(
            s.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/cache"))
        );
        assert_eq!(
            s.blob_dir.as_deref(),
            Some(std::path::Path::new("/tmp/blobs"))
        );
        assert!(!s.admit_overridden);
        let Ok(Cmd::Worker(w)) = args(&[
            "worker",
            "--connect",
            "127.0.0.1:7171",
            "--blob-dir",
            "/tmp/blobs",
        ]) else {
            panic!("expected worker");
        };
        assert_eq!(w.connect, "127.0.0.1:7171");
        assert_eq!(w.addr, "127.0.0.1:0");
        assert!(args(&["worker"]).is_err(), "worker requires --connect");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(args(&[]).is_err());
        assert!(args(&["a", "b"]).is_err());
        assert!(args(&["a", "--cycles"]).is_err());
        assert!(args(&["a", "--cycles", "xyz"]).is_err());
        assert!(args(&["a", "--frobnicate"]).is_err());
        assert!(args(&["check"]).is_err());
        assert!(args(&["serve", "--bogus"]).is_err());
        assert!(args(&["submit"]).is_err());
    }

    #[test]
    fn parses_version() {
        assert!(matches!(args(&["--version"]), Ok(Cmd::Version)));
        assert!(matches!(args(&["-V"]), Ok(Cmd::Version)));
        let text = version_text();
        assert!(text.starts_with(concat!("fgqos ", env!("CARGO_PKG_VERSION"))));
        assert!(text.contains(&format!("serve protocol: {SERVE_VERSION}")));
    }

    #[test]
    fn parses_watch_options() {
        let Ok(Cmd::Watch(w)) = args(&["watch", "s.fgq"]) else {
            panic!("expected watch");
        };
        assert_eq!(w.scenario_path.as_deref(), Some("s.fgq"));
        assert_eq!(w.run, None);
        assert_eq!(w.window, DEFAULT_LIVE_WINDOW);
        assert_eq!(w.pace_ms, 0);
        assert!(!w.json && !w.verify_replay);

        let Ok(Cmd::Watch(w)) = args(&[
            "watch",
            "--run",
            "7",
            "--addr",
            "127.0.0.1:9",
            "--window",
            "5000",
            "--json",
            "--verify-replay",
        ]) else {
            panic!("expected watch");
        };
        assert_eq!(w.run, Some(7));
        assert_eq!(w.addr, "127.0.0.1:9");
        assert_eq!(w.window, 5_000);
        assert!(w.json && w.verify_replay);

        assert!(args(&["watch"]).is_err(), "needs a scenario or --run");
        assert!(
            args(&["watch", "s.fgq", "--run", "1"]).is_err(),
            "scenario and --run are exclusive"
        );
        assert!(args(&["watch", "s.fgq", "--window", "0"]).is_err());
        assert!(matches!(args(&["watch", "--help"]), Ok(Cmd::Help)));
    }

    #[test]
    fn parses_ctl_options() {
        let Ok(Cmd::Ctl(c)) = args(&["ctl", "--run", "3", "--master", "dma", "--budget", "512"])
        else {
            panic!("expected ctl");
        };
        assert_eq!(c.run, 3);
        assert_eq!(c.master, "dma");
        assert_eq!(c.set, ControlSet::Budget(512));
        assert_eq!(c.addr, DEFAULT_ADDR);

        let Ok(Cmd::Ctl(c)) = args(&["ctl", "--run", "3", "--master", "dma", "--period", "250"])
        else {
            panic!("expected ctl");
        };
        assert_eq!(c.set, ControlSet::Period(250));

        let Ok(Cmd::Ctl(c)) = args(&["ctl", "--run", "3", "--master", "dma", "--enable", "off"])
        else {
            panic!("expected ctl");
        };
        assert_eq!(c.set, ControlSet::Enable(false));

        assert!(args(&["ctl", "--master", "dma", "--budget", "1"]).is_err());
        assert!(args(&["ctl", "--run", "3", "--budget", "1"]).is_err());
        assert!(args(&["ctl", "--run", "3", "--master", "dma"]).is_err());
        assert!(
            args(&["ctl", "--run", "3", "--master", "dma", "--budget", "1", "--period", "2"])
                .is_err(),
            "exactly one register write per ctl"
        );
        assert!(args(&["ctl", "--run", "3", "--master", "dma", "--period", "0"]).is_err());
        assert!(args(&["ctl", "--run", "3", "--master", "dma", "--enable", "maybe"]).is_err());
    }

    #[test]
    fn run_reports_missing_file() {
        let e = run(RunArgs {
            scenario_path: "/nonexistent/scenario.fgq".into(),
            cycles: Some(10),
            until_done: None,
            json: false,
            quiet: true,
            histogram: false,
        })
        .unwrap_err();
        assert!(e.contains("cannot read"));
    }
}
