//! Fleet benchmark harness: the three headline numbers of the
//! persistent-snapshot + sharded-serve work, printed as JSON for
//! `BENCH_serve.json`.
//!
//! * `worker_curve` — aggregate fleet throughput on a saturating batch
//!   mix (two 8-point `submit_batch` slices plus eight distinct single
//!   submits) against coordinators spawning 1, 2 and 4 worker
//!   processes. On a multi-core host the curve is expected to scale
//!   near-linearly to the physical core count; the harness records
//!   whatever the container exposes.
//! * `blob_vs_fork` — the cost of rebuilding a warm boundary from a
//!   serialized blob (decode + fingerprint-verified load into a fresh
//!   skeleton + fork + tail) against forking the same boundary already
//!   held in memory, the cold-start price a worker pays the first time
//!   it pulls a peer's boundary from the shared store.
//! * `restart_hit` — submit → result round-trip of a cache hit answered
//!   by a coordinator that was stopped and restarted over the same
//!   `--cache-dir` (the persistent result cache), vs the same hit
//!   before the restart.
//! * `hunt_eval` — `fgqos hunt` candidate-evaluation throughput
//!   (candidates/s) with the local batch pool vs the same search routed
//!   through serve lanes (`--addr`), asserting the two transports
//!   produce byte-identical reports.
//!
//! ```text
//! cargo run --release --bin fleet_bench            # all sections
//! cargo run --release --bin fleet_bench -- curve   # one section
//! ```

use fgqos::bench::scenarios::{regulated_soc, warm_start_snapshot, WARM_START_TAIL_CYCLES};
use fgqos::hunt::{run_hunt, HuntOptions};
use fgqos::hunt_engine::HuntConfig;
use fgqos::serve::client::{Client, SubmitOptions};
use fgqos::serve::protocol::{BatchKind, BatchPoint, BatchSpec};
use fgqos::sim::snapshot::SocSnapshot;
use fgqos::sim::SnapshotBlob;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SINGLE_CYCLES: u64 = 20_000_000;
const BATCH_CYCLES: u64 = 5_000_000;
const BATCH_WARMUP: u64 = 10_000_000;

fn scenario(tag: u64) -> String {
    format!(
        "# fleet-bench {tag}\nclock_mhz 1000\n\n[master cpu]\nkind cpu\nrole critical\n\
         pattern seq\nfootprint 1M\ntxn 256\ntotal 2000\n\n[master dma]\nkind accel\n\
         role best-effort\nperiod 1000\nbudget 2K\npattern seq\nbase 0x40000000\n\
         footprint 4M\ntxn 512\n"
    )
}

fn fgqos_bin() -> PathBuf {
    let me = std::env::current_exe().expect("own path");
    me.parent().expect("bin dir").join("fgqos")
}

struct Fleet {
    child: Child,
    addr: String,
    out: Arc<Mutex<Vec<String>>>,
}

fn drain_lines(stream: impl std::io::Read + Send + 'static) -> Arc<Mutex<Vec<String>>> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    std::thread::spawn(move || {
        for line in BufReader::new(stream).lines() {
            match line {
                Ok(l) => sink.lock().unwrap().push(l),
                Err(_) => break,
            }
        }
    });
    lines
}

fn wait_for(lines: &Arc<Mutex<Vec<String>>>, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(l) = lines.lock().unwrap().iter().find(|l| pred(l)) {
            return l.clone();
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; saw {:?}",
            lines.lock().unwrap()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Starts `fgqos serve --workers <n>` and waits for the fleet to form.
fn start_fleet(workers: usize, cache_dir: Option<&Path>, blob_dir: &Path) -> Fleet {
    let mut cmd = Command::new(fgqos_bin());
    cmd.args(["serve", "--addr", "127.0.0.1:0"])
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--blob-dir")
        .arg(blob_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(dir) = cache_dir {
        cmd.arg("--cache-dir").arg(dir);
    }
    let mut child = cmd.spawn().expect("spawn fgqos serve");
    let out = drain_lines(child.stdout.take().expect("stdout piped"));
    let addr = wait_for(&out, "listening line", |l| l.starts_with("listening on "))
        .trim_start_matches("listening on ")
        .to_string();
    wait_for(&out, "fleet ready", |l| l.contains("fleet ready:"));
    Fleet { child, addr, out }
}

fn stop_fleet(mut fleet: Fleet) {
    let mut client = Client::connect(&fleet.addr).expect("connect for shutdown");
    client.shutdown().expect("drain");
    let deadline = Instant::now() + Duration::from_secs(60);
    while fleet.child.try_wait().expect("poll").is_none() {
        assert!(Instant::now() < deadline, "fleet did not drain");
        std::thread::sleep(Duration::from_millis(50));
    }
    wait_for(&fleet.out, "drain message", |l| {
        l.contains("coordinator drained and stopped")
    });
}

/// The saturating mix: two 8-point batches plus eight heavy singles,
/// all distinct (every job misses the cache). Returns jobs/s.
fn mix_throughput(addr: &str, round: u64) -> (f64, usize) {
    let mut client = Client::connect(addr).expect("connect");
    let opts = SubmitOptions::default();
    let t0 = Instant::now();
    let mut jobs = Vec::new();
    for b in 0..2u64 {
        let points: Vec<BatchPoint> = (0..8)
            .map(|i| BatchPoint {
                period: 1_000,
                budget: 1 << (9 + i),
            })
            .collect();
        let spec = BatchSpec {
            scenario: scenario(round * 100 + b),
            cycles: BATCH_CYCLES,
            until_done: None,
            warmup: BATCH_WARMUP,
            points,
            kind: BatchKind::Sweep,
        };
        jobs.extend(client.submit_batch(&spec, &opts).expect("batch ack").jobs);
    }
    for s in 0..8u64 {
        let ack = client
            .submit(&scenario(round * 100 + 10 + s), SINGLE_CYCLES, &opts)
            .expect("single ack");
        jobs.push(ack.job);
    }
    let n = jobs.len();
    for job in jobs {
        client
            .wait_report(job, Duration::from_secs(600))
            .expect("job report");
    }
    (n as f64 / t0.elapsed().as_secs_f64(), n)
}

fn bench_curve(scratch: &Path) {
    println!("  \"worker_curve\": {{");
    for (i, workers) in [1usize, 2, 4].into_iter().enumerate() {
        let blob_dir = scratch.join(format!("curve-blobs-{workers}"));
        let fleet = start_fleet(workers, None, &blob_dir);
        let (jps, n) = mix_throughput(&fleet.addr, workers as u64);
        stop_fleet(fleet);
        let sep = if i == 2 { "" } else { "," };
        println!("    \"workers_{workers}\": {{ \"jobs_per_s\": {jps:.2}, \"jobs\": {n} }}{sep}");
    }
    println!("  }},");
}

fn bench_blob_vs_fork() {
    let snap = warm_start_snapshot();
    let bytes = snap.to_blob("fleet-bench").encode();
    let reps = 5;
    let mut fork_best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut soc = snap.fork();
        soc.run(WARM_START_TAIL_CYCLES);
        fork_best = fork_best.min(t0.elapsed().as_secs_f64());
    }
    let mut blob_best = f64::INFINITY;
    for _ in 0..reps {
        let skeleton = regulated_soc(4);
        let t0 = Instant::now();
        let blob = SnapshotBlob::decode(&bytes).expect("decode");
        let restored = SocSnapshot::load_into(skeleton, &blob).expect("load");
        let mut soc = restored.fork();
        soc.run(WARM_START_TAIL_CYCLES);
        blob_best = blob_best.min(t0.elapsed().as_secs_f64());
    }
    println!("  \"blob_vs_fork\": {{");
    println!("    \"blob_bytes\": {},", bytes.len());
    println!("    \"in_memory_fork_tail_ns\": {:.0},", fork_best * 1e9);
    println!("    \"cold_load_fork_tail_ns\": {:.0},", blob_best * 1e9);
    println!(
        "    \"cold_load_overhead_ns\": {:.0}",
        (blob_best - fork_best) * 1e9
    );
    println!("  }},");
}

fn bench_restart_hit(scratch: &Path) {
    let cache_dir = scratch.join("restart-cache");
    let blob_dir = scratch.join("restart-blobs");
    let text = scenario(999_999);
    let opts = SubmitOptions::default();
    let timeout = Duration::from_secs(120);

    let fleet = start_fleet(1, Some(&cache_dir), &blob_dir);
    let mut client = Client::connect(&fleet.addr).expect("connect");
    let (_, first) = client
        .submit_and_wait(&text, SINGLE_CYCLES, &opts, timeout)
        .expect("uncached run");
    let t0 = Instant::now();
    let (_, warm_hit) = client
        .submit_and_wait(&text, SINGLE_CYCLES, &opts, timeout)
        .expect("warm cache hit");
    let warm_ns = t0.elapsed().as_secs_f64() * 1e9;
    assert_eq!(
        first.to_compact(),
        warm_hit.to_compact(),
        "cache hit must be byte-identical"
    );
    drop(client);
    stop_fleet(fleet);

    let fleet = start_fleet(1, Some(&cache_dir), &blob_dir);
    let mut client = Client::connect(&fleet.addr).expect("reconnect");
    let t0 = Instant::now();
    let (_, cold_hit) = client
        .submit_and_wait(&text, SINGLE_CYCLES, &opts, timeout)
        .expect("restart cache hit");
    let restart_ns = t0.elapsed().as_secs_f64() * 1e9;
    assert_eq!(
        first.to_compact(),
        cold_hit.to_compact(),
        "restart hit must be byte-identical to the pre-restart run"
    );
    drop(client);
    stop_fleet(fleet);

    println!("  \"restart_hit\": {{");
    println!("    \"same_process_hit_ns\": {warm_ns:.0},");
    println!("    \"post_restart_hit_ns\": {restart_ns:.0}");
    println!("  }},");
}

fn bench_hunt(scratch: &Path) {
    let text = scenario(777_777);
    let opts = |addr: Option<String>| HuntOptions {
        config: HuntConfig {
            seed: 5,
            evals: 12,
            explore: 8,
            ..HuntConfig::default()
        },
        warmup: 30_000,
        tail_cycles: 40_000,
        addr,
    };

    let t0 = Instant::now();
    let local = run_hunt(&text, &opts(None)).expect("local hunt");
    let local_s = t0.elapsed().as_secs_f64();

    let blob_dir = scratch.join("hunt-blobs");
    let fleet = start_fleet(2, None, &blob_dir);
    let t0 = Instant::now();
    let served = run_hunt(&text, &opts(Some(fleet.addr.clone()))).expect("served hunt");
    let serve_s = t0.elapsed().as_secs_f64();
    stop_fleet(fleet);

    assert_eq!(
        local.report.to_compact(),
        served.report.to_compact(),
        "local-pool and serve-lane hunts must produce byte-identical reports"
    );
    let evals = local.outcome.evals_used as f64;
    println!("  \"hunt_eval\": {{");
    println!("    \"evaluations\": {},", local.outcome.evals_used);
    println!("    \"families\": {},", local.outcome.families);
    println!(
        "    \"local_pool_candidates_per_s\": {:.2},",
        evals / local_s
    );
    println!(
        "    \"serve_lanes_candidates_per_s\": {:.2},",
        evals / serve_s
    );
    println!("    \"reports_identical\": true");
    println!("  }}");
}

fn main() {
    let section = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let scratch = std::env::temp_dir().join(format!("fgqos-fleet-bench-{}", std::process::id()));
    println!("{{");
    if section == "all" || section == "curve" {
        bench_curve(&scratch);
    }
    if section == "all" || section == "blob" {
        bench_blob_vs_fork();
    }
    if section == "all" || section == "restart" {
        bench_restart_hit(&scratch);
    }
    if section == "all" || section == "hunt" {
        bench_hunt(&scratch);
    }
    println!("}}");
    std::fs::remove_dir_all(&scratch).ok();
}
