//! EXP-W — Hunted worst-case interference vs. the analytic bound.
//!
//! Runs the `fgqos hunt` adversarial search against the rogue-DMA
//! scenario at several seeds and budgets, and reports the worst critical
//! latency each search finds next to the conservative delay bound of
//! the winning configuration (`fgqos_core::analysis`). Deeper searches
//! find equal-or-worse cases; every winner is replay-verified; and the
//! bound must dominate every measured maximum (`tests/bounds.rs` keeps
//! this continuously enforced on random configurations).
//!
//! Printed columns: seed, evals, families, winning aggressors/faults,
//! boundary period and budget, measured p99 and max, delay bound,
//! verdict (tightness or violation), replay verdict.

use fgqos::hunt::{run_hunt, HuntOptions};
use fgqos::hunt_engine::HuntConfig;
use fgqos_bench::report::Report;
use fgqos_bench::{sweep, table};
use fgqos_sim::json::Value;
use std::path::Path;

const WARMUP: u64 = 60_000;
const TAIL: u64 = 100_000;

fn main() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/rogue-dma.fgq");
    let text = fgqos::scenario::load_scenario_text(&path.display().to_string())
        .unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()));

    let mut r = Report::new("exp_worstcase");
    r.banner(
        "EXP-W",
        "hunted worst-case interference vs. the analytic delay bound",
    );
    r.context("scenario", "scenarios/rogue-dma.fgq");
    r.context("warmup", WARMUP);
    r.context("tail_cycles", TAIL);
    r.context("objective", "max_latency");
    r.header(&[
        "seed", "evals", "families", "aggr", "faults", "period", "budget", "p99", "max", "bound",
        "verdict", "replay",
    ]);

    let configs: Vec<(u64, usize)> = vec![(1, 16), (2, 16), (3, 16), (1, 40)];
    let rows = sweep::run_parallel(configs, |(seed, evals)| {
        let opts = HuntOptions {
            config: HuntConfig {
                seed,
                evals,
                explore: evals / 2,
                ..HuntConfig::default()
            },
            warmup: WARMUP,
            tail_cycles: TAIL,
            addr: None,
        };
        let result = run_hunt(&text, &opts).expect("hunt runs");
        let m = &result.outcome.best.measured;
        let cand = &result.outcome.best.candidate;
        let bound = result
            .report
            .get("bound")
            .and_then(|b| b.get("delay_bound"))
            .and_then(Value::as_u64);
        let verdict = match bound {
            Some(limit) if m.max > limit => format!("VIOLATED +{}", m.max - limit),
            Some(limit) => format!("x{:.2}", limit as f64 / m.max.max(1) as f64),
            None => "unmodeled".to_string(),
        };
        vec![
            table::int(seed),
            table::int(evals as u64),
            table::int(result.outcome.families as u64),
            table::int(cand.family.aggressors.len() as u64),
            table::int(cand.family.faults.len() as u64),
            table::int(cand.period),
            table::int(cand.budget),
            table::int(m.p99),
            table::int(m.max),
            bound.map(table::int).unwrap_or_else(|| "-".to_string()),
            verdict,
            if result.replay_verified { "ok" } else { "FAIL" }.to_string(),
        ]
    });
    for row in rows {
        r.row(row);
    }
    r.blank();
    r.note(
        "bound/measured tightness is the price of analysability; a VIOLATED row \
         means the hunt found a case outside the model's guarantee and must be \
         triaged (the winning .fgq replays it bit-identically).",
    );
    r.emit();
}
