//! Declarative scenario files (Scenario DSL v2).
//!
//! Experiments on the real board are described by a configuration (which
//! ports exist, their roles, budgets, traffic) rather than by code. This
//! module gives the simulated stack the same workflow: a small
//! line-oriented text format parsed into a [`ScenarioSpec`], which builds
//! a ready-to-run [`Soc`] plus the
//! [`QosFabric`] software handle. The
//! `fgqos` CLI binary runs such files directly.
//!
//! The complete language reference lives in `docs/scenario-format.md`;
//! worked examples live in `scenarios/`. Every v1 scenario parses
//! unchanged.
//!
//! # Format
//!
//! ```text
//! # comments and blank lines are ignored
//! clock_mhz 1000
//! cycles 200000                    # default run length (CLI can override)
//! expect p99_latency(cpu) < 900    # checked after the run
//!
//! [master cpu]
//! kind cpu                 # cpu | accel
//! role critical            # critical | best-effort | unmanaged
//! pattern random           # seq | random | strided:<bytes>
//! base 0x0
//! footprint 4M
//! txn 256
//! think 1000
//! total 10000
//!
//! [master dma0]
//! kind accel
//! role best-effort
//! period 1000
//! budget 2048
//! pattern seq
//! base 0x40000000
//! footprint 16M
//! txn 1024
//!
//! [xbar]
//! arbitration weighted             # rr | priority | weighted
//! weights 4,1                      # one per master, in declaration order
//!
//! [policy reclaim]
//! reserved 2500
//! base 10240
//! control 10000
//! gain 25
//! busy 256
//!
//! [phase ramp]                     # timed regulator re-programming
//! at 50000
//! budget dma0 8192
//!
//! [fault storm]                    # timed fault injection
//! at 100000
//! rogue dma0                       # dma0 drops all rate limits
//! ```
//!
//! Masters also accept `burst <on> <off>` (on/off phasing in cycles),
//! `gap`, `write_ratio`, `dir`, `outstanding` and `seed`. Sizes accept
//! `K`/`M`/`G` suffixes (powers of two) and `0x` hex.
//!
//! v2 adds top-level `cycles`, `until_done`, `expect` and `extends`
//! directives, `[phase]` / `[fault]` sections and `[override master]`
//! re-opening (for `extends`-based variant files). Scenario inheritance
//! (`extends <path>`) is resolved textually by [`resolve_extends_with`] /
//! [`load_scenario_text`] before parsing.

use fgqos_core::fabric::{QosFabric, QosFabricBuilder};
use fgqos_core::policy::ReclaimConfig;
use fgqos_core::program::{FusedController, ProgramOp, ScenarioProgram, TimedOp};
use fgqos_sim::axi::Dir;
use fgqos_sim::dram::{DramConfig, RefreshStorm};
use fgqos_sim::gate::OpenGate;
use fgqos_sim::interconnect::{Arbitration, XbarConfig};
use fgqos_sim::master::MasterKind;
use fgqos_sim::system::{Soc, SocBuilder, SocConfig};
use fgqos_sim::time::{Cycle, Freq};
use fgqos_workloads::kernels::Kernel;
use fgqos_workloads::phased::PhasedSource;
use fgqos_workloads::spec::{AddressPattern, BurstShape, SpecSource, TrafficSpec};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Error from [`ScenarioSpec::parse`].
#[derive(Debug)]
pub struct ParseScenarioError {
    /// 1-based line number (0 for structural errors).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario line {}: {}", self.line, self.message)
    }
}

impl Error for ParseScenarioError {}

impl ParseScenarioError {
    /// Renders a compiler-style `file:line: message` diagnostic (the
    /// form `fgqos check` prints). Errors without a meaningful line
    /// (whole-file validation) render as `file: message`.
    pub fn diagnostic(&self, file: &str) -> String {
        if self.line > 0 {
            format!("{file}:{}: {}", self.line, self.message)
        } else {
            format!("{file}: {}", self.message)
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseScenarioError {
    ParseScenarioError {
        line,
        message: message.into(),
    }
}

/// Edit distance between two keys, for did-you-mean hints.
fn levenshtein(a: &str, b: &str) -> usize {
    let b_len = b.chars().count();
    let mut prev: Vec<usize> = (0..=b_len).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut cur = Vec::with_capacity(b_len + 1);
        cur.push(i + 1);
        for (j, cb) in b.chars().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b_len]
}

/// Renders ` (did you mean "…"?)` when some candidate is close to the
/// input, or an empty string. Ties break alphabetically so diagnostics
/// are deterministic.
fn suggest(input: &str, candidates: &[&str]) -> String {
    candidates
        .iter()
        .map(|c| (levenshtein(input, c), *c))
        .filter(|(d, c)| *d <= 2 && *d < c.len())
        .min()
        .map(|(_, c)| format!(" (did you mean {c:?}?)"))
        .unwrap_or_default()
}

const TOP_KEYS: &[&str] = &["clock_mhz", "cycles", "until_done", "expect", "extends"];
const MASTER_KEYS: &[&str] = &[
    "kind",
    "role",
    "burst",
    "workload",
    "pattern",
    "dir",
    "base",
    "footprint",
    "txn",
    "think",
    "gap",
    "total",
    "write_ratio",
    "period",
    "budget",
    "outstanding",
    "seed",
];
const XBAR_KEYS: &[&str] = &["arbitration", "weights"];
const RECLAIM_KEYS: &[&str] = &["reserved", "base", "control", "gain", "busy"];
const PHASE_KEYS: &[&str] = &["at", "budget", "period", "enable"];
const FAULT_KEYS: &[&str] = &[
    "at",
    "rogue",
    "bursty",
    "halt",
    "regulator",
    "controller",
    "refresh_storm",
];
const SECTION_NAMES: &[&str] = &["master", "override", "phase", "fault", "xbar", "policy"];
const EXPECT_METRICS: &[&str] = &[
    "p50_latency",
    "p99_latency",
    "max_latency",
    "bytes",
    "bandwidth",
    "isolation",
];

/// Parses `128`, `0x80`, `4K`, `16M`, `1G`.
fn parse_size(token: &str, line: usize) -> Result<u64, ParseScenarioError> {
    let t = token.trim();
    let (body, mult) = match t.chars().last() {
        Some('K') | Some('k') => (&t[..t.len() - 1], 1u64 << 10),
        Some('M') | Some('m') => (&t[..t.len() - 1], 1 << 20),
        Some('G') | Some('g') => (&t[..t.len() - 1], 1 << 30),
        _ => (t, 1),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|e| err(line, format!("bad number {token:?}: {e}")))?;
    Ok(v * mult)
}

fn parse_u32(token: &str, line: usize, what: &str) -> Result<u32, ParseScenarioError> {
    let v = parse_size(token, line)?;
    u32::try_from(v).map_err(|_| err(line, format!("{what} {v} exceeds the 32-bit register")))
}

fn parse_on_off(token: &str, line: usize, what: &str) -> Result<bool, ParseScenarioError> {
    match token {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(err(
            line,
            format!("{what} must be `on` or `off`, got {other:?}"),
        )),
    }
}

/// QoS role of a declared master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// Monitored, never throttled.
    Critical,
    /// Regulated by a tightly-coupled regulator.
    BestEffort,
    /// No QoS hardware at all (plain [`OpenGate`]).
    #[default]
    Unmanaged,
}

/// Workload of a declared master: synthetic traffic or a kernel model.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Declarative synthetic traffic.
    Spec(TrafficSpec),
    /// A benchmark kernel model replayed for a number of iterations.
    Kernel(Kernel, u64),
}

impl MasterSpec {
    /// Base address of this master's footprint (kernel workloads are
    /// placed at a per-master offset derived from their declaration
    /// order via the seed; synthetic workloads carry their own base).
    fn traffic_base(&self) -> u64 {
        match &self.workload {
            Workload::Spec(t) => t.base,
            Workload::Kernel(..) => (1 + self.seed % 16) << 28,
        }
    }
}

/// One declared master.
#[derive(Debug, Clone)]
pub struct MasterSpec {
    /// Port name (unique).
    pub name: String,
    /// Master kind (sets the default outstanding limit).
    pub kind: MasterKind,
    /// QoS role.
    pub role: Role,
    /// Regulation window (best-effort only).
    pub period: u32,
    /// Byte budget per window (best-effort only).
    pub budget: u32,
    /// Workload description.
    pub workload: Workload,
    /// Outstanding override (0 = kind default).
    pub outstanding: usize,
    /// Deterministic seed.
    pub seed: u64,
}

/// Optional reclaim policy section.
#[derive(Debug, Clone, Copy)]
pub struct ReclaimSpec {
    /// See [`ReclaimConfig`].
    pub config: ReclaimConfig,
}

/// One regulator write of a `[phase]` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseOp {
    /// Program the per-window byte budget.
    Budget(u32),
    /// Program the window length in cycles.
    Period(u32),
    /// Enable or disable the regulator.
    Enable(bool),
}

/// A [`PhaseOp`] bound to a best-effort master (wildcards expanded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAction {
    /// Target master name.
    pub master: String,
    /// The register write.
    pub op: PhaseOp,
}

/// A named `[phase]` section: regulator writes applied at a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Phase name (unique, documentation only).
    pub name: String,
    /// Cycle at which the writes are applied.
    pub at: u64,
    /// Writes, in declaration order (`*` targets expanded).
    pub actions: Vec<PhaseAction>,
}

/// One event of a `[fault]` section.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The master drops every rate limit (gap, think, burst shaping and
    /// transaction bound) and streams flat out.
    Rogue {
        /// Target master (synthetic workload only).
        master: String,
    },
    /// The master switches to on/off burst shaping.
    Bursty {
        /// Target master (synthetic workload only).
        master: String,
        /// Active-phase length in cycles.
        on: u64,
        /// Silent-phase length in cycles.
        off: u64,
    },
    /// The master stops issuing entirely.
    Halt {
        /// Target master (synthetic workload only).
        master: String,
    },
    /// The master's regulator is forced on or off.
    Regulator {
        /// Target master (best-effort only).
        master: String,
        /// New enable state.
        enabled: bool,
    },
    /// The host policy controller stops running from this cycle on.
    ControllerOff,
    /// DRAM refreshes densify to `interval` cycles for `duration` cycles.
    RefreshStorm {
        /// Refresh-to-refresh spacing during the storm.
        interval: u64,
        /// Storm length in cycles.
        duration: u64,
    },
}

impl FaultEvent {
    /// The master whose traffic this event rewrites, if any.
    fn traffic_master(&self) -> Option<&str> {
        match self {
            FaultEvent::Rogue { master }
            | FaultEvent::Bursty { master, .. }
            | FaultEvent::Halt { master } => Some(master),
            _ => None,
        }
    }
}

/// A named `[fault]` section: events injected at a cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Fault name (unique, documentation only).
    pub name: String,
    /// Cycle at which the events take effect.
    pub at: u64,
    /// Events, in declaration order.
    pub events: Vec<FaultEvent>,
}

/// Comparison operator of an `expect` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs OP rhs`.
    pub fn holds(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// Latency statistic referenced by an `expect` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyMetric {
    /// Median request latency.
    P50,
    /// 99th-percentile request latency.
    P99,
    /// Maximum request latency.
    Max,
}

/// The measurable predicate of an `expect` directive.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectKind {
    /// `<metric>(<master>) <op> <cycles>` over the master's request
    /// latency distribution.
    Latency {
        /// Which statistic.
        metric: LatencyMetric,
        /// Target master.
        master: String,
        /// Comparison.
        op: CmpOp,
        /// Threshold in cycles.
        value: u64,
    },
    /// `bytes(<master>) <op> <bytes>` over completed bytes.
    Bytes {
        /// Target master.
        master: String,
        /// Comparison.
        op: CmpOp,
        /// Threshold in bytes.
        value: u64,
    },
    /// `bandwidth(<master>) within <percent>% of budget`: the average
    /// bytes per completed regulation window tracks the programmed
    /// budget.
    WithinBudget {
        /// Target master (best-effort only).
        master: String,
        /// Allowed relative deviation in percent.
        percent: f64,
    },
    /// `isolation(<master>)`: the critical master was never stalled by
    /// regulation and no best-effort port overshot its window budget by
    /// more than one maximum burst.
    Isolation {
        /// Target master (critical only).
        master: String,
    },
}

impl ExpectKind {
    fn master(&self) -> &str {
        match self {
            ExpectKind::Latency { master, .. }
            | ExpectKind::Bytes { master, .. }
            | ExpectKind::WithinBudget { master, .. }
            | ExpectKind::Isolation { master } => master,
        }
    }
}

/// One `expect` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectSpec {
    /// Canonical source text (as written, for reports).
    pub text: String,
    /// `not` prefix: the predicate must be false.
    pub negated: bool,
    /// The predicate.
    pub kind: ExpectKind,
    /// 1-based source line.
    pub line: usize,
}

fn parse_expect(value: &str, line: usize) -> Result<ExpectSpec, ParseScenarioError> {
    let src = value.trim().to_string();
    let mut rest = src.as_str();
    let negated = match rest.strip_prefix("not ") {
        Some(r) => {
            rest = r.trim_start();
            true
        }
        None => false,
    };
    let open = rest.find('(').ok_or_else(|| {
        err(
            line,
            format!("malformed expect {src:?}: expected `metric(master)`"),
        )
    })?;
    let close = rest
        .find(')')
        .filter(|c| *c > open)
        .ok_or_else(|| err(line, format!("malformed expect {src:?}: missing `)`")))?;
    let metric = rest[..open].trim();
    let master = rest[open + 1..close].trim().to_string();
    if master.is_empty() {
        return Err(err(
            line,
            format!("malformed expect {src:?}: missing master name"),
        ));
    }
    let tail = rest[close + 1..].trim();
    let kind = match metric {
        "isolation" => {
            if !tail.is_empty() {
                return Err(err(
                    line,
                    format!("malformed expect {src:?}: isolation(...) takes no comparison"),
                ));
            }
            ExpectKind::Isolation { master }
        }
        "bandwidth" => {
            let spec = tail.strip_prefix("within").ok_or_else(|| {
                err(
                    line,
                    format!(
                        "malformed expect {src:?}: bandwidth(...) expects \
                         `within <percent>% of budget`"
                    ),
                )
            })?;
            let spec = spec.trim_start();
            let (pct, of) = spec.split_once(char::is_whitespace).ok_or_else(|| {
                err(
                    line,
                    format!("malformed expect {src:?}: missing `of budget`"),
                )
            })?;
            if of.split_whitespace().collect::<Vec<_>>() != ["of", "budget"] {
                return Err(err(
                    line,
                    format!("malformed expect {src:?}: expected `of budget`, got {of:?}"),
                ));
            }
            let body = pct.strip_suffix('%').ok_or_else(|| {
                err(
                    line,
                    format!("malformed expect {src:?}: percent needs a `%` suffix"),
                )
            })?;
            let percent: f64 = body
                .parse()
                .map_err(|e| err(line, format!("malformed expect {src:?}: bad percent: {e}")))?;
            if !percent.is_finite() || percent < 0.0 {
                return Err(err(
                    line,
                    format!("malformed expect {src:?}: percent must be non-negative"),
                ));
            }
            ExpectKind::WithinBudget { master, percent }
        }
        "p50_latency" | "p99_latency" | "max_latency" | "bytes" => {
            let (op_tok, val_tok) = tail.split_once(char::is_whitespace).ok_or_else(|| {
                err(
                    line,
                    format!("malformed expect {src:?}: expected `<op> <value>`"),
                )
            })?;
            let op = match op_tok {
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => {
                    return Err(err(
                        line,
                        format!(
                            "malformed expect {src:?}: unknown comparison {other:?} \
                             (use <, <=, > or >=)"
                        ),
                    ))
                }
            };
            let value = parse_size(val_tok.trim(), line)?;
            match metric {
                "bytes" => ExpectKind::Bytes { master, op, value },
                "p50_latency" => ExpectKind::Latency {
                    metric: LatencyMetric::P50,
                    master,
                    op,
                    value,
                },
                "p99_latency" => ExpectKind::Latency {
                    metric: LatencyMetric::P99,
                    master,
                    op,
                    value,
                },
                _ => ExpectKind::Latency {
                    metric: LatencyMetric::Max,
                    master,
                    op,
                    value,
                },
            }
        }
        other => {
            return Err(err(
                line,
                format!(
                    "malformed expect: unknown metric {other:?}{}",
                    suggest(other, EXPECT_METRICS)
                ),
            ))
        }
    };
    Ok(ExpectSpec {
        text: src,
        negated,
        kind,
        line,
    })
}

/// A parsed scenario.
#[derive(Debug)]
pub struct ScenarioSpec {
    /// SoC clock.
    pub freq: Freq,
    /// Crossbar configuration (`[xbar]` section).
    pub xbar: XbarConfig,
    /// Declared masters, in file order.
    pub masters: Vec<MasterSpec>,
    /// Optional reclaim policy.
    pub reclaim: Option<ReclaimSpec>,
    /// Timed regulator re-programming (`[phase]` sections), in file order.
    pub phases: Vec<PhaseSpec>,
    /// Timed fault injection (`[fault]` sections), in file order.
    pub faults: Vec<FaultSpec>,
    /// Inline assertions (`expect` directives), in file order.
    pub expects: Vec<ExpectSpec>,
    /// Declared run length (`cycles` directive); the CLI can override.
    pub cycles: Option<u64>,
    /// Declared finish master (`until_done` directive).
    pub until_done: Option<String>,
}

#[derive(Debug)]
struct MasterDraft {
    name: String,
    kind: Option<MasterKind>,
    role: Role,
    period: u32,
    budget: u32,
    pattern: AddressPattern,
    base: u64,
    footprint: u64,
    txn: u64,
    think: u64,
    gap: u64,
    total: u64,
    write_ratio: f64,
    dir: Dir,
    burst: Option<BurstShape>,
    kernel: Option<(Kernel, u64)>,
    outstanding: usize,
    seed: u64,
    declared_at: usize,
}

impl MasterDraft {
    fn new(name: String, line: usize) -> Self {
        MasterDraft {
            name,
            kind: None,
            role: Role::Unmanaged,
            period: 1_000,
            budget: 1_024,
            pattern: AddressPattern::Sequential,
            base: 0,
            footprint: 16 << 20,
            txn: 256,
            think: 0,
            gap: 0,
            total: u64::MAX,
            write_ratio: 0.0,
            dir: Dir::Read,
            burst: None,
            kernel: None,
            outstanding: 0,
            seed: 1,
            declared_at: line,
        }
    }

    fn finish(self) -> Result<MasterSpec, ParseScenarioError> {
        let kind = self.kind.ok_or_else(|| {
            err(
                self.declared_at,
                format!("master {:?} missing kind", self.name),
            )
        })?;
        let workload = match self.kernel {
            Some((kernel, iterations)) => Workload::Kernel(kernel, iterations),
            None => {
                let traffic = TrafficSpec {
                    base: self.base,
                    footprint: self.footprint,
                    txn_bytes: self.txn,
                    dir: self.dir,
                    write_ratio: self.write_ratio,
                    pattern: self.pattern,
                    gap: self.gap,
                    think: self.think,
                    total: self.total,
                    burst: self.burst,
                };
                traffic
                    .validate()
                    .map_err(|m| err(self.declared_at, format!("master {:?}: {m}", self.name)))?;
                Workload::Spec(traffic)
            }
        };
        Ok(MasterSpec {
            name: self.name,
            kind,
            role: self.role,
            period: self.period,
            budget: self.budget,
            workload,
            outstanding: self.outstanding,
            seed: self.seed,
        })
    }
}

#[derive(Debug)]
struct ActionDraft {
    line: usize,
    target: String,
    op: PhaseOp,
}

#[derive(Debug)]
struct PhaseDraft {
    name: String,
    at: Option<u64>,
    actions: Vec<ActionDraft>,
    declared_at: usize,
}

#[derive(Debug)]
struct EventDraft {
    line: usize,
    event: FaultEvent,
}

#[derive(Debug)]
struct FaultDraft {
    name: String,
    at: Option<u64>,
    events: Vec<EventDraft>,
    declared_at: usize,
}

enum Section {
    Top,
    Master(usize),
    Reclaim(ReclaimConfig),
    Xbar(XbarConfig),
    Phase(usize),
    Fault(usize),
}

impl ScenarioSpec {
    /// Parses a scenario from text.
    ///
    /// `extends` inheritance must already be resolved (see
    /// [`resolve_extends_with`] / [`load_scenario_text`]); an unresolved
    /// `extends` directive is an error here.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line with its number.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ParseScenarioError> {
        let mut freq = Freq::default();
        let mut xbar = XbarConfig::default();
        let mut reclaim: Option<ReclaimSpec> = None;
        let mut drafts: Vec<MasterDraft> = Vec::new();
        let mut phase_drafts: Vec<PhaseDraft> = Vec::new();
        let mut fault_drafts: Vec<FaultDraft> = Vec::new();
        let mut expects: Vec<ExpectSpec> = Vec::new();
        let mut cycles: Option<u64> = None;
        let mut until_done: Option<(String, usize)> = None;
        let mut section = Section::Top;

        let close =
            |section: &mut Section, reclaim: &mut Option<ReclaimSpec>, xbar: &mut XbarConfig| {
                match std::mem::replace(section, Section::Top) {
                    Section::Reclaim(cfg) => *reclaim = Some(ReclaimSpec { config: cfg }),
                    Section::Xbar(cfg) => *xbar = cfg,
                    _ => {}
                }
            };

        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            if let Some(header) = body.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| err(line_no, "unterminated section header"))?
                    .trim();
                close(&mut section, &mut reclaim, &mut xbar);
                let mut parts = header.split_whitespace();
                match parts.next() {
                    Some("master") => {
                        let name = parts
                            .next()
                            .ok_or_else(|| err(line_no, "master section needs a name"))?;
                        if drafts.iter().any(|d| d.name == name) {
                            return Err(err(line_no, format!("duplicate master name {name:?}")));
                        }
                        drafts.push(MasterDraft::new(name.to_string(), line_no));
                        section = Section::Master(drafts.len() - 1);
                    }
                    Some("override") => {
                        if parts.next() != Some("master") {
                            return Err(err(
                                line_no,
                                "override section must be `override master <name>`",
                            ));
                        }
                        let name = parts
                            .next()
                            .ok_or_else(|| err(line_no, "override master needs a name"))?;
                        let idx = drafts.iter().position(|d| d.name == name).ok_or_else(|| {
                            let names: Vec<&str> = drafts.iter().map(|d| d.name.as_str()).collect();
                            err(
                                line_no,
                                format!(
                                    "override of unknown master {name:?}{}",
                                    suggest(name, &names)
                                ),
                            )
                        })?;
                        section = Section::Master(idx);
                    }
                    Some("phase") => {
                        let name = parts
                            .next()
                            .ok_or_else(|| err(line_no, "phase section needs a name"))?;
                        if phase_drafts.iter().any(|p| p.name == name) {
                            return Err(err(line_no, format!("duplicate phase name {name:?}")));
                        }
                        phase_drafts.push(PhaseDraft {
                            name: name.to_string(),
                            at: None,
                            actions: Vec::new(),
                            declared_at: line_no,
                        });
                        section = Section::Phase(phase_drafts.len() - 1);
                    }
                    Some("fault") => {
                        let name = parts
                            .next()
                            .ok_or_else(|| err(line_no, "fault section needs a name"))?;
                        if fault_drafts.iter().any(|f| f.name == name) {
                            return Err(err(line_no, format!("duplicate fault name {name:?}")));
                        }
                        fault_drafts.push(FaultDraft {
                            name: name.to_string(),
                            at: None,
                            events: Vec::new(),
                            declared_at: line_no,
                        });
                        section = Section::Fault(fault_drafts.len() - 1);
                    }
                    Some("xbar") => {
                        section = Section::Xbar(XbarConfig::default());
                    }
                    Some("policy") => match parts.next() {
                        Some("reclaim") => {
                            section = Section::Reclaim(ReclaimConfig::default());
                        }
                        other => {
                            return Err(err(line_no, format!("unknown policy {other:?}")));
                        }
                    },
                    Some(other) => {
                        return Err(err(
                            line_no,
                            format!("unknown section {other:?}{}", suggest(other, SECTION_NAMES)),
                        ))
                    }
                    None => return Err(err(line_no, "empty section header")),
                }
                continue;
            }
            let (key, value) = body
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(line_no, format!("expected `key value`, got {body:?}")))?;
            let value = value.trim();
            // Run-control and assertion directives are global: they are
            // valid anywhere a section key could appear (conventionally
            // at the top or bottom of the file) and collide with no
            // section key.
            match key {
                "cycles" => {
                    cycles = Some(parse_size(value, line_no)?);
                    continue;
                }
                "until_done" => {
                    until_done = Some((value.to_string(), line_no));
                    continue;
                }
                "expect" => {
                    expects.push(parse_expect(value, line_no)?);
                    continue;
                }
                _ => {}
            }
            match &mut section {
                Section::Top => match key {
                    "clock_mhz" => {
                        freq = Freq::mhz(parse_size(value, line_no)?);
                    }
                    "extends" => {
                        return Err(err(
                            line_no,
                            "unresolved extends: scenario inheritance is resolved when the \
                             scenario is loaded from a file",
                        ));
                    }
                    other => {
                        return Err(err(
                            line_no,
                            format!(
                                "unknown top-level key {other:?}{}",
                                suggest(other, TOP_KEYS)
                            ),
                        ))
                    }
                },
                Section::Master(idx) => {
                    let d = &mut drafts[*idx];
                    match key {
                        "kind" => {
                            d.kind = Some(match value {
                                "cpu" => MasterKind::Cpu,
                                "accel" => MasterKind::Accelerator,
                                other => {
                                    return Err(err(line_no, format!("unknown kind {other:?}")))
                                }
                            })
                        }
                        "role" => {
                            d.role = match value {
                                "critical" => Role::Critical,
                                "best-effort" => Role::BestEffort,
                                "unmanaged" => Role::Unmanaged,
                                other => {
                                    return Err(err(line_no, format!("unknown role {other:?}")))
                                }
                            }
                        }
                        "burst" => {
                            let (on, off) = value
                                .split_once(char::is_whitespace)
                                .ok_or_else(|| err(line_no, "burst needs `<on> <off>`"))?;
                            d.burst = Some(BurstShape {
                                on_cycles: parse_size(on, line_no)?,
                                off_cycles: parse_size(off, line_no)?,
                            });
                        }
                        "workload" => {
                            let spec = value.strip_prefix("kernel:").ok_or_else(|| {
                                err(line_no, "workload must be kernel:<name>[:<iters>]")
                            })?;
                            let (name, iters) = match spec.split_once(':') {
                                Some((n, i)) => (n, parse_size(i, line_no)?),
                                None => (spec, 1),
                            };
                            let kernel = Kernel::all()
                                .into_iter()
                                .find(|k| k.name() == name)
                                .ok_or_else(|| err(line_no, format!("unknown kernel {name:?}")))?;
                            d.kernel = Some((kernel, iters));
                        }
                        "pattern" => {
                            d.pattern = if value == "seq" {
                                AddressPattern::Sequential
                            } else if value == "random" {
                                AddressPattern::Random
                            } else if let Some(stride) = value.strip_prefix("strided:") {
                                AddressPattern::Strided {
                                    stride: parse_size(stride, line_no)?,
                                }
                            } else {
                                return Err(err(line_no, format!("unknown pattern {value:?}")));
                            }
                        }
                        "dir" => {
                            d.dir = match value {
                                "R" | "r" | "read" => Dir::Read,
                                "W" | "w" | "write" => Dir::Write,
                                other => {
                                    return Err(err(line_no, format!("unknown dir {other:?}")))
                                }
                            }
                        }
                        "base" => d.base = parse_size(value, line_no)?,
                        "footprint" => d.footprint = parse_size(value, line_no)?,
                        "txn" => d.txn = parse_size(value, line_no)?,
                        "think" => d.think = parse_size(value, line_no)?,
                        "gap" => d.gap = parse_size(value, line_no)?,
                        "total" => d.total = parse_size(value, line_no)?,
                        "write_ratio" => {
                            d.write_ratio = value
                                .parse()
                                .map_err(|e| err(line_no, format!("bad ratio: {e}")))?
                        }
                        "period" => d.period = parse_u32(value, line_no, "period")?,
                        "budget" => d.budget = parse_u32(value, line_no, "budget")?,
                        "outstanding" => d.outstanding = parse_size(value, line_no)? as usize,
                        "seed" => d.seed = parse_size(value, line_no)?,
                        other => {
                            return Err(err(
                                line_no,
                                format!(
                                    "unknown master key {other:?}{}",
                                    suggest(other, MASTER_KEYS)
                                ),
                            ))
                        }
                    }
                }
                Section::Xbar(cfg) => match key {
                    "arbitration" => {
                        cfg.arbitration = match value {
                            "rr" => Arbitration::RoundRobin,
                            "priority" => Arbitration::FixedPriority,
                            "weighted" => Arbitration::WeightedRoundRobin,
                            other => {
                                return Err(err(line_no, format!("unknown arbitration {other:?}")))
                            }
                        }
                    }
                    "weights" => {
                        cfg.weights = value
                            .split(',')
                            .map(|w| parse_size(w, line_no).map(|v| v as u32))
                            .collect::<Result<Vec<u32>, _>>()?;
                    }
                    other => {
                        return Err(err(
                            line_no,
                            format!("unknown xbar key {other:?}{}", suggest(other, XBAR_KEYS)),
                        ))
                    }
                },
                Section::Reclaim(cfg) => match key {
                    "reserved" => cfg.critical_reserved = parse_size(value, line_no)?,
                    "base" => cfg.be_base = parse_size(value, line_no)?,
                    "control" => cfg.control_period = parse_size(value, line_no)?,
                    "gain" => cfg.gain = parse_size(value, line_no)?,
                    "busy" => cfg.busy_threshold = Some(parse_size(value, line_no)?),
                    other => {
                        return Err(err(
                            line_no,
                            format!(
                                "unknown reclaim key {other:?}{}",
                                suggest(other, RECLAIM_KEYS)
                            ),
                        ))
                    }
                },
                Section::Phase(idx) => {
                    let p = &mut phase_drafts[*idx];
                    match key {
                        "at" => p.at = Some(parse_size(value, line_no)?),
                        "budget" | "period" | "enable" => {
                            let (target, arg) =
                                value.split_once(char::is_whitespace).ok_or_else(|| {
                                    err(line_no, format!("{key} needs `<master> <value>`"))
                                })?;
                            let arg = arg.trim();
                            let op = match key {
                                "budget" => PhaseOp::Budget(parse_u32(arg, line_no, "budget")?),
                                "period" => {
                                    let v = parse_u32(arg, line_no, "period")?;
                                    if v == 0 {
                                        return Err(err(line_no, "period must be non-zero"));
                                    }
                                    PhaseOp::Period(v)
                                }
                                _ => PhaseOp::Enable(parse_on_off(arg, line_no, "enable")?),
                            };
                            p.actions.push(ActionDraft {
                                line: line_no,
                                target: target.to_string(),
                                op,
                            });
                        }
                        other => {
                            return Err(err(
                                line_no,
                                format!(
                                    "unknown phase key {other:?}{}",
                                    suggest(other, PHASE_KEYS)
                                ),
                            ))
                        }
                    }
                }
                Section::Fault(idx) => {
                    let f = &mut fault_drafts[*idx];
                    match key {
                        "at" => f.at = Some(parse_size(value, line_no)?),
                        "rogue" => f.events.push(EventDraft {
                            line: line_no,
                            event: FaultEvent::Rogue {
                                master: value.to_string(),
                            },
                        }),
                        "halt" => f.events.push(EventDraft {
                            line: line_no,
                            event: FaultEvent::Halt {
                                master: value.to_string(),
                            },
                        }),
                        "bursty" => {
                            let mut parts = value.split_whitespace();
                            let (m, on, off) =
                                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                                    (Some(m), Some(on), Some(off), None) => (m, on, off),
                                    _ => {
                                        return Err(err(
                                            line_no,
                                            "bursty needs `<master> <on> <off>`",
                                        ))
                                    }
                                };
                            let on = parse_size(on, line_no)?;
                            if on == 0 {
                                return Err(err(line_no, "bursty on-phase must be non-zero"));
                            }
                            f.events.push(EventDraft {
                                line: line_no,
                                event: FaultEvent::Bursty {
                                    master: m.to_string(),
                                    on,
                                    off: parse_size(off, line_no)?,
                                },
                            });
                        }
                        "regulator" => {
                            let (m, state) = value
                                .split_once(char::is_whitespace)
                                .ok_or_else(|| err(line_no, "regulator needs `<master> on|off`"))?;
                            f.events.push(EventDraft {
                                line: line_no,
                                event: FaultEvent::Regulator {
                                    master: m.to_string(),
                                    enabled: parse_on_off(state.trim(), line_no, "regulator")?,
                                },
                            });
                        }
                        "controller" => {
                            if value != "off" {
                                return Err(err(
                                    line_no,
                                    "controller fault must be `controller off`",
                                ));
                            }
                            f.events.push(EventDraft {
                                line: line_no,
                                event: FaultEvent::ControllerOff,
                            });
                        }
                        "refresh_storm" => {
                            let (interval, duration) =
                                value.split_once(char::is_whitespace).ok_or_else(|| {
                                    err(line_no, "refresh_storm needs `<interval> <duration>`")
                                })?;
                            let interval = parse_size(interval, line_no)?;
                            let duration = parse_size(duration.trim(), line_no)?;
                            if interval == 0 {
                                return Err(err(
                                    line_no,
                                    "refresh_storm interval must be non-zero",
                                ));
                            }
                            if duration == 0 {
                                return Err(err(
                                    line_no,
                                    "refresh_storm duration must be non-zero",
                                ));
                            }
                            f.events.push(EventDraft {
                                line: line_no,
                                event: FaultEvent::RefreshStorm { interval, duration },
                            });
                        }
                        other => {
                            return Err(err(
                                line_no,
                                format!(
                                    "unknown fault key {other:?}{}",
                                    suggest(other, FAULT_KEYS)
                                ),
                            ))
                        }
                    }
                }
            }
        }
        close(&mut section, &mut reclaim, &mut xbar);

        let mut masters: Vec<MasterSpec> = Vec::with_capacity(drafts.len());
        for d in drafts {
            masters.push(d.finish()?);
        }
        if masters.is_empty() {
            return Err(err(0, "scenario declares no masters"));
        }
        if reclaim.is_some() {
            let has_critical = masters.iter().any(|m| m.role == Role::Critical);
            let has_be = masters.iter().any(|m| m.role == Role::BestEffort);
            if !has_critical || !has_be {
                return Err(err(
                    0,
                    "reclaim policy needs at least one critical and one best-effort master",
                ));
            }
        }
        if !xbar.weights.is_empty() && xbar.weights.len() != masters.len() {
            return Err(err(0, "xbar weights must list one weight per master"));
        }

        let names: Vec<&str> = masters.iter().map(|m| m.name.as_str()).collect();
        let find = |n: &str| masters.iter().find(|m| m.name == n);
        let unknown =
            |n: &str, line: usize| err(line, format!("unknown master {n:?}{}", suggest(n, &names)));

        let mut phases: Vec<PhaseSpec> = Vec::with_capacity(phase_drafts.len());
        for pd in phase_drafts {
            let at = pd
                .at
                .ok_or_else(|| err(pd.declared_at, format!("phase {:?} missing `at`", pd.name)))?;
            let mut actions = Vec::new();
            for a in pd.actions {
                let targets: Vec<String> = if a.target == "*" {
                    let be: Vec<String> = masters
                        .iter()
                        .filter(|m| m.role == Role::BestEffort)
                        .map(|m| m.name.clone())
                        .collect();
                    if be.is_empty() {
                        return Err(err(
                            a.line,
                            format!("phase {:?}: `*` matches no best-effort masters", pd.name),
                        ));
                    }
                    be
                } else {
                    let m = find(&a.target).ok_or_else(|| unknown(&a.target, a.line))?;
                    if m.role != Role::BestEffort {
                        return Err(err(
                            a.line,
                            format!(
                                "master {:?} is not best-effort \
                                 (only regulated ports can be re-programmed)",
                                a.target
                            ),
                        ));
                    }
                    vec![a.target]
                };
                for t in targets {
                    actions.push(PhaseAction {
                        master: t,
                        op: a.op,
                    });
                }
            }
            phases.push(PhaseSpec {
                name: pd.name,
                at,
                actions,
            });
        }

        let mut faults: Vec<FaultSpec> = Vec::with_capacity(fault_drafts.len());
        for fd in fault_drafts {
            let at = fd
                .at
                .ok_or_else(|| err(fd.declared_at, format!("fault {:?} missing `at`", fd.name)))?;
            let mut events = Vec::with_capacity(fd.events.len());
            for e in fd.events {
                match &e.event {
                    FaultEvent::Rogue { master }
                    | FaultEvent::Bursty { master, .. }
                    | FaultEvent::Halt { master } => {
                        let m = find(master).ok_or_else(|| unknown(master, e.line))?;
                        if !matches!(m.workload, Workload::Spec(_)) {
                            return Err(err(
                                e.line,
                                format!(
                                    "master {master:?} replays a kernel and cannot be faulted \
                                     (traffic faults need a synthetic workload)"
                                ),
                            ));
                        }
                    }
                    FaultEvent::Regulator { master, .. } => {
                        let m = find(master).ok_or_else(|| unknown(master, e.line))?;
                        if m.role != Role::BestEffort {
                            return Err(err(
                                e.line,
                                format!(
                                    "master {master:?} is not best-effort (no regulator to fault)"
                                ),
                            ));
                        }
                    }
                    FaultEvent::ControllerOff => {
                        if reclaim.is_none() {
                            return Err(err(
                                e.line,
                                "controller off needs a [policy reclaim] section to fault",
                            ));
                        }
                    }
                    FaultEvent::RefreshStorm { duration, .. } => {
                        if at.checked_add(*duration).is_none() {
                            return Err(err(e.line, "refresh_storm window overflows"));
                        }
                    }
                }
                events.push(e.event);
            }
            faults.push(FaultSpec {
                name: fd.name,
                at,
                events,
            });
        }

        // Traffic faults become segments of one PhasedSource per master:
        // boundaries must be distinct per master.
        let mut traffic_at: Vec<(&str, u64)> = faults
            .iter()
            .flat_map(|f| {
                f.events
                    .iter()
                    .filter_map(move |e| e.traffic_master().map(|m| (m, f.at)))
            })
            .collect();
        traffic_at.sort();
        for w in traffic_at.windows(2) {
            if w[0] == w[1] {
                return Err(err(
                    0,
                    format!(
                        "master {:?} has two traffic faults at cycle {}",
                        w[0].0, w[0].1
                    ),
                ));
            }
        }
        let mut storm_windows: Vec<(u64, u64)> = faults
            .iter()
            .flat_map(|f| {
                f.events.iter().filter_map(move |e| match e {
                    FaultEvent::RefreshStorm { duration, .. } => Some((f.at, f.at + duration)),
                    _ => None,
                })
            })
            .collect();
        storm_windows.sort();
        for w in storm_windows.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(err(0, "refresh storms overlap"));
            }
        }

        for ex in &expects {
            let master = ex.kind.master();
            let m = find(master).ok_or_else(|| unknown(master, ex.line))?;
            match &ex.kind {
                ExpectKind::WithinBudget { .. } if m.role != Role::BestEffort => {
                    return Err(err(
                        ex.line,
                        format!(
                            "bandwidth({master}) within ...% of budget needs a best-effort master"
                        ),
                    ));
                }
                ExpectKind::Isolation { .. } if m.role != Role::Critical => {
                    return Err(err(
                        ex.line,
                        format!("isolation({master}) needs a critical master"),
                    ));
                }
                _ => {}
            }
        }
        if let Some((name, line)) = &until_done {
            if find(name).is_none() {
                return Err(unknown(name, *line));
            }
        }

        Ok(ScenarioSpec {
            freq,
            xbar,
            masters,
            reclaim,
            phases,
            faults,
            expects,
            cycles,
            until_done: until_done.map(|(n, _)| n),
        })
    }

    /// Traffic fault events rewriting `name`'s workload, ordered by cycle.
    fn traffic_events_for(&self, name: &str) -> Vec<(u64, &FaultEvent)> {
        let mut v: Vec<(u64, &FaultEvent)> = self
            .faults
            .iter()
            .flat_map(|f| {
                f.events
                    .iter()
                    .filter(move |e| e.traffic_master() == Some(name))
                    .map(move |e| (f.at, e))
            })
            .collect();
        v.sort_by_key(|(at, _)| *at);
        v
    }

    /// Refresh storms declared by faults, sorted by start.
    fn storms(&self) -> Vec<RefreshStorm> {
        let mut storms: Vec<RefreshStorm> = self
            .faults
            .iter()
            .flat_map(|f| {
                f.events.iter().filter_map(move |e| match e {
                    FaultEvent::RefreshStorm { interval, duration } => Some(RefreshStorm {
                        start: f.at,
                        end: f.at + duration,
                        interval: *interval,
                    }),
                    _ => None,
                })
            })
            .collect();
        storms.sort_by_key(|s| s.start);
        storms
    }

    /// Builds the SoC and its QoS fabric.
    pub fn build(&self) -> (Soc, QosFabric) {
        let cfg = SocConfig {
            freq: self.freq,
            xbar: self.xbar.clone(),
            dram: DramConfig {
                storms: self.storms(),
                ..DramConfig::default()
            },
        };
        let mut fabric = QosFabricBuilder::new();
        let mut builder = SocBuilder::new(cfg);
        for m in &self.masters {
            let outstanding = if m.outstanding > 0 {
                m.outstanding
            } else {
                m.kind.default_outstanding()
            };
            let events = self.traffic_events_for(&m.name);
            let source: Box<dyn fgqos_sim::master::TrafficSource> = match &m.workload {
                Workload::Spec(t) if !events.is_empty() => {
                    let mut segments = vec![(Cycle::ZERO, *t)];
                    for (at, ev) in events {
                        let prev = segments.last().expect("segments start non-empty").1;
                        let next = match ev {
                            FaultEvent::Rogue { .. } => TrafficSpec {
                                gap: 0,
                                think: 0,
                                burst: None,
                                total: u64::MAX,
                                ..prev
                            },
                            FaultEvent::Bursty { on, off, .. } => TrafficSpec {
                                burst: Some(BurstShape {
                                    on_cycles: *on,
                                    off_cycles: *off,
                                }),
                                ..prev
                            },
                            FaultEvent::Halt { .. } => TrafficSpec { total: 0, ..prev },
                            _ => unreachable!("traffic_events_for returns traffic faults"),
                        };
                        segments.push((Cycle::new(at), next));
                    }
                    Box::new(PhasedSource::new(segments, m.seed))
                }
                Workload::Spec(t) => Box::new(SpecSource::new(*t, m.seed)),
                Workload::Kernel(k, iters) => Box::new(k.source(m.traffic_base(), *iters, m.seed)),
            };
            builder = match m.role {
                Role::Critical => {
                    let gate = fabric.critical_port(&m.name, m.period.max(1));
                    builder.master_full(&m.name, source, m.kind, gate, outstanding)
                }
                Role::BestEffort => {
                    let gate = fabric.best_effort_port(&m.name, m.period.max(1), m.budget);
                    builder.master_full(&m.name, source, m.kind, gate, outstanding)
                }
                Role::Unmanaged => {
                    builder.master_full(&m.name, source, m.kind, OpenGate, outstanding)
                }
            };
        }
        let fabric = fabric.finish();
        let mut ops: Vec<TimedOp> = Vec::new();
        for p in &self.phases {
            for a in &p.actions {
                let driver = fabric
                    .driver(&a.master)
                    .expect("phase targets validated at parse")
                    .clone();
                ops.push(TimedOp {
                    at: p.at,
                    driver,
                    op: match a.op {
                        PhaseOp::Budget(b) => ProgramOp::Budget(b),
                        PhaseOp::Period(c) => ProgramOp::Period(c),
                        PhaseOp::Enable(e) => ProgramOp::Enabled(e),
                    },
                });
            }
        }
        for f in &self.faults {
            for e in &f.events {
                if let FaultEvent::Regulator { master, enabled } = e {
                    let driver = fabric
                        .driver(master)
                        .expect("regulator fault targets validated at parse")
                        .clone();
                    ops.push(TimedOp {
                        at: f.at,
                        driver,
                        op: ProgramOp::Enabled(*enabled),
                    });
                }
            }
        }
        if let Some(r) = &self.reclaim {
            let policy = fabric.reclaim_policy(r.config);
            let fuse = self
                .faults
                .iter()
                .filter(|f| {
                    f.events
                        .iter()
                        .any(|e| matches!(e, FaultEvent::ControllerOff))
                })
                .map(|f| f.at)
                .min();
            builder = match fuse {
                Some(at) => builder.controller(FusedController::new(policy, at)),
                None => builder.controller(policy),
            };
        }
        // The program goes in *after* the reclaim policy so that at a
        // coincident cycle an explicit `[phase]` write beats the
        // background policy's write — the same tie-break a live control
        // write gets (controllers settle, then the write applies), which
        // is what keeps a replayed control journal bit-identical to the
        // live run it recorded.
        //
        // Installed even with no ops: the controller *count* is part of
        // the Soc fingerprint, and live-run replay identity compares a
        // phase-free live run against a replay text that gained
        // synthesized `[phase]` sections. An empty program schedules
        // nothing and hashes identically to a fully drained one.
        builder = builder.controller(ScenarioProgram::new(ops));
        (builder.build(), fabric)
    }
}

/// Resolves `extends <path>` inheritance by textual inclusion.
///
/// Every `extends` directive appearing before the first section header is
/// replaced by the (recursively resolved) text `load` returns for its
/// path; all other lines pass through unchanged. Cycles and chains deeper
/// than 8 files are errors. The flattened text is what the rest of the
/// stack sees — it is the serve cache key and the snapshot recipe, so
/// inherited scenarios stay cacheable and restorable.
///
/// # Errors
///
/// Returns the offending `extends` line (numbered within the file that
/// contains it) when `load` fails, a cycle is found, or the chain is too
/// deep.
pub fn resolve_extends_with<F>(text: &str, load: &mut F) -> Result<String, ParseScenarioError>
where
    F: FnMut(&str) -> Result<String, String>,
{
    fn inner<F>(
        text: &str,
        load: &mut F,
        stack: &mut Vec<String>,
    ) -> Result<String, ParseScenarioError>
    where
        F: FnMut(&str) -> Result<String, String>,
    {
        let mut out = String::with_capacity(text.len());
        let mut in_sections = false;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.starts_with('[') {
                in_sections = true;
            }
            if !in_sections {
                if let Some(("extends", path)) = body
                    .split_once(char::is_whitespace)
                    .map(|(k, v)| (k, v.trim()))
                {
                    if stack.iter().any(|p| p == path) {
                        return Err(err(line_no, format!("extends cycle through {path:?}")));
                    }
                    if stack.len() >= 8 {
                        return Err(err(line_no, "extends chain deeper than 8 files"));
                    }
                    let parent = load(path).map_err(|e| err(line_no, e))?;
                    stack.push(path.to_string());
                    let resolved = inner(&parent, load, stack)?;
                    stack.pop();
                    out.push_str(&resolved);
                    if !resolved.ends_with('\n') {
                        out.push('\n');
                    }
                    continue;
                }
            }
            out.push_str(raw);
            out.push('\n');
        }
        Ok(out)
    }
    inner(text, load, &mut Vec::new())
}

/// Reads a scenario file and resolves `extends` inheritance against the
/// file's directory. Returns the flattened scenario text — the form all
/// downstream machinery (parser, serve cache keys, snapshot recipes)
/// operates on.
///
/// # Errors
///
/// Returns a [`ParseScenarioError`] if the file or any parent cannot be
/// read, or inheritance is cyclic / too deep.
pub fn load_scenario_text(path: &str) -> Result<String, ParseScenarioError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(0, format!("cannot read {path}: {e}")))?;
    let dir = Path::new(path)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    resolve_extends_with(&text, &mut |rel| {
        let p = dir.join(rel);
        std::fs::read_to_string(&p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern random
footprint 4M
txn 256
think 1000
total 2000
outstanding 1

[master dma0]
kind accel
role best-effort
period 1000
budget 2K
pattern seq
base 0x40000000
txn 1024

[master rogue]
kind accel
pattern strided:64K
txn 512
write_ratio 0.5
seed 9
";

    fn spec_of(m: &MasterSpec) -> &TrafficSpec {
        match &m.workload {
            Workload::Spec(t) => t,
            Workload::Kernel(..) => panic!("expected synthetic workload"),
        }
    }

    #[test]
    fn parses_sample() {
        let s = ScenarioSpec::parse(SAMPLE).expect("parses");
        assert_eq!(s.freq, Freq::ghz(1));
        assert_eq!(s.masters.len(), 3);
        let cpu = &s.masters[0];
        assert_eq!(cpu.role, Role::Critical);
        assert_eq!(cpu.kind, MasterKind::Cpu);
        assert_eq!(spec_of(cpu).total, 2_000);
        let dma = &s.masters[1];
        assert_eq!(dma.budget, 2_048);
        assert_eq!(spec_of(dma).base, 0x4000_0000);
        let rogue = &s.masters[2];
        assert_eq!(rogue.role, Role::Unmanaged);
        assert!(matches!(
            spec_of(rogue).pattern,
            AddressPattern::Strided { stride: 65_536 }
        ));
        assert_eq!(spec_of(rogue).write_ratio, 0.5);
        assert!(s.phases.is_empty() && s.faults.is_empty() && s.expects.is_empty());
        assert_eq!(s.cycles, None);
        assert_eq!(s.until_done, None);
    }

    #[test]
    fn xbar_section_and_kernel_and_burst() {
        let text = "\
[xbar]
arbitration weighted
weights 1,3

[master cpu]
kind cpu
role critical
burst 1000 9000
txn 256
total 100

[master k]
kind accel
workload kernel:memcpy:2
";
        let s = ScenarioSpec::parse(text).expect("parses");
        assert_eq!(s.xbar.arbitration, Arbitration::WeightedRoundRobin);
        assert_eq!(s.xbar.weights, vec![1, 3]);
        assert_eq!(
            spec_of(&s.masters[0]).burst,
            Some(BurstShape {
                on_cycles: 1_000,
                off_cycles: 9_000
            })
        );
        match &s.masters[1].workload {
            Workload::Kernel(k, iters) => {
                assert_eq!(k.name(), "memcpy");
                assert_eq!(*iters, 2);
            }
            other => panic!("expected kernel workload, got {other:?}"),
        }
        let (mut soc, _fabric) = s.build();
        soc.run(20_000);
        assert!(
            soc.master_stats(fgqos_sim::axi::MasterId::new(1))
                .issued_txns
                > 0
        );
    }

    #[test]
    fn weight_count_must_match_masters() {
        let text = "[xbar]\nweights 1,2,3\n[master a]\nkind cpu\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("one weight per master"));
    }

    #[test]
    fn unknown_kernel_rejected() {
        let text = "[master a]\nkind accel\nworkload kernel:bogus\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("unknown kernel"));
    }

    #[test]
    fn builds_and_runs() {
        let s = ScenarioSpec::parse(SAMPLE).expect("parses");
        let (mut soc, fabric) = s.build();
        assert_eq!(soc.master_count(), 3);
        soc.run(200_000);
        assert!(fabric.driver("dma0").unwrap().telemetry().total_bytes > 0);
        assert!(fabric.driver("cpu").unwrap().telemetry().total_bytes > 0);
        assert!(
            fabric.driver("rogue").is_none(),
            "unmanaged ports have no regulator"
        );
    }

    #[test]
    fn reclaim_section_builds_policy() {
        let text = format!(
            "{SAMPLE}\n[policy reclaim]\nreserved 2500\nbase 10K\ncontrol 10000\ngain 25\nbusy 256\n"
        );
        let s = ScenarioSpec::parse(&text).expect("parses");
        let r = s.reclaim.expect("reclaim present");
        assert_eq!(r.config.critical_reserved, 2_500);
        assert_eq!(r.config.be_base, 10_240);
        assert_eq!(r.config.busy_threshold, Some(256));
        let (mut soc, _fabric) = s.build();
        soc.run(50_000);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("128", 1).unwrap(), 128);
        assert_eq!(parse_size("0x80", 1).unwrap(), 128);
        assert_eq!(parse_size("4K", 1).unwrap(), 4_096);
        assert_eq!(parse_size("2M", 1).unwrap(), 2 << 20);
        assert_eq!(parse_size("1G", 1).unwrap(), 1 << 30);
        assert!(parse_size("12Q", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = ScenarioSpec::parse("clock_mhz 1000\nbogus").unwrap_err();
        assert_eq!(e.line, 2);
        let e = ScenarioSpec::parse("[master a]\nkind dsp\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("kind"));
    }

    #[test]
    fn missing_kind_rejected() {
        let e = ScenarioSpec::parse("[master a]\ntxn 256\n").unwrap_err();
        assert!(e.message.contains("missing kind"));
    }

    #[test]
    fn empty_scenario_rejected() {
        let e = ScenarioSpec::parse("clock_mhz 500\n").unwrap_err();
        assert!(e.message.contains("no masters"));
    }

    #[test]
    fn duplicate_master_rejected() {
        let text = "[master a]\nkind cpu\n[master a]\nkind cpu\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("duplicate"));
        assert_eq!(e.line, 3, "duplicate reported at its own declaration");
    }

    #[test]
    fn diagnostic_renders_file_line_message() {
        let e = ScenarioSpec::parse("clock_mhz 1000\nbogus").unwrap_err();
        assert_eq!(
            e.diagnostic("scen.fgq"),
            "scen.fgq:2: expected `key value`, got \"bogus\""
        );
        // Whole-file errors have no line; the diagnostic omits it.
        let e = ScenarioSpec::parse("clock_mhz 500\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.diagnostic("s.fgq").starts_with("s.fgq: "));
    }

    #[test]
    fn reclaim_requires_roles() {
        let text = "[master a]\nkind cpu\n[policy reclaim]\nreserved 100\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("reclaim policy needs"));
    }

    #[test]
    fn invalid_traffic_rejected_at_parse() {
        let text = "[master a]\nkind cpu\ntxn 100\n"; // not beat multiple
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("multiple"));
    }

    // ---- v2: phases ----

    const V2_BASE: &str = "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern random
footprint 4M
txn 256
think 500

[master dma0]
kind accel
role best-effort
period 1000
budget 2048
pattern seq
base 0x40000000
txn 1024

[master dma1]
kind accel
role best-effort
period 1000
budget 2048
pattern seq
base 0x50000000
txn 1024
";

    #[test]
    fn parses_phase_sections() {
        let text = format!(
            "{V2_BASE}\n[phase ramp]\nat 50000\nbudget dma0 8192\nperiod dma1 500\nenable dma1 off\n"
        );
        let s = ScenarioSpec::parse(&text).expect("parses");
        assert_eq!(s.phases.len(), 1);
        let p = &s.phases[0];
        assert_eq!(p.name, "ramp");
        assert_eq!(p.at, 50_000);
        assert_eq!(
            p.actions,
            vec![
                PhaseAction {
                    master: "dma0".into(),
                    op: PhaseOp::Budget(8_192)
                },
                PhaseAction {
                    master: "dma1".into(),
                    op: PhaseOp::Period(500)
                },
                PhaseAction {
                    master: "dma1".into(),
                    op: PhaseOp::Enable(false)
                },
            ]
        );
    }

    #[test]
    fn phase_wildcard_expands_over_best_effort() {
        let text = format!("{V2_BASE}\n[phase all]\nat 1000\nbudget * 4096\n");
        let s = ScenarioSpec::parse(&text).expect("parses");
        let names: Vec<&str> = s.phases[0]
            .actions
            .iter()
            .map(|a| a.master.as_str())
            .collect();
        assert_eq!(names, vec!["dma0", "dma1"]);
    }

    #[test]
    fn phase_requires_at_and_best_effort_target() {
        let text = format!("{V2_BASE}\n[phase p]\nbudget dma0 4096\n");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("missing `at`"), "{}", e.message);
        let text = format!("{V2_BASE}\n[phase p]\nat 100\nbudget cpu 4096\n");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("not best-effort"), "{}", e.message);
    }

    #[test]
    fn phase_zero_period_rejected() {
        let text = format!("{V2_BASE}\n[phase p]\nat 100\nperiod dma0 0\n");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("non-zero"), "{}", e.message);
    }

    #[test]
    fn phased_scenario_reprograms_budget() {
        let text = format!("{V2_BASE}\n[phase ramp]\nat 10000\nbudget dma0 8192\n");
        let s = ScenarioSpec::parse(&text).expect("parses");
        let (mut soc, fabric) = s.build();
        assert_eq!(fabric.driver("dma0").unwrap().budget_bytes(), 2_048);
        soc.run(20_000);
        assert_eq!(fabric.driver("dma0").unwrap().budget_bytes(), 8_192);
    }

    // ---- v2: faults ----

    #[test]
    fn parses_fault_sections() {
        let text = format!(
            "{V2_BASE}\n[fault mayhem]\nat 80000\nrogue dma0\nbursty dma1 500 1500\n\
             regulator dma1 off\nrefresh_storm 400 20000\n"
        );
        let s = ScenarioSpec::parse(&text).expect("parses");
        assert_eq!(s.faults.len(), 1);
        let f = &s.faults[0];
        assert_eq!(f.at, 80_000);
        assert_eq!(f.events.len(), 4);
        assert_eq!(
            f.events[0],
            FaultEvent::Rogue {
                master: "dma0".into()
            }
        );
        assert_eq!(
            f.events[3],
            FaultEvent::RefreshStorm {
                interval: 400,
                duration: 20_000
            }
        );
    }

    #[test]
    fn fault_validation() {
        // Kernel masters cannot be traffic-faulted.
        let text = "[master k]\nkind accel\nworkload kernel:memcpy\n[fault f]\nat 10\nrogue k\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("kernel"), "{}", e.message);
        // Regulator faults need a regulated master.
        let text = format!("{V2_BASE}\n[fault f]\nat 10\nregulator cpu off\n");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("not best-effort"), "{}", e.message);
        // Controller faults need a policy.
        let text = format!("{V2_BASE}\n[fault f]\nat 10\ncontroller off\n");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("policy reclaim"), "{}", e.message);
        // Two traffic faults on one master at the same cycle.
        let text =
            format!("{V2_BASE}\n[fault a]\nat 10\nrogue dma0\n[fault b]\nat 10\nhalt dma0\n");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("two traffic faults"), "{}", e.message);
        // Overlapping storms.
        let text = format!(
            "{V2_BASE}\n[fault a]\nat 10\nrefresh_storm 400 1000\n\
             [fault b]\nat 500\nrefresh_storm 400 1000\n"
        );
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("overlap"), "{}", e.message);
    }

    #[test]
    fn rogue_fault_builds_phased_source() {
        let text = format!("{V2_BASE}\n[fault f]\nat 5000\nrogue dma0\n");
        let s = ScenarioSpec::parse(&text).expect("parses");
        let (mut soc, _fabric) = s.build();
        soc.run(20_000);
        let id = soc.master_id("dma0").expect("declared");
        assert!(soc.master_stats(id).issued_txns > 0);
    }

    #[test]
    fn storm_fault_reaches_dram_config() {
        let text = format!("{V2_BASE}\n[fault f]\nat 5000\nrefresh_storm 500 10000\n");
        let s = ScenarioSpec::parse(&text).expect("parses");
        assert_eq!(
            s.storms(),
            vec![RefreshStorm {
                start: 5_000,
                end: 15_000,
                interval: 500
            }]
        );
        let (mut soc, _fabric) = s.build();
        soc.run(30_000);
    }

    // ---- v2: expects ----

    #[test]
    fn parses_expect_directives() {
        let text = format!(
            "{V2_BASE}\nexpect p99_latency(cpu) < 2000\nexpect bytes(dma0) >= 1M\n\
             expect bandwidth(dma1) within 5% of budget\nexpect isolation(cpu)\n\
             expect not isolation(cpu)\n"
        );
        let s = ScenarioSpec::parse(&text).expect("parses");
        assert_eq!(s.expects.len(), 5);
        assert_eq!(
            s.expects[0].kind,
            ExpectKind::Latency {
                metric: LatencyMetric::P99,
                master: "cpu".into(),
                op: CmpOp::Lt,
                value: 2_000
            }
        );
        assert_eq!(
            s.expects[1].kind,
            ExpectKind::Bytes {
                master: "dma0".into(),
                op: CmpOp::Ge,
                value: 1 << 20
            }
        );
        assert_eq!(
            s.expects[2].kind,
            ExpectKind::WithinBudget {
                master: "dma1".into(),
                percent: 5.0
            }
        );
        assert_eq!(
            s.expects[3].kind,
            ExpectKind::Isolation {
                master: "cpu".into()
            }
        );
        assert!(!s.expects[3].negated);
        assert!(s.expects[4].negated);
        assert_eq!(s.expects[0].text, "p99_latency(cpu) < 2000");
    }

    #[test]
    fn expect_role_validation() {
        let text = format!("{V2_BASE}\nexpect isolation(dma0)\n");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("critical"), "{}", e.message);
        let text = format!("{V2_BASE}\nexpect bandwidth(cpu) within 5% of budget\n");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("best-effort"), "{}", e.message);
    }

    #[test]
    fn malformed_expect_diagnostics_pinned() {
        let e = ScenarioSpec::parse("expect p99latency(cpu) < 5\n[master cpu]\nkind cpu\n")
            .unwrap_err();
        assert_eq!(
            e.diagnostic("s.fgq"),
            "s.fgq:1: malformed expect: unknown metric \"p99latency\" \
             (did you mean \"p99_latency\"?)"
        );
        let e = ScenarioSpec::parse("expect isolation cpu\n[master cpu]\nkind cpu\n").unwrap_err();
        assert_eq!(
            e.diagnostic("s.fgq"),
            "s.fgq:1: malformed expect \"isolation cpu\": expected `metric(master)`"
        );
        let e =
            ScenarioSpec::parse("expect bytes(cpu) == 5\n[master cpu]\nkind cpu\n").unwrap_err();
        assert_eq!(
            e.diagnostic("s.fgq"),
            "s.fgq:1: malformed expect \"bytes(cpu) == 5\": unknown comparison \"==\" \
             (use <, <=, > or >=)"
        );
    }

    #[test]
    fn did_you_mean_diagnostics_pinned() {
        let e = ScenarioSpec::parse("clock_mzh 1000\n[master a]\nkind cpu\n").unwrap_err();
        assert_eq!(
            e.diagnostic("s.fgq"),
            "s.fgq:1: unknown top-level key \"clock_mzh\" (did you mean \"clock_mhz\"?)"
        );
        let e = ScenarioSpec::parse("[master a]\nkind cpu\nfootprnt 4M\n").unwrap_err();
        assert_eq!(
            e.diagnostic("s.fgq"),
            "s.fgq:3: unknown master key \"footprnt\" (did you mean \"footprint\"?)"
        );
        let e = ScenarioSpec::parse("[phse p]\nat 100\n").unwrap_err();
        assert_eq!(
            e.diagnostic("s.fgq"),
            "s.fgq:1: unknown section \"phse\" (did you mean \"phase\"?)"
        );
        // Unknown master names in faults get name suggestions too.
        let text = format!("{V2_BASE}\n[fault f]\nat 10\nrogue dma2\n");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(
            e.message.contains("did you mean \"dma0\"?"),
            "{}",
            e.message
        );
    }

    #[test]
    fn far_off_keys_get_no_suggestion() {
        let e = ScenarioSpec::parse("[master a]\nkind cpu\nzzzzzz 1\n").unwrap_err();
        assert!(!e.message.contains("did you mean"), "{}", e.message);
    }

    // ---- v2: cycles / until_done / override / extends ----

    #[test]
    fn cycles_and_until_done_directives() {
        let text = format!("cycles 123456\nuntil_done cpu\n{V2_BASE}");
        let s = ScenarioSpec::parse(&text).expect("parses");
        assert_eq!(s.cycles, Some(123_456));
        assert_eq!(s.until_done.as_deref(), Some("cpu"));
        let text = format!("until_done nope\n{V2_BASE}");
        let e = ScenarioSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("unknown master"), "{}", e.message);
    }

    #[test]
    fn override_master_merges_into_declaration() {
        let text = format!("{V2_BASE}\n[override master dma0]\nbudget 9999\nseed 7\n");
        let s = ScenarioSpec::parse(&text).expect("parses");
        let dma = &s.masters[1];
        assert_eq!(dma.budget, 9_999);
        assert_eq!(dma.seed, 7);
        // Untouched keys keep their original values.
        assert_eq!(spec_of(dma).base, 0x4000_0000);
        let e =
            ScenarioSpec::parse("[master a]\nkind cpu\n[override master b]\nseed 2\n").unwrap_err();
        assert!(e.message.contains("unknown master"), "{}", e.message);
    }

    #[test]
    fn unresolved_extends_rejected_by_parse() {
        let e = ScenarioSpec::parse("extends base.fgq\n[master a]\nkind cpu\n").unwrap_err();
        assert!(e.message.contains("unresolved extends"), "{}", e.message);
    }

    #[test]
    fn resolve_extends_flattens_and_detects_cycles() {
        let fetch = |path: &str| match path {
            "base.fgq" => Ok(V2_BASE.to_string()),
            "mid.fgq" => Ok("extends base.fgq\n[override master dma0]\nbudget 4096\n".to_string()),
            other => Err(format!("no such file {other:?}")),
        };
        let child = "extends mid.fgq\n[override master dma1]\nbudget 1024\n";
        let flat = resolve_extends_with(child, &mut fetch.clone()).expect("resolves");
        let s = ScenarioSpec::parse(&flat).expect("flattened text parses");
        assert_eq!(s.masters[1].budget, 4_096);
        assert_eq!(s.masters[2].budget, 1_024);
        // Cycle detection.
        let mut cyclic = |path: &str| match path {
            "a.fgq" => Ok("extends b.fgq\n".to_string()),
            "b.fgq" => Ok("extends a.fgq\n".to_string()),
            other => Err(format!("no such file {other:?}")),
        };
        let e = resolve_extends_with("extends a.fgq\n", &mut cyclic).unwrap_err();
        assert!(e.message.contains("cycle"), "{}", e.message);
        // Missing parent surfaces the loader error with the extends line.
        let e = resolve_extends_with("extends nope.fgq\n", &mut fetch.clone()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("no such file"), "{}", e.message);
        // extends inside a section passes through and parse rejects it.
        let kept = resolve_extends_with("[master a]\nextends b.fgq\n", &mut fetch.clone())
            .expect("resolves");
        assert!(kept.contains("extends b.fgq"));
    }

    #[test]
    fn v1_scenarios_parse_unchanged() {
        // The full v1 surface in one file: still parses, still builds.
        let text = format!(
            "{SAMPLE}\n[xbar]\narbitration rr\n\n[policy reclaim]\nreserved 1000\nbase 2048\n"
        );
        let s = ScenarioSpec::parse(&text).expect("v1 text parses");
        assert!(s.phases.is_empty());
        assert!(s.faults.is_empty());
        assert!(s.expects.is_empty());
        let (mut soc, _fabric) = s.build();
        soc.run(10_000);
    }
}
