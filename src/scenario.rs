//! Declarative scenario files.
//!
//! Experiments on the real board are described by a configuration (which
//! ports exist, their roles, budgets, traffic) rather than by code. This
//! module gives the simulated stack the same workflow: a small
//! line-oriented text format parsed into a [`ScenarioSpec`], which builds
//! a ready-to-run [`Soc`] plus the
//! [`QosFabric`] software handle. The
//! `fgqos` CLI binary runs such files directly.
//!
//! # Format
//!
//! ```text
//! # comments and blank lines are ignored
//! clock_mhz 1000
//!
//! [master cpu]
//! kind cpu                 # cpu | accel
//! role critical            # critical | best-effort | unmanaged
//! pattern random           # seq | random | strided:<bytes>
//! base 0x0
//! footprint 4M
//! txn 256
//! think 1000
//! total 10000
//!
//! [master dma0]
//! kind accel
//! role best-effort
//! period 1000
//! budget 2048
//! pattern seq
//! base 0x40000000
//! footprint 16M
//! txn 1024
//!
//! [master accel]
//! kind accel
//! workload kernel:stream-triad:4   # replay a kernel model 4 times
//!
//! [xbar]
//! arbitration weighted             # rr | priority | weighted
//! weights 4,1,1                    # one per master, in declaration order
//!
//! [policy reclaim]
//! reserved 2500
//! base 10240
//! control 10000
//! gain 25
//! busy 256
//! ```
//!
//! Masters also accept `burst <on> <off>` (on/off phasing in cycles),
//! `gap`, `write_ratio`, `dir`, `outstanding` and `seed`. Sizes accept
//! `K`/`M`/`G` suffixes (powers of two) and `0x` hex.

use fgqos_core::fabric::{QosFabric, QosFabricBuilder};
use fgqos_core::policy::ReclaimConfig;
use fgqos_sim::axi::Dir;
use fgqos_sim::gate::OpenGate;
use fgqos_sim::interconnect::{Arbitration, XbarConfig};
use fgqos_sim::master::MasterKind;
use fgqos_sim::system::{Soc, SocBuilder, SocConfig};
use fgqos_sim::time::Freq;
use fgqos_workloads::kernels::Kernel;
use fgqos_workloads::spec::{AddressPattern, BurstShape, SpecSource, TrafficSpec};
use std::error::Error;
use std::fmt;

/// Error from [`ScenarioSpec::parse`].
#[derive(Debug)]
pub struct ParseScenarioError {
    /// 1-based line number (0 for structural errors).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario line {}: {}", self.line, self.message)
    }
}

impl Error for ParseScenarioError {}

impl ParseScenarioError {
    /// Renders a compiler-style `file:line: message` diagnostic (the
    /// form `fgqos check` prints). Errors without a meaningful line
    /// (whole-file validation) render as `file: message`.
    pub fn diagnostic(&self, file: &str) -> String {
        if self.line > 0 {
            format!("{file}:{}: {}", self.line, self.message)
        } else {
            format!("{file}: {}", self.message)
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseScenarioError {
    ParseScenarioError {
        line,
        message: message.into(),
    }
}

/// Parses `128`, `0x80`, `4K`, `16M`, `1G`.
fn parse_size(token: &str, line: usize) -> Result<u64, ParseScenarioError> {
    let t = token.trim();
    let (body, mult) = match t.chars().last() {
        Some('K') | Some('k') => (&t[..t.len() - 1], 1u64 << 10),
        Some('M') | Some('m') => (&t[..t.len() - 1], 1 << 20),
        Some('G') | Some('g') => (&t[..t.len() - 1], 1 << 30),
        _ => (t, 1),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|e| err(line, format!("bad number {token:?}: {e}")))?;
    Ok(v * mult)
}

/// QoS role of a declared master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// Monitored, never throttled.
    Critical,
    /// Regulated by a tightly-coupled regulator.
    BestEffort,
    /// No QoS hardware at all (plain [`OpenGate`]).
    #[default]
    Unmanaged,
}

/// Workload of a declared master: synthetic traffic or a kernel model.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Declarative synthetic traffic.
    Spec(TrafficSpec),
    /// A benchmark kernel model replayed for a number of iterations.
    Kernel(Kernel, u64),
}

impl MasterSpec {
    /// Base address of this master's footprint (kernel workloads are
    /// placed at a per-master offset derived from their declaration
    /// order via the seed; synthetic workloads carry their own base).
    fn traffic_base(&self) -> u64 {
        match &self.workload {
            Workload::Spec(t) => t.base,
            Workload::Kernel(..) => (1 + self.seed % 16) << 28,
        }
    }
}

/// One declared master.
#[derive(Debug, Clone)]
pub struct MasterSpec {
    /// Port name (unique).
    pub name: String,
    /// Master kind (sets the default outstanding limit).
    pub kind: MasterKind,
    /// QoS role.
    pub role: Role,
    /// Regulation window (best-effort only).
    pub period: u32,
    /// Byte budget per window (best-effort only).
    pub budget: u32,
    /// Workload description.
    pub workload: Workload,
    /// Outstanding override (0 = kind default).
    pub outstanding: usize,
    /// Deterministic seed.
    pub seed: u64,
}

/// Optional reclaim policy section.
#[derive(Debug, Clone, Copy)]
pub struct ReclaimSpec {
    /// See [`ReclaimConfig`].
    pub config: ReclaimConfig,
}

/// A parsed scenario.
#[derive(Debug)]
pub struct ScenarioSpec {
    /// SoC clock.
    pub freq: Freq,
    /// Crossbar configuration (`[xbar]` section).
    pub xbar: XbarConfig,
    /// Declared masters, in file order.
    pub masters: Vec<MasterSpec>,
    /// Optional reclaim policy.
    pub reclaim: Option<ReclaimSpec>,
}

#[derive(Debug)]
struct MasterDraft {
    name: String,
    kind: Option<MasterKind>,
    role: Role,
    period: u32,
    budget: u32,
    pattern: AddressPattern,
    base: u64,
    footprint: u64,
    txn: u64,
    think: u64,
    gap: u64,
    total: u64,
    write_ratio: f64,
    dir: Dir,
    burst: Option<BurstShape>,
    kernel: Option<(Kernel, u64)>,
    outstanding: usize,
    seed: u64,
    declared_at: usize,
}

impl MasterDraft {
    fn new(name: String, line: usize) -> Self {
        MasterDraft {
            name,
            kind: None,
            role: Role::Unmanaged,
            period: 1_000,
            budget: 1_024,
            pattern: AddressPattern::Sequential,
            base: 0,
            footprint: 16 << 20,
            txn: 256,
            think: 0,
            gap: 0,
            total: u64::MAX,
            write_ratio: 0.0,
            dir: Dir::Read,
            burst: None,
            kernel: None,
            outstanding: 0,
            seed: 1,
            declared_at: line,
        }
    }

    fn finish(self) -> Result<MasterSpec, ParseScenarioError> {
        let kind = self.kind.ok_or_else(|| {
            err(
                self.declared_at,
                format!("master {:?} missing kind", self.name),
            )
        })?;
        let workload = match self.kernel {
            Some((kernel, iterations)) => Workload::Kernel(kernel, iterations),
            None => {
                let traffic = TrafficSpec {
                    base: self.base,
                    footprint: self.footprint,
                    txn_bytes: self.txn,
                    dir: self.dir,
                    write_ratio: self.write_ratio,
                    pattern: self.pattern,
                    gap: self.gap,
                    think: self.think,
                    total: self.total,
                    burst: self.burst,
                };
                traffic
                    .validate()
                    .map_err(|m| err(self.declared_at, format!("master {:?}: {m}", self.name)))?;
                Workload::Spec(traffic)
            }
        };
        Ok(MasterSpec {
            name: self.name,
            kind,
            role: self.role,
            period: self.period,
            budget: self.budget,
            workload,
            outstanding: self.outstanding,
            seed: self.seed,
        })
    }
}

enum Section {
    Top,
    Master(MasterDraft),
    Reclaim(ReclaimConfig),
    Xbar(XbarConfig),
}

impl ScenarioSpec {
    /// Parses a scenario from text.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line with its number.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ParseScenarioError> {
        let mut freq = Freq::default();
        let mut xbar = XbarConfig::default();
        let mut masters: Vec<MasterSpec> = Vec::new();
        let mut reclaim: Option<ReclaimSpec> = None;
        let mut section = Section::Top;

        let close = |section: &mut Section,
                     masters: &mut Vec<MasterSpec>,
                     reclaim: &mut Option<ReclaimSpec>,
                     xbar: &mut XbarConfig|
         -> Result<(), ParseScenarioError> {
            match std::mem::replace(section, Section::Top) {
                Section::Top => {}
                Section::Master(d) => {
                    let declared_at = d.declared_at;
                    let m = d.finish()?;
                    if masters.iter().any(|x| x.name == m.name) {
                        return Err(err(
                            declared_at,
                            format!("duplicate master name {:?}", m.name),
                        ));
                    }
                    masters.push(m);
                }
                Section::Reclaim(cfg) => *reclaim = Some(ReclaimSpec { config: cfg }),
                Section::Xbar(cfg) => *xbar = cfg,
            }
            Ok(())
        };

        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            if let Some(header) = body.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| err(line_no, "unterminated section header"))?
                    .trim();
                close(&mut section, &mut masters, &mut reclaim, &mut xbar)?;
                let mut parts = header.split_whitespace();
                match parts.next() {
                    Some("master") => {
                        let name = parts
                            .next()
                            .ok_or_else(|| err(line_no, "master section needs a name"))?;
                        section = Section::Master(MasterDraft::new(name.to_string(), line_no));
                    }
                    Some("xbar") => {
                        section = Section::Xbar(XbarConfig::default());
                    }
                    Some("policy") => match parts.next() {
                        Some("reclaim") => {
                            section = Section::Reclaim(ReclaimConfig::default());
                        }
                        other => {
                            return Err(err(line_no, format!("unknown policy {other:?}")));
                        }
                    },
                    other => return Err(err(line_no, format!("unknown section {other:?}"))),
                }
                continue;
            }
            let (key, value) = body
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(line_no, format!("expected `key value`, got {body:?}")))?;
            let value = value.trim();
            match &mut section {
                Section::Top => match key {
                    "clock_mhz" => {
                        freq = Freq::mhz(parse_size(value, line_no)?);
                    }
                    other => return Err(err(line_no, format!("unknown top-level key {other:?}"))),
                },
                Section::Master(d) => match key {
                    "kind" => {
                        d.kind = Some(match value {
                            "cpu" => MasterKind::Cpu,
                            "accel" => MasterKind::Accelerator,
                            other => return Err(err(line_no, format!("unknown kind {other:?}"))),
                        })
                    }
                    "role" => {
                        d.role = match value {
                            "critical" => Role::Critical,
                            "best-effort" => Role::BestEffort,
                            "unmanaged" => Role::Unmanaged,
                            other => return Err(err(line_no, format!("unknown role {other:?}"))),
                        }
                    }
                    "burst" => {
                        let (on, off) = value
                            .split_once(char::is_whitespace)
                            .ok_or_else(|| err(line_no, "burst needs `<on> <off>`"))?;
                        d.burst = Some(BurstShape {
                            on_cycles: parse_size(on, line_no)?,
                            off_cycles: parse_size(off, line_no)?,
                        });
                    }
                    "workload" => {
                        let spec = value.strip_prefix("kernel:").ok_or_else(|| {
                            err(line_no, "workload must be kernel:<name>[:<iters>]")
                        })?;
                        let (name, iters) = match spec.split_once(':') {
                            Some((n, i)) => (n, parse_size(i, line_no)?),
                            None => (spec, 1),
                        };
                        let kernel = Kernel::all()
                            .into_iter()
                            .find(|k| k.name() == name)
                            .ok_or_else(|| err(line_no, format!("unknown kernel {name:?}")))?;
                        d.kernel = Some((kernel, iters));
                    }
                    "pattern" => {
                        d.pattern = if value == "seq" {
                            AddressPattern::Sequential
                        } else if value == "random" {
                            AddressPattern::Random
                        } else if let Some(stride) = value.strip_prefix("strided:") {
                            AddressPattern::Strided {
                                stride: parse_size(stride, line_no)?,
                            }
                        } else {
                            return Err(err(line_no, format!("unknown pattern {value:?}")));
                        }
                    }
                    "dir" => {
                        d.dir = match value {
                            "R" | "r" | "read" => Dir::Read,
                            "W" | "w" | "write" => Dir::Write,
                            other => return Err(err(line_no, format!("unknown dir {other:?}"))),
                        }
                    }
                    "base" => d.base = parse_size(value, line_no)?,
                    "footprint" => d.footprint = parse_size(value, line_no)?,
                    "txn" => d.txn = parse_size(value, line_no)?,
                    "think" => d.think = parse_size(value, line_no)?,
                    "gap" => d.gap = parse_size(value, line_no)?,
                    "total" => d.total = parse_size(value, line_no)?,
                    "write_ratio" => {
                        d.write_ratio = value
                            .parse()
                            .map_err(|e| err(line_no, format!("bad ratio: {e}")))?
                    }
                    "period" => d.period = parse_size(value, line_no)? as u32,
                    "budget" => d.budget = parse_size(value, line_no)? as u32,
                    "outstanding" => d.outstanding = parse_size(value, line_no)? as usize,
                    "seed" => d.seed = parse_size(value, line_no)?,
                    other => return Err(err(line_no, format!("unknown master key {other:?}"))),
                },
                Section::Xbar(cfg) => match key {
                    "arbitration" => {
                        cfg.arbitration = match value {
                            "rr" => Arbitration::RoundRobin,
                            "priority" => Arbitration::FixedPriority,
                            "weighted" => Arbitration::WeightedRoundRobin,
                            other => {
                                return Err(err(line_no, format!("unknown arbitration {other:?}")))
                            }
                        }
                    }
                    "weights" => {
                        cfg.weights = value
                            .split(',')
                            .map(|w| parse_size(w, line_no).map(|v| v as u32))
                            .collect::<Result<Vec<u32>, _>>()?;
                    }
                    other => return Err(err(line_no, format!("unknown xbar key {other:?}"))),
                },
                Section::Reclaim(cfg) => match key {
                    "reserved" => cfg.critical_reserved = parse_size(value, line_no)?,
                    "base" => cfg.be_base = parse_size(value, line_no)?,
                    "control" => cfg.control_period = parse_size(value, line_no)?,
                    "gain" => cfg.gain = parse_size(value, line_no)?,
                    "busy" => cfg.busy_threshold = Some(parse_size(value, line_no)?),
                    other => return Err(err(line_no, format!("unknown reclaim key {other:?}"))),
                },
            }
        }
        close(&mut section, &mut masters, &mut reclaim, &mut xbar)?;
        if masters.is_empty() {
            return Err(err(0, "scenario declares no masters"));
        }
        if reclaim.is_some() {
            let has_critical = masters.iter().any(|m| m.role == Role::Critical);
            let has_be = masters.iter().any(|m| m.role == Role::BestEffort);
            if !has_critical || !has_be {
                return Err(err(
                    0,
                    "reclaim policy needs at least one critical and one best-effort master",
                ));
            }
        }
        if !xbar.weights.is_empty() && xbar.weights.len() != masters.len() {
            return Err(err(0, "xbar weights must list one weight per master"));
        }
        Ok(ScenarioSpec {
            freq,
            xbar,
            masters,
            reclaim,
        })
    }

    /// Builds the SoC and its QoS fabric.
    pub fn build(&self) -> (Soc, QosFabric) {
        let cfg = SocConfig {
            freq: self.freq,
            xbar: self.xbar.clone(),
            ..SocConfig::default()
        };
        let mut fabric = QosFabricBuilder::new();
        let mut builder = SocBuilder::new(cfg);
        for m in &self.masters {
            let outstanding = if m.outstanding > 0 {
                m.outstanding
            } else {
                m.kind.default_outstanding()
            };
            let source: Box<dyn fgqos_sim::master::TrafficSource> = match &m.workload {
                Workload::Spec(t) => Box::new(SpecSource::new(*t, m.seed)),
                Workload::Kernel(k, iters) => Box::new(k.source(m.traffic_base(), *iters, m.seed)),
            };
            builder = match m.role {
                Role::Critical => {
                    let gate = fabric.critical_port(&m.name, m.period.max(1));
                    builder.master_full(&m.name, source, m.kind, gate, outstanding)
                }
                Role::BestEffort => {
                    let gate = fabric.best_effort_port(&m.name, m.period.max(1), m.budget);
                    builder.master_full(&m.name, source, m.kind, gate, outstanding)
                }
                Role::Unmanaged => {
                    builder.master_full(&m.name, source, m.kind, OpenGate, outstanding)
                }
            };
        }
        let fabric = fabric.finish();
        if let Some(r) = &self.reclaim {
            builder = builder.controller(fabric.reclaim_policy(r.config));
        }
        (builder.build(), fabric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern random
footprint 4M
txn 256
think 1000
total 2000
outstanding 1

[master dma0]
kind accel
role best-effort
period 1000
budget 2K
pattern seq
base 0x40000000
txn 1024

[master rogue]
kind accel
pattern strided:64K
txn 512
write_ratio 0.5
seed 9
";

    fn spec_of(m: &MasterSpec) -> &TrafficSpec {
        match &m.workload {
            Workload::Spec(t) => t,
            Workload::Kernel(..) => panic!("expected synthetic workload"),
        }
    }

    #[test]
    fn parses_sample() {
        let s = ScenarioSpec::parse(SAMPLE).expect("parses");
        assert_eq!(s.freq, Freq::ghz(1));
        assert_eq!(s.masters.len(), 3);
        let cpu = &s.masters[0];
        assert_eq!(cpu.role, Role::Critical);
        assert_eq!(cpu.kind, MasterKind::Cpu);
        assert_eq!(spec_of(cpu).total, 2_000);
        let dma = &s.masters[1];
        assert_eq!(dma.budget, 2_048);
        assert_eq!(spec_of(dma).base, 0x4000_0000);
        let rogue = &s.masters[2];
        assert_eq!(rogue.role, Role::Unmanaged);
        assert!(matches!(
            spec_of(rogue).pattern,
            AddressPattern::Strided { stride: 65_536 }
        ));
        assert_eq!(spec_of(rogue).write_ratio, 0.5);
    }

    #[test]
    fn xbar_section_and_kernel_and_burst() {
        let text = "\
[xbar]
arbitration weighted
weights 1,3

[master cpu]
kind cpu
role critical
burst 1000 9000
txn 256
total 100

[master k]
kind accel
workload kernel:memcpy:2
";
        let s = ScenarioSpec::parse(text).expect("parses");
        assert_eq!(s.xbar.arbitration, Arbitration::WeightedRoundRobin);
        assert_eq!(s.xbar.weights, vec![1, 3]);
        assert_eq!(
            spec_of(&s.masters[0]).burst,
            Some(BurstShape {
                on_cycles: 1_000,
                off_cycles: 9_000
            })
        );
        match &s.masters[1].workload {
            Workload::Kernel(k, iters) => {
                assert_eq!(k.name(), "memcpy");
                assert_eq!(*iters, 2);
            }
            other => panic!("expected kernel workload, got {other:?}"),
        }
        let (mut soc, _fabric) = s.build();
        soc.run(20_000);
        assert!(
            soc.master_stats(fgqos_sim::axi::MasterId::new(1))
                .issued_txns
                > 0
        );
    }

    #[test]
    fn weight_count_must_match_masters() {
        let text = "[xbar]\nweights 1,2,3\n[master a]\nkind cpu\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("one weight per master"));
    }

    #[test]
    fn unknown_kernel_rejected() {
        let text = "[master a]\nkind accel\nworkload kernel:bogus\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("unknown kernel"));
    }

    #[test]
    fn builds_and_runs() {
        let s = ScenarioSpec::parse(SAMPLE).expect("parses");
        let (mut soc, fabric) = s.build();
        assert_eq!(soc.master_count(), 3);
        soc.run(200_000);
        assert!(fabric.driver("dma0").unwrap().telemetry().total_bytes > 0);
        assert!(fabric.driver("cpu").unwrap().telemetry().total_bytes > 0);
        assert!(
            fabric.driver("rogue").is_none(),
            "unmanaged ports have no regulator"
        );
    }

    #[test]
    fn reclaim_section_builds_policy() {
        let text = format!(
            "{SAMPLE}\n[policy reclaim]\nreserved 2500\nbase 10K\ncontrol 10000\ngain 25\nbusy 256\n"
        );
        let s = ScenarioSpec::parse(&text).expect("parses");
        let r = s.reclaim.expect("reclaim present");
        assert_eq!(r.config.critical_reserved, 2_500);
        assert_eq!(r.config.be_base, 10_240);
        assert_eq!(r.config.busy_threshold, Some(256));
        let (mut soc, _fabric) = s.build();
        soc.run(50_000);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("128", 1).unwrap(), 128);
        assert_eq!(parse_size("0x80", 1).unwrap(), 128);
        assert_eq!(parse_size("4K", 1).unwrap(), 4_096);
        assert_eq!(parse_size("2M", 1).unwrap(), 2 << 20);
        assert_eq!(parse_size("1G", 1).unwrap(), 1 << 30);
        assert!(parse_size("12Q", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = ScenarioSpec::parse("clock_mhz 1000\nbogus").unwrap_err();
        assert_eq!(e.line, 2);
        let e = ScenarioSpec::parse("[master a]\nkind dsp\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("kind"));
    }

    #[test]
    fn missing_kind_rejected() {
        let e = ScenarioSpec::parse("[master a]\ntxn 256\n").unwrap_err();
        assert!(e.message.contains("missing kind"));
    }

    #[test]
    fn empty_scenario_rejected() {
        let e = ScenarioSpec::parse("clock_mhz 500\n").unwrap_err();
        assert!(e.message.contains("no masters"));
    }

    #[test]
    fn duplicate_master_rejected() {
        let text = "[master a]\nkind cpu\n[master a]\nkind cpu\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("duplicate"));
        assert_eq!(e.line, 3, "duplicate reported at its own declaration");
    }

    #[test]
    fn diagnostic_renders_file_line_message() {
        let e = ScenarioSpec::parse("clock_mhz 1000\nbogus").unwrap_err();
        assert_eq!(
            e.diagnostic("scen.fgq"),
            "scen.fgq:2: expected `key value`, got \"bogus\""
        );
        // Whole-file errors have no line; the diagnostic omits it.
        let e = ScenarioSpec::parse("clock_mhz 500\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.diagnostic("s.fgq").starts_with("s.fgq: "));
    }

    #[test]
    fn reclaim_requires_roles() {
        let text = "[master a]\nkind cpu\n[policy reclaim]\nreserved 100\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("reclaim policy needs"));
    }

    #[test]
    fn invalid_traffic_rejected_at_parse() {
        let text = "[master a]\nkind cpu\ntxn 100\n"; // not beat multiple
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("multiple"));
    }
}
