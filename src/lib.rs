//! # fgqos — umbrella crate
//!
//! Re-exports the whole `fgqos` workspace behind one dependency. See the
//! member crates for details:
//!
//! * [`sim`] — cycle-level FPGA HeSoC memory-subsystem simulator
//! * [`core`] — the paper's tightly-coupled bandwidth monitor/regulator,
//!   register file, driver and QoS policies
//! * [`baselines`] — MemGuard, PREM/TDMA and unregulated baselines
//! * [`workloads`] — synthetic traffic generators and benchmark kernels
//! * [`bench`](mod@bench) — experiment harness: sweeps, tables, structured reports
//! * [`serve`] — long-running scenario-execution service (job pool,
//!   result cache, self-regulated admission control)
//! * [`hunt_engine`] — adversarial worst-case contention search engine
//!   (wired to scenarios and evaluators by [`hunt`](mod@hunt))

pub mod hunt;
pub mod runner;
pub mod scenario;

pub use fgqos_baselines as baselines;
pub use fgqos_bench as bench;
pub use fgqos_core as core;
pub use fgqos_hunt as hunt_engine;
pub use fgqos_serve as serve;
pub use fgqos_sim as sim;
pub use fgqos_workloads as workloads;

/// Commonly used items from all member crates.
pub mod prelude {
    pub use crate::scenario::ScenarioSpec;
    pub use fgqos_sim::prelude::*;
}
