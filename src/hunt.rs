//! `fgqos hunt` — adversarial worst-case contention search over a
//! scenario.
//!
//! This module is the umbrella-side wiring of the [`fgqos_hunt`] engine:
//! it extracts the structural facts the engine needs from a parsed
//! [`ScenarioSpec`] (the critical master, legal fault targets, reserved
//! names), derives the [`SearchSpace`] from the scenario and the DRAM
//! geometry (bank-hammering strides, on/off-footprint bases), evaluates
//! candidate batches either in-process through
//! [`batch_reports`] or against a running
//! `fgqos serve` instance, computes the analytic bound of the winning
//! configuration via [`fgqos_core::analysis`], and verifies that the
//! emitted winner `.fgq` replays the winning measurement bit for bit.

use crate::runner::{assertion_outcome, batch_reports, scenario_report, RunOptions};
use crate::scenario::{FaultEvent, PhaseOp, Role, ScenarioSpec, Workload};
use fgqos_bench::report::{Block, Report};
use fgqos_core::analysis::{PortModel, SystemModel};
use fgqos_hunt::space::render_winner;
use fgqos_hunt::{
    engine, BaseInfo, BoundComparison, HuntConfig, HuntOutcome, Measured, SearchSpace,
};
use fgqos_serve::client::{Client, SubmitOptions};
use fgqos_serve::protocol::{BatchKind, BatchPoint, BatchSpec};
use fgqos_sim::axi::{BEAT_BYTES, MAX_BURST_BEATS};
use fgqos_sim::dram::DramConfig;
use fgqos_sim::json::Value;
use std::collections::BTreeSet;
use std::time::Duration;

/// How to run a hunt.
#[derive(Debug, Clone)]
pub struct HuntOptions {
    /// Engine configuration (seed, budgets, objective).
    pub config: HuntConfig,
    /// Shared warm-up cycles before the fork boundary.
    pub warmup: u64,
    /// Divergent tail cycles after the boundary.
    pub tail_cycles: u64,
    /// Evaluate through a running `fgqos serve` at this address instead
    /// of the in-process pool.
    pub addr: Option<String>,
}

impl Default for HuntOptions {
    fn default() -> Self {
        HuntOptions {
            config: HuntConfig::default(),
            warmup: 100_000,
            tail_cycles: 150_000,
            addr: None,
        }
    }
}

/// Everything `fgqos hunt` produces.
#[derive(Debug, Clone)]
pub struct HuntResult {
    /// The `fgqos.hunt-report` document.
    pub report: Value,
    /// The winning scenario, replayable standalone.
    pub winner_fgq: String,
    /// Whether a cold replay of `winner_fgq` reproduced the winning
    /// measurement bit-identically (pinned expects included).
    pub replay_verified: bool,
    /// Whether the measured worst case exceeded the analytic delay
    /// bound (always `false` when the configuration is unmodeled).
    pub bound_violated: bool,
    /// The raw search outcome.
    pub outcome: HuntOutcome,
}

/// Runs the full hunt pipeline on resolved scenario text.
pub fn run_hunt(text: &str, opts: &HuntOptions) -> Result<HuntResult, String> {
    let spec = ScenarioSpec::parse(text).map_err(|e| e.to_string())?;
    let base = base_info(text, &spec)?;
    let space = search_space(&spec);
    let critical = base.critical.clone();
    let hz = spec.freq.hz();

    let outcome = match &opts.addr {
        None => {
            let mut eval = |family: &str, points: &[(u64, u64)]| {
                eval_local(family, points, opts, &critical, hz)
            };
            engine::run(&opts.config, &space, &base, &mut eval)?
        }
        Some(addr) => {
            let mut client =
                Client::connect(addr.as_str()).map_err(|e| format!("hunt: connect {addr}: {e}"))?;
            let mut eval = |family: &str, points: &[(u64, u64)]| {
                eval_serve(&mut client, family, points, opts, &critical, hz)
            };
            engine::run(&opts.config, &space, &base, &mut eval)?
        }
    };

    let m = outcome.best.measured;
    let expects = vec![
        ("p50_latency".to_string(), critical.clone(), m.p50),
        ("p99_latency".to_string(), critical.clone(), m.p99),
        ("max_latency".to_string(), critical.clone(), m.max),
        ("bytes".to_string(), critical.clone(), m.bytes),
    ];
    let winner_fgq = render_winner(
        &base,
        &outcome.best.candidate,
        m.boundary,
        m.end,
        opts.config.seed,
        &expects,
    );

    // Cold replay: the winner text must reproduce the forked
    // measurement bit for bit, and every pinned expect must pass.
    let replay = scenario_report(
        &winner_fgq,
        &RunOptions {
            cycles: m.end,
            until_done: None,
        },
    )
    .map_err(|e| format!("hunt: winner replay: {e}"))?;
    let replayed = measured_from_report(&replay, &critical, hz, m.boundary)?;
    let asserts_ok = matches!(assertion_outcome(&replay), Some((_, 0)));
    let replay_verified = replayed == m && asserts_ok;

    let bound = bound_for(&winner_fgq, &critical)?;
    let bound_violated = matches!(
        bound.as_ref().and_then(|b| b.delay_bound),
        Some(limit) if m.max > limit
    );

    let report = fgqos_hunt::render_report(
        &opts.config,
        &base,
        opts.warmup,
        opts.tail_cycles,
        &outcome,
        bound.as_ref(),
        &winner_fgq,
        replay_verified,
    );
    Ok(HuntResult {
        report,
        winner_fgq,
        replay_verified,
        bound_violated,
        outcome,
    })
}

/// Extracts the structural facts the engine needs from the parsed base
/// scenario.
pub fn base_info(text: &str, spec: &ScenarioSpec) -> Result<BaseInfo, String> {
    let critical = spec
        .masters
        .iter()
        .find(|m| matches!(m.role, Role::Critical))
        .map(|m| m.name.clone())
        .ok_or("hunt: the scenario declares no `role critical` master to attack")?;

    // Generated sections are named hx<i> / hxf<i>; a base scenario that
    // already uses those names would collide at parse time.
    for m in &spec.masters {
        if is_reserved(&m.name, "hx") {
            return Err(format!(
                "hunt: master name {:?} is reserved for generated aggressors",
                m.name
            ));
        }
    }
    for f in &spec.faults {
        if is_reserved(&f.name, "hxf") {
            return Err(format!(
                "hunt: fault name {:?} is reserved for generated faults",
                f.name
            ));
        }
    }

    // Masters the base scenario already injects traffic faults into are
    // off-limits: the DSL allows one traffic fault per (master, cycle)
    // and excluding them keeps generated overlays collision-free.
    let mut base_faulted: BTreeSet<&str> = BTreeSet::new();
    for f in &spec.faults {
        for e in &f.events {
            if let FaultEvent::Rogue { master }
            | FaultEvent::Bursty { master, .. }
            | FaultEvent::Halt { master } = e
            {
                base_faulted.insert(master);
            }
        }
    }
    let fault_targets = spec
        .masters
        .iter()
        .filter(|m| {
            matches!(m.role, Role::BestEffort)
                && matches!(m.workload, Workload::Spec(_))
                && !base_faulted.contains(m.name.as_str())
        })
        .map(|m| m.name.clone())
        .collect();

    Ok(BaseInfo {
        text: text.to_string(),
        critical,
        fault_targets,
        reserved_names: spec.masters.iter().map(|m| m.name.clone()).collect(),
        clock_mhz: spec.freq.hz() / 1_000_000,
    })
}

fn is_reserved(name: &str, prefix: &str) -> bool {
    name.strip_prefix(prefix)
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

/// Derives the candidate value lists from the scenario and the DRAM
/// geometry.
pub fn search_space(spec: &ScenarioSpec) -> SearchSpace {
    let dram = DramConfig::default();
    // A stride of row_bytes * banks revisits the same bank with a row
    // miss per access — the classic bank-hammering pattern.
    let bank_stride = dram.row_bytes * dram.banks as u64;
    let (crit_base, crit_fp) = spec
        .masters
        .iter()
        .find(|m| matches!(m.role, Role::Critical))
        .and_then(|m| match &m.workload {
            Workload::Spec(t) => Some((t.base, t.footprint)),
            Workload::Kernel(..) => None,
        })
        .unwrap_or((0x1000_0000, 16 << 20));

    let mut bases = vec![crit_base, crit_base.saturating_add(crit_fp), 0x6000_0000];
    bases.dedup();
    SearchSpace {
        max_aggressors: 3,
        max_faults: 2,
        periods: vec![200, 500, 1_000, 2_000, 4_000, 8_000],
        budgets: vec![512, 1_024, 4_096, 16_384, 65_536, 262_144],
        txns: vec![64, 256, 1_024, 4_096],
        strides: vec![dram.row_bytes, bank_stride, bank_stride * 2],
        bases,
        footprints: vec![1 << 20, 4 << 20, 16 << 20],
        outstandings: vec![0, 2, 8],
        burst_on: vec![100, 500, 2_000],
        burst_off: vec![0, 300, 1_500],
        fault_at: vec![10_000, 40_000, 120_000, 180_000],
    }
}

fn batch_spec(family: &str, points: &[(u64, u64)], opts: &HuntOptions) -> BatchSpec {
    BatchSpec {
        scenario: family.to_string(),
        cycles: opts.tail_cycles,
        until_done: None,
        warmup: opts.warmup,
        points: points
            .iter()
            .map(|&(period, budget)| BatchPoint { period, budget })
            .collect(),
        kind: BatchKind::Hunt,
    }
}

fn eval_local(
    family: &str,
    points: &[(u64, u64)],
    opts: &HuntOptions,
    critical: &str,
    hz: u64,
) -> Result<Vec<Measured>, String> {
    let reports = batch_reports(&batch_spec(family, points, opts)).map_err(|e| e.to_string())?;
    reports
        .iter()
        .map(|r| measured_from_point(r, critical, hz))
        .collect()
}

fn eval_serve(
    client: &mut Client,
    family: &str,
    points: &[(u64, u64)],
    opts: &HuntOptions,
    critical: &str,
    hz: u64,
) -> Result<Vec<Measured>, String> {
    let ack = client
        .submit_batch(&batch_spec(family, points, opts), &SubmitOptions::default())
        .map_err(|e| format!("submit_batch: {e}"))?;
    ack.jobs
        .iter()
        .map(|&job| {
            let doc = client
                .wait_report(job, Duration::from_secs(300))
                .map_err(|e| format!("job {job}: {e}"))?;
            let report = Report::from_json(&doc)?;
            measured_from_point(&report, critical, hz)
        })
        .collect()
}

/// Extracts the critical-master metrics from one batch point report.
fn measured_from_point(report: &Report, critical: &str, hz: u64) -> Result<Measured, String> {
    let boundary = context_u64(report, "boundary")
        .ok_or("hunt: point report carries no 'boundary' context")?;
    measured_from_report(report, critical, hz, boundary)
}

/// Extracts the critical-master metrics from any scenario report whose
/// boundary cycle the caller already knows.
fn measured_from_report(
    report: &Report,
    critical: &str,
    hz: u64,
    boundary: u64,
) -> Result<Measured, String> {
    let end = context_u64(report, "simulated_cycles")
        .ok_or("hunt: report carries no 'simulated_cycles' context")?;
    let row = report
        .blocks()
        .iter()
        .find_map(|b| match b {
            Block::Row(cells) if cells.first().map(String::as_str) == Some(critical) => {
                Some(cells.clone())
            }
            _ => None,
        })
        .ok_or_else(|| format!("hunt: report has no stats row for master {critical:?}"))?;
    // Row shape: master, txns, bytes, bandwidth, p50, p99, max.
    let cell = |i: usize| -> Result<u64, String> {
        row.get(i)
            .and_then(|c| c.parse::<u64>().ok())
            .ok_or_else(|| format!("hunt: stats cell {i} of {critical:?} is not an integer"))
    };
    let bytes = cell(2)?;
    // Recomputed rather than parsed from the table's human-formatted
    // bandwidth cell; identical inputs give identical f64s on both the
    // evaluation and replay paths.
    let bandwidth = if end == 0 {
        0.0
    } else {
        bytes as f64 * hz as f64 / end as f64
    };
    Ok(Measured {
        p50: cell(4)?,
        p99: cell(5)?,
        max: cell(6)?,
        bytes,
        bandwidth,
        boundary,
        end,
    })
}

fn context_u64(report: &Report, key: &str) -> Option<u64> {
    report.blocks().iter().find_map(|b| match b {
        Block::Context { key: k, value } if k == key => value.parse().ok(),
        _ => None,
    })
}

/// Computes the analytic bound of the winning scenario, or `None` when
/// the configuration is outside the model:
///
/// * a kernel-workload critical master (no fixed transaction size),
/// * a refresh storm fault (breaks the `t_refi` term),
/// * a reclaim policy (re-programs budgets at runtime).
///
/// Regulator knobs are folded conservatively: each best-effort port is
/// modeled with the smallest period and largest budget it ever holds —
/// declared values or any `[phase]` write, including the winner's own
/// boundary phase — so the admission curve dominates every regime of the
/// run (measured latencies are cumulative from cycle 0). A port whose
/// regulator is ever disabled by a phase or fault is modeled
/// unregulated. Rogue/bursty/halt faults need no special handling: they
/// reshape *offered* traffic, and the regulator caps admission
/// regardless — which is exactly the guarantee the hunt stresses.
pub fn bound_for(winner_text: &str, critical: &str) -> Result<Option<BoundComparison>, String> {
    let spec = ScenarioSpec::parse(winner_text).map_err(|e| format!("hunt: winner parse: {e}"))?;
    if spec.reclaim.is_some() {
        return Ok(None);
    }
    let mut storm = false;
    let mut disabled: BTreeSet<&str> = BTreeSet::new();
    let mut critical_faulted = false;
    for f in &spec.faults {
        for e in &f.events {
            match e {
                FaultEvent::RefreshStorm { .. } => storm = true,
                FaultEvent::Regulator {
                    master,
                    enabled: false,
                } => {
                    disabled.insert(master);
                }
                FaultEvent::Rogue { master }
                | FaultEvent::Bursty { master, .. }
                | FaultEvent::Halt { master }
                    if master == critical =>
                {
                    critical_faulted = true;
                }
                _ => {}
            }
        }
    }
    if storm {
        return Ok(None);
    }
    for p in &spec.phases {
        for a in &p.actions {
            if a.op == PhaseOp::Enable(false) {
                disabled.insert(&a.master);
            }
        }
    }

    let crit = spec
        .masters
        .iter()
        .find(|m| m.name == critical)
        .ok_or_else(|| format!("hunt: winner lost master {critical:?}"))?;
    let (crit_txn, crit_think) = match &crit.workload {
        Workload::Spec(t) => (t.txn_bytes, t.think),
        Workload::Kernel(..) => return Ok(None),
    };

    let mut ports = Vec::new();
    for m in &spec.masters {
        if m.name == critical {
            continue;
        }
        let txn = match &m.workload {
            Workload::Spec(t) => t.txn_bytes,
            // A kernel interferer has no fixed size; charge the largest
            // legal burst.
            Workload::Kernel(..) => MAX_BURST_BEATS as u64 * BEAT_BYTES,
        };
        let outstanding = if m.outstanding > 0 {
            m.outstanding as u64
        } else {
            m.kind.default_outstanding() as u64
        };
        let regulated = matches!(m.role, Role::BestEffort) && !disabled.contains(m.name.as_str());
        if regulated {
            let mut period = m.period as u64;
            let mut budget = m.budget as u64;
            for p in &spec.phases {
                for a in &p.actions {
                    if a.master == m.name {
                        match a.op {
                            PhaseOp::Period(v) => period = period.min(v as u64),
                            PhaseOp::Budget(v) => budget = budget.max(v as u64),
                            PhaseOp::Enable(_) => {}
                        }
                    }
                }
            }
            ports.push(PortModel {
                period_cycles: period.max(1),
                budget_bytes: budget,
                max_outstanding: outstanding,
                txn_bytes: txn,
            });
        } else {
            ports.push(PortModel::unregulated(outstanding, txn));
        }
    }

    let model = SystemModel {
        dram: DramConfig::default(),
        fifo_depth: spec.xbar.port_fifo_depth as u64,
        ports,
        critical_beats: crit_txn.div_ceil(BEAT_BYTES),
    };
    let s = model.bound_summary(crit_think, crit_txn, spec.freq);
    Ok(Some(BoundComparison {
        delay_bound: s.delay_bound,
        // A traffic fault reshaping the critical's own issue rate (e.g.
        // a base-scenario halt) voids the closed-loop throughput floor;
        // the per-transaction delay bound still holds.
        throughput_floor: if critical_faulted {
            None
        } else {
            s.throughput_floor.map(|b| b.bytes_per_s())
        },
        utilization: s.utilization,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "clock_mhz 1000\ncycles 50000\n\n\
        [master cpu]\nkind cpu\nrole critical\npattern random\ntxn 256\nthink 600\noutstanding 1\n\n\
        [master dma0]\nkind accel\nrole best-effort\nperiod 1000\nbudget 2048\n\
        pattern seq\ntxn 512\nbase 0x40000000\n\n\
        expect isolation(cpu)\n";

    fn tiny_opts() -> HuntOptions {
        HuntOptions {
            config: HuntConfig {
                seed: 7,
                evals: 3,
                explore: 2,
                top_k: 1,
                mutants_per_parent: 1,
                bisect: 2,
                objective: fgqos_hunt::Objective::Max,
            },
            warmup: 4_000,
            tail_cycles: 6_000,
            addr: None,
        }
    }

    #[test]
    fn base_info_extracts_critical_and_targets() {
        let spec = ScenarioSpec::parse(BASE).unwrap();
        let b = base_info(BASE, &spec).unwrap();
        assert_eq!(b.critical, "cpu");
        assert_eq!(b.fault_targets, vec!["dma0".to_string()]);
        assert_eq!(
            b.reserved_names,
            vec!["cpu".to_string(), "dma0".to_string()]
        );
        assert_eq!(b.clock_mhz, 1_000);
    }

    #[test]
    fn base_info_rejects_reserved_names_and_criticalless_scenarios() {
        let text = BASE.replace("[master dma0]", "[master hx0]");
        let spec = ScenarioSpec::parse(&text).unwrap();
        assert!(base_info(&text, &spec).unwrap_err().contains("reserved"));

        let text = BASE
            .replace("role critical", "role unmanaged")
            .replace("expect isolation(cpu)\n", "");
        let spec = ScenarioSpec::parse(&text).unwrap();
        assert!(base_info(&text, &spec).unwrap_err().contains("critical"));
    }

    #[test]
    fn base_info_excludes_already_faulted_targets() {
        let text = format!("{BASE}\n[fault f0]\nat 10000\nrogue dma0\n");
        let spec = ScenarioSpec::parse(&text).unwrap();
        let b = base_info(&text, &spec).unwrap();
        assert!(b.fault_targets.is_empty(), "dma0 already carries a fault");
    }

    #[test]
    fn derived_search_space_validates() {
        let spec = ScenarioSpec::parse(BASE).unwrap();
        search_space(&spec).validate().unwrap();
    }

    #[test]
    fn local_evaluator_measures_the_critical_row() {
        let opts = tiny_opts();
        let ms = eval_local(
            BASE,
            &[(1_000, 1_024), (500, 65_536)],
            &opts,
            "cpu",
            1_000_000_000,
        )
        .unwrap();
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert!(m.boundary >= opts.warmup);
            assert!(m.end > m.boundary);
            assert!(m.bytes > 0, "critical master made progress");
        }
        assert_eq!(ms[0].boundary, ms[1].boundary, "points share one boundary");
    }

    #[test]
    fn bound_folds_phases_conservatively() {
        let text =
            format!("{BASE}\n[phase loosen]\nat 20000\nbudget dma0 65536\nperiod dma0 500\n");
        let loose = bound_for(&text, "cpu").unwrap().expect("modeled");
        let tight = bound_for(BASE, "cpu").unwrap().expect("modeled");
        assert!(
            loose.utilization > tight.utilization,
            "folding in the looser phase knobs must raise modeled demand"
        );
        match (tight.delay_bound, loose.delay_bound) {
            (Some(t), Some(l)) => assert!(l >= t, "looser knobs cannot shrink the bound"),
            (None, _) => panic!("base configuration must be bounded"),
            _ => {} // loose may saturate: also a weaker guarantee
        }
    }

    #[test]
    fn bound_is_unmodeled_for_storms_and_kernels() {
        let storm = format!("{BASE}\n[fault storm]\nat 10000\nrefresh_storm 200 5000\n");
        assert!(bound_for(&storm, "cpu").unwrap().is_none());
    }

    #[test]
    fn hunt_is_reproducible_and_replay_verified() {
        let opts = tiny_opts();
        let a = run_hunt(BASE, &opts).unwrap();
        let b = run_hunt(BASE, &opts).unwrap();
        assert_eq!(
            a.report.to_pretty(),
            b.report.to_pretty(),
            "equal seeds must emit byte-identical reports"
        );
        assert!(a.replay_verified, "winner must replay bit-identically");
        assert_eq!(a.winner_fgq, b.winner_fgq);
        assert!(a.outcome.evals_used > 0);

        let c = run_hunt(
            BASE,
            &HuntOptions {
                config: HuntConfig {
                    seed: 8,
                    ..opts.config
                },
                ..opts
            },
        )
        .unwrap();
        assert_ne!(
            a.report.to_pretty(),
            c.report.to_pretty(),
            "a different seed must explore differently"
        );
    }
}
