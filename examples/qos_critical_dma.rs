//! Guarantee a critical DMA stream's bandwidth against six interferers.
//!
//! A camera-style critical DMA must sustain ~1 GiB/s (think of a sensor
//! front-end that drops frames below that). Six best-effort accelerators
//! stream as fast as they can. Unregulated, the critical stream starves;
//! with a tightly-coupled regulator on every best-effort port it holds
//! its rate.
//!
//! Run with: `cargo run --release --example qos_critical_dma`

use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::workloads::prelude::*;

const HORIZON: u64 = 5_000_000;
const TARGET_GIBS: f64 = 1.0;

fn build_and_run(regulated: bool) -> (Bandwidth, Bandwidth) {
    // Critical DMA: steady 1 KiB bursts paced to ~1.25 GiB/s demand.
    let critical = TrafficSpec::stream(0, 8 << 20, 1024, Dir::Read);
    let critical = TrafficSpec {
        gap: 760,
        ..critical
    };

    let mut builder = SocBuilder::new(SocConfig::default()).master_full(
        "camera",
        SpecSource::new(critical, 42),
        MasterKind::Accelerator,
        OpenGate,
        2,
    );
    for i in 0..6u64 {
        let spec = TrafficSpec::stream((1 + i) << 28, 16 << 20, 4096, Dir::Write);
        let source = SpecSource::new(spec, 100 + i);
        builder = if regulated {
            // ~1 GB/s each: one 4 KiB burst per 4 us window (the budget
            // must hold at least one full burst under the conservative
            // overshoot policy).
            let (reg, _driver) = TcRegulator::create(RegulatorConfig {
                period_cycles: 4_000,
                budget_bytes: 4_096,
                enabled: true,
                ..RegulatorConfig::default()
            });
            builder.gated_master(format!("accel{i}"), source, MasterKind::Accelerator, reg)
        } else {
            builder.master(format!("accel{i}"), source, MasterKind::Accelerator)
        };
    }
    let mut soc = builder.build();
    soc.run(HORIZON);
    let camera = soc.master_id("camera").expect("camera");
    let accel0 = soc.master_id("accel0").expect("accel0");
    (soc.master_bandwidth(camera), soc.master_bandwidth(accel0))
}

fn main() {
    let (cam_unreg, accel_unreg) = build_and_run(false);
    let (cam_reg, accel_reg) = build_and_run(true);

    println!("camera target: {TARGET_GIBS:.2} GiB/s\n");
    println!("unregulated: camera {cam_unreg}   accel0 {accel_unreg}");
    println!("regulated:   camera {cam_reg}   accel0 {accel_reg}");

    assert!(
        cam_reg.gib_per_s() >= TARGET_GIBS,
        "regulated camera bandwidth {cam_reg} misses the target"
    );
    assert!(
        cam_unreg.gib_per_s() < TARGET_GIBS,
        "the unregulated camera should miss its target, got {cam_unreg}"
    );
    println!("\ncamera meets its {TARGET_GIBS:.2} GiB/s target only under regulation");
}
