//! Quickstart: build a two-master SoC, regulate the greedy one, and read
//! the tightly-coupled telemetry.
//!
//! Run with: `cargo run --release --example quickstart`

use fgqos::core::prelude::*;
use fgqos::prelude::*;

fn main() {
    // A regulator instance for the DMA port: replenish a 2 KiB budget
    // every microsecond (1000 cycles at the default 1 GHz clock), i.e.
    // ~2 GB/s. `create` returns the hardware gate and the software
    // driver handle sharing its register file.
    let (regulator, driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_000,
        budget_bytes: 2_048,
        enabled: true,
        ..RegulatorConfig::default()
    });

    // Wire the SoC: a latency-sensitive CPU-like reader plus a greedy
    // DMA engine behind the regulator.
    let mut soc = SocBuilder::new(SocConfig::default())
        .master_full(
            "cpu",
            SequentialSource::reads(0x0000_0000, 256, 5_000)
                .with_think_time(200)
                .with_footprint(1 << 20),
            MasterKind::Cpu,
            OpenGate,
            1,
        )
        .gated_master(
            "dma",
            SequentialSource::writes(0x4000_0000, 1024, u64::MAX),
            MasterKind::Accelerator,
            regulator,
        )
        .build();

    let cpu = soc.master_id("cpu").expect("cpu registered");
    let done = soc.run_until_done(cpu, 100_000_000).expect("cpu finishes");
    println!("cpu finished its 5000 reads at {done}");

    let cpu_stats = soc.master_stats(cpu);
    println!(
        "cpu:  p50 latency {} cycles, p99 {} cycles, bandwidth {}",
        cpu_stats.latency.percentile(0.50),
        cpu_stats.latency.percentile(0.99),
        soc.master_bandwidth(cpu),
    );

    let dma = soc.master_id("dma").expect("dma registered");
    println!("dma:  bandwidth {}", soc.master_bandwidth(dma));

    // The driver reads the same registers the Linux driver would.
    let t = driver.telemetry();
    println!(
        "regulator telemetry: {} windows, {} total bytes, {} stall cycles, max overshoot {} B",
        t.windows, t.total_bytes, t.stall_cycles, t.max_overshoot,
    );
    assert_eq!(
        t.max_overshoot, 0,
        "conservative regulation never exceeds the budget"
    );
}
