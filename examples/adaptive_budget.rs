//! Feedback re-budgeting across workload phases.
//!
//! A latency-sensitive task shares the SoC with three accelerators whose
//! activity comes and goes. The AIMD [`FeedbackController`] watches the
//! task's achieved throughput through the tightly-coupled monitor on its
//! port and squeezes the accelerators' budgets only while the task is
//! actually endangered — no manual tuning per phase.
//!
//! Run with: `cargo run --release --example adaptive_budget`

use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::workloads::prelude::*;

fn main() {
    // Critical task: 256 B random reads, ~500 cycles of compute each.
    let critical = TrafficSpec::latency_sensitive(0, 4 << 20, 256, 500);
    let (crit_monitor, crit_driver) = TcRegulator::monitor_only(1_000);

    // Three accelerators, active in alternating 500 us phases.
    let mut regulators = Vec::new();
    let mut drivers = Vec::new();
    for _ in 0..3 {
        let (reg, driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 8_192,
            enabled: true,
            ..RegulatorConfig::default()
        });
        regulators.push(reg);
        drivers.push(driver);
    }

    // Hold the critical task at >= 4000 bytes per 10 us control period
    // (~90 % of its isolation rate).
    let controller = FeedbackController::new(
        crit_driver.clone(),
        4_000,
        drivers.clone(),
        8_192, // initial best-effort budget per 1 us window
        256,   // floor
        8_192, // ceiling
        512,   // additive increase step
        10_000,
    );

    let mut builder = SocBuilder::new(SocConfig::default())
        .master_full(
            "task",
            SpecSource::new(critical, 1),
            MasterKind::Cpu,
            crit_monitor,
            1,
        )
        .controller(controller);
    for (i, reg) in regulators.into_iter().enumerate() {
        let spec = TrafficSpec::stream((1 + i as u64) << 28, 16 << 20, 512, Dir::Write).with_burst(
            BurstShape {
                on_cycles: 500_000,
                off_cycles: 500_000,
            },
        );
        builder = builder.gated_master(
            format!("accel{i}"),
            SpecSource::new(spec, 100 + i as u64),
            MasterKind::Accelerator,
            reg,
        );
    }

    let mut soc = builder.build();
    soc.run(4_000_000); // 4 ms: four interference phases

    let task = soc.master_id("task").expect("task");
    let stats = soc.master_stats(task);
    println!(
        "task: {} reads, p50 {} / p99 {} cycles, bandwidth {}",
        stats.completed_txns,
        stats.latency.percentile(0.50),
        stats.latency.percentile(0.99),
        soc.master_bandwidth(task),
    );
    for (i, d) in drivers.iter().enumerate() {
        let t = d.telemetry();
        println!(
            "accel{i}: budget now {} B/window, {} total bytes, {} stall cycles",
            d.budget_bytes(),
            t.total_bytes,
            t.stall_cycles,
        );
    }

    // The controller must have intervened (budgets moved off the ceiling
    // at some point: stalls prove enforcement happened).
    assert!(
        drivers.iter().any(|d| d.telemetry().stall_cycles > 0),
        "feedback should have throttled the accelerators during busy phases"
    );
    // And the task must have kept most of its isolation-rate progress:
    // ~1724 reads/ms in isolation; require > 80 % over 4 ms.
    assert!(
        stats.completed_txns > 5_500,
        "task progress too low: {} reads",
        stats.completed_txns
    );
    println!("\nfeedback held the task's throughput across interference phases");
}
