//! Serve round-trip: start an in-process `fgqos-serve` instance, submit
//! a scenario twice over loopback TCP, and show the cache + admission
//! telemetry the server keeps about its clients.
//!
//! Run with: `cargo run --release --example serve_roundtrip`

use fgqos::runner::serve_executor;
use fgqos::serve::client::{Client, SubmitOptions};
use fgqos::serve::protocol::MetricsFormat;
use fgqos::serve::server::{start, ServeConfig};
use std::time::Duration;

const SCENARIO: &str = "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern random
footprint 4M
txn 256
think 1000
total 20000

[master dma]
kind accel
role best-effort
period 1000
budget 2K
pattern seq
base 0x40000000
footprint 16M
txn 1024
";

fn main() {
    // Port 0: the OS picks a free port; handle.addr() has the real one.
    let server = start(
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
        serve_executor(),
    )
    .expect("bind loopback");
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr()).expect("connect");
    let opts = SubmitOptions {
        client: Some("example".into()),
        ..SubmitOptions::default()
    };

    // First submission simulates; the report is the same document
    // `fgqos <file> --json` prints.
    let (ack, report) = client
        .submit_and_wait(SCENARIO, 500_000, &opts, Duration::from_secs(60))
        .expect("first round-trip");
    println!(
        "job {}: {}",
        ack.job,
        if ack.cached { "cache hit" } else { "executed" }
    );
    let rendered = fgqos::bench::report::Report::from_json(&report)
        .expect("valid report")
        .render_text();
    println!("{rendered}");

    // Second submission of the identical spec: answered from the
    // content-addressed cache, byte-identical, no simulation.
    let (ack2, report2) = client
        .submit_and_wait(SCENARIO, 500_000, &opts, Duration::from_secs(60))
        .expect("second round-trip");
    println!(
        "job {}: {} (byte-identical: {})",
        ack2.job,
        if ack2.cached { "cache hit" } else { "executed" },
        report.to_compact() == report2.to_compact()
    );

    // The server's own telemetry: queue, cache, workers, and the
    // per-client admission counters from its leaky-bucket regulators.
    let metrics = client.metrics(MetricsFormat::Csv).expect("metrics");
    println!("\nserver metrics:");
    print!("{}", metrics.get("csv").unwrap().as_str().unwrap());

    // Graceful drain: queued work finishes before the reply arrives.
    let summary = client.shutdown().expect("shutdown");
    println!(
        "\nshutdown: {} submitted, {} executed",
        summary.get("submitted").unwrap().as_u64().unwrap(),
        summary.get("executed").unwrap().as_u64().unwrap()
    );
    server.join();
}
