//! A cached CPU task with an analytical QoS guarantee.
//!
//! Combines three pieces of the stack: the [`CachedSource`] CPU model
//! (only misses reach DRAM), the [`QosFabric`] integration layer (one
//! declaration per port), and the [`SystemModel`] worst-case analysis.
//! The example computes the analytical per-miss delay bound for the
//! regulated configuration, runs the system, and checks the observation
//! against the bound — the workflow a real-time integrator follows.
//!
//! Run with: `cargo run --release --example cached_cpu_bound`

use fgqos::core::analysis::{PortModel, SystemModel};
use fgqos::core::fabric::QosFabricBuilder;
use fgqos::prelude::*;
use fgqos::sim::axi::BEAT_BYTES;
use fgqos::workloads::prelude::*;

const INTERFERERS: usize = 4;
const PERIOD: u32 = 1_000;
const BUDGET: u32 = 1_024;
const INTF_TXN: u64 = 512;

fn main() {
    // CPU-side access stream: word accesses over a 48 KiB working set,
    // 1.5x the 32 KiB L1 -> a mixed profile (~2/3 hits in steady state).
    let accesses = TrafficSpec {
        pattern: AddressPattern::Random,
        ..TrafficSpec::stream(0, 48 << 10, 64, Dir::Read)
    }
    .with_write_ratio(0.3)
    .with_total(60_000);
    let cpu_core = CachedSource::new(SpecSource::new(accesses, 5), CacheConfig::default());

    // Declare the QoS fabric: monitored CPU, regulated accelerators.
    let mut fabric = QosFabricBuilder::new();
    let cpu_gate = fabric.critical_port("cpu", PERIOD);
    let mut builder = SocBuilder::new(SocConfig::default()).master_full(
        "cpu",
        cpu_core,
        MasterKind::Cpu,
        cpu_gate,
        2, // fill + one background write-back
    );
    for i in 0..INTERFERERS {
        let gate = fabric.best_effort_port(format!("dma{i}"), PERIOD, BUDGET);
        let spec = TrafficSpec::stream((1 + i as u64) << 28, 16 << 20, INTF_TXN, Dir::Write);
        builder = builder.gated_master(
            format!("dma{i}"),
            SpecSource::new(spec, 100 + i as u64),
            MasterKind::Accelerator,
            gate,
        );
    }
    let fabric = fabric.finish();
    let mut soc = builder.build();

    // Analytical worst case for one cache-line fill under this partition.
    let model = SystemModel {
        dram: DramConfig::default(),
        fifo_depth: XbarConfig::default().port_fifo_depth as u64,
        ports: vec![
            PortModel {
                period_cycles: PERIOD as u64,
                budget_bytes: BUDGET as u64,
                max_outstanding: MasterKind::Accelerator.default_outstanding() as u64,
                txn_bytes: INTF_TXN,
            };
            INTERFERERS
        ],
        critical_beats: CacheConfig::default().line_bytes / BEAT_BYTES,
    };
    let bound = model.critical_delay_bound().expect("bound converges");
    println!("analytical per-miss delay bound: {bound} cycles");
    println!(
        "worst-case regulated utilization: {:.2}",
        model.regulated_utilization()
    );

    let cpu = soc.master_id("cpu").expect("cpu");
    let done = soc
        .run_until_done(cpu, 2_000_000_000)
        .expect("cpu finishes");
    let st = soc.master_stats(cpu);
    println!("\ncpu finished at {done}");
    println!(
        "dram transactions from the cpu: {} (misses + write-backs for 60000 accesses)",
        st.completed_txns
    );
    println!(
        "observed fill latency: p50 {} / p99 {} / max {} cycles",
        st.latency.percentile(0.50),
        st.latency.percentile(0.99),
        st.latency.max(),
    );
    println!("\nqos fabric:\n{}", fabric.report());

    assert!(
        st.latency.max() <= bound,
        "observed max {} exceeded the analytical bound {bound}",
        st.latency.max()
    );
    // The cache must have filtered a substantial share of the accesses
    // (~2/3 hit rate; DRAM sees misses plus dirty write-backs).
    assert!(
        st.completed_txns < 60_000 * 6 / 10,
        "cache filtered too little: {} DRAM transactions",
        st.completed_txns
    );
    println!("every observed miss latency stayed within the analytical bound");
}
