//! Coarse software regulation vs. fine tightly-coupled regulation, side
//! by side at the *same configured average bandwidth*.
//!
//! Both schemes cap one greedy accelerator to ~2 GiB/s. MemGuard
//! replenishes at the 1 ms OS tick and enforces through an interrupt, so
//! the accelerator front-loads megabyte bursts; the tightly-coupled
//! regulator spreads the same bandwidth over 1 µs windows. The critical
//! task's tail latency tells the difference.
//!
//! Run with: `cargo run --release --example memguard_vs_tc`

use fgqos::baselines::prelude::*;
use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::workloads::prelude::*;

const HORIZON: u64 = 10_000_000;

struct Outcome {
    p50: u64,
    p99: u64,
    max: u64,
    accel: Bandwidth,
}

fn run(gate_is_tc: bool) -> Outcome {
    let critical = TrafficSpec::latency_sensitive(0, 4 << 20, 256, 500);
    let accel_spec = TrafficSpec::stream(1 << 28, 16 << 20, 1024, Dir::Write);

    let builder = SocBuilder::new(SocConfig::default()).master_full(
        "task",
        SpecSource::new(critical, 1),
        MasterKind::Cpu,
        OpenGate,
        1,
    );
    let builder = if gate_is_tc {
        let (reg, _driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 2_048, // 2 KiB per us  => ~2 GB/s
            enabled: true,
            ..RegulatorConfig::default()
        });
        builder.gated_master(
            "accel",
            SpecSource::new(accel_spec, 9),
            MasterKind::Accelerator,
            reg,
        )
    } else {
        builder.gated_master(
            "accel",
            SpecSource::new(accel_spec, 9),
            MasterKind::Accelerator,
            MemGuardGate::new(MemGuardConfig {
                tick_cycles: 1_000_000,
                budget_bytes: 2_048_000, // same 2 GB/s average
                irq_latency_cycles: 2_000,
            }),
        )
    };
    let mut soc = builder.build();
    soc.run(HORIZON);
    let task = soc.master_id("task").expect("task");
    let accel = soc.master_id("accel").expect("accel");
    let st = soc.master_stats(task);
    Outcome {
        p50: st.latency.percentile(0.50),
        p99: st.latency.percentile(0.99),
        max: st.latency.max(),
        accel: soc.master_bandwidth(accel),
    }
}

fn main() {
    let mg = run(false);
    let tc = run(true);

    println!("scheme        p50    p99    max   accel bandwidth");
    println!(
        "memguard    {:>5}  {:>5}  {:>5}   {}",
        mg.p50, mg.p99, mg.max, mg.accel
    );
    println!(
        "tc-regulator{:>5}  {:>5}  {:>5}   {}",
        tc.p50, tc.p99, tc.max, tc.accel
    );

    // Same average accelerator bandwidth (within 25 %)...
    let ratio = mg.accel.bytes_per_s() / tc.accel.bytes_per_s();
    assert!(
        (0.75..=1.35).contains(&ratio),
        "average bandwidths diverged: ratio {ratio:.2}"
    );
    // ...but the coarse scheme has a much worse critical tail.
    assert!(
        mg.p99 > tc.p99,
        "MemGuard p99 ({}) should exceed tightly-coupled p99 ({})",
        mg.p99,
        tc.p99
    );
    println!(
        "\nat equal average accelerator bandwidth, the tightly-coupled window \
         cuts the critical p99 latency by {:.1}x",
        mg.p99 as f64 / tc.p99 as f64
    );
}
