//! Capture the quickstart scenario with full observability and export
//! every view: a Perfetto-loadable Chrome trace, the per-window CSV
//! series and a metrics snapshot.
//!
//! Run with: `cargo run --release --example trace_capture`
//!
//! Then open <https://ui.perfetto.dev> and drag `trace.json` in (or load
//! it in `chrome://tracing`): each master is a named thread, completed
//! transactions are duration slices, gate accept/deny decisions are
//! instant events, and `window_bytes/<master>` counter tracks plot the
//! per-window throughput. The full walkthrough is in
//! `docs/observability.md`.

use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::sim::gate::OpenGate;
use fgqos::sim::trace::{Trace, TracingGate};

fn main() {
    // The quickstart pair: a latency-sensitive CPU reader and a greedy
    // DMA writer behind a 2 KiB / 1 µs tightly-coupled regulator — but
    // with every gate wrapped in a TracingGate and per-window latency
    // recording on.
    let (regulator, driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_000,
        budget_bytes: 2_048,
        enabled: true,
        ..RegulatorConfig::default()
    });

    let trace = Trace::new();
    let mut soc = SocBuilder::new(SocConfig::default())
        .record_windows_with_latency(10_000)
        .master_full(
            "cpu",
            SequentialSource::reads(0x0000_0000, 256, 5_000)
                .with_think_time(200)
                .with_footprint(1 << 20),
            MasterKind::Cpu,
            TracingGate::new(OpenGate, trace.clone()),
            1,
        )
        .gated_master(
            "dma",
            SequentialSource::writes(0x4000_0000, 1024, u64::MAX),
            MasterKind::Accelerator,
            TracingGate::new(regulator, trace.clone()),
        )
        .build();

    let cpu = soc.master_id("cpu").expect("cpu registered");
    let done = soc.run_until_done(cpu, 100_000_000).expect("cpu finishes");
    println!("cpu finished its 5000 reads at {done}");
    println!(
        "trace: {} events captured, {} dropped past the {}-event cap",
        trace.len(),
        trace.dropped(),
        trace.max_events(),
    );

    // Export all three views next to the working directory.
    std::fs::write("trace.json", soc.chrome_trace(&trace)).expect("write trace.json");
    std::fs::write("windows.csv", soc.window_series_csv()).expect("write windows.csv");
    let metrics = soc.collect_metrics();
    std::fs::write(
        "metrics.json",
        format!("{}\n", metrics.to_json().to_pretty()),
    )
    .expect("write metrics.json");
    println!(
        "wrote trace.json ({} events), windows.csv, metrics.json",
        trace.len()
    );
    println!("open https://ui.perfetto.dev and drag trace.json in");

    // The register-file telemetry is also in the snapshot, under the
    // gate's metric prefix.
    let t = driver.telemetry();
    println!(
        "regulator telemetry: {} windows, {} total bytes, {} stall cycles, max overshoot {} B",
        t.windows, t.total_bytes, t.stall_cycles, t.max_overshoot,
    );
}
