//! Fleet smoke: the real `fgqos` binary running a coordinator plus two
//! spawned worker processes, with a `kill -9` landing mid-batch.
//!
//! The test is `#[ignore]`d from the default suite because it spawns
//! and SIGKILLs OS processes and its timing depends on wall-clock; the
//! CI `serve-fleet-smoke` job runs it explicitly with
//! `cargo test --release --test fleet -- --ignored`.
//!
//! What it proves, end to end:
//!
//! * `fgqos serve --workers 2` brings up a coordinator that spawns and
//!   registers two worker processes;
//! * a `submit_batch` is sharded across both workers;
//! * `kill -9` of one worker while its slice is in flight re-queues the
//!   slice onto the survivor — every job still completes;
//! * the fleet's per-point reports are byte-identical to an in-process
//!   direct run of the same batch;
//! * the coordinator drains and exits cleanly afterwards.

use fgqos::runner::batch_reports;
use fgqos::serve::client::{Client, SubmitOptions};
use fgqos::serve::protocol::{BatchKind, BatchPoint, BatchSpec, MetricsFormat};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SCENARIO: &str = "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern seq
footprint 1M
txn 256
total 2000

[master dma]
kind accel
role best-effort
period 1000
budget 2K
pattern seq
base 0x40000000
footprint 4M
txn 512
";

/// Collects a child stream's lines into a shared buffer from a reader
/// thread (the child outlives several blocking waits below, so the
/// test polls the buffer instead of blocking on the pipe itself).
fn drain_lines(stream: impl std::io::Read + Send + 'static) -> Arc<Mutex<Vec<String>>> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    std::thread::spawn(move || {
        for line in BufReader::new(stream).lines() {
            match line {
                Ok(l) => sink.lock().unwrap().push(l),
                Err(_) => break,
            }
        }
    });
    lines
}

/// Waits until `pred` matches one of the collected lines, returning the
/// matching line.
fn wait_for_line(
    lines: &Arc<Mutex<Vec<String>>>,
    timeout: Duration,
    what: &str,
    pred: impl Fn(&str) -> bool,
) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(l) = lines.lock().unwrap().iter().find(|l| pred(l)) {
            return l.clone();
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; saw: {:?}",
            lines.lock().unwrap()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn metric(client: &mut Client, name: &str) -> f64 {
    let doc = client.metrics(MetricsFormat::Json).expect("metrics");
    doc.get("metrics")
        .and_then(|m| m.get("metrics"))
        .and_then(|m| m.get(name))
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

#[test]
#[ignore = "spawns and SIGKILLs OS processes; run via the CI serve-fleet-smoke job"]
fn killed_worker_slice_requeues_and_results_match_direct_run() {
    let scratch = std::env::temp_dir().join(format!("fgqos-fleet-smoke-{}", std::process::id()));
    let cache_dir = scratch.join("cache");
    let blob_dir = scratch.join("blobs");

    let bin = PathBuf::from(env!("CARGO_BIN_EXE_fgqos"));
    // FGQOS_NAIVE=1 (inherited by the spawned workers) forces per-cycle
    // stepping, slowing simulation enough that the SIGKILL below lands
    // while the victim's slice is in flight. Naive and calendar runs
    // are bit-identical (proptest-proven in tests/fast_forward.rs), so
    // the direct comparison run below can still use the fast core.
    let mut serve = Command::new(&bin)
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .arg("--cache-dir")
        .arg(&cache_dir)
        .arg("--blob-dir")
        .arg(&blob_dir)
        .env("FGQOS_NAIVE", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fgqos serve --workers 2");
    let out = drain_lines(serve.stdout.take().expect("stdout piped"));
    let err = drain_lines(serve.stderr.take().expect("stderr piped"));

    let addr = wait_for_line(&out, Duration::from_secs(60), "listening line", |l| {
        l.starts_with("listening on ")
    })
    .trim_start_matches("listening on ")
    .to_string();
    wait_for_line(&out, Duration::from_secs(60), "fleet ready", |l| {
        l.contains("fleet ready: 2 workers")
    });
    let pids: Vec<u32> = err
        .lock()
        .unwrap()
        .iter()
        .filter_map(|l| l.strip_prefix("spawned worker pid ")?.trim().parse().ok())
        .collect();
    assert_eq!(pids.len(), 2, "two spawned worker pids on stderr");

    // A batch big and slow enough (naive core, 8M-cycle warmup per
    // slice) that both slices are observably in flight before the kill.
    let points: Vec<BatchPoint> = [512u64, 1_024, 2_048, 4_096, 8_192, 16_384]
        .iter()
        .map(|&budget| BatchPoint {
            period: 1_000,
            budget,
        })
        .collect();
    let spec = BatchSpec {
        scenario: SCENARIO.to_string(),
        cycles: 200_000,
        until_done: None,
        warmup: 8_000_000,
        points: points.clone(),
        kind: BatchKind::Sweep,
    };

    let mut client = Client::connect(&addr).expect("connect to coordinator");
    let ack = client
        .submit_batch(&spec, &SubmitOptions::default())
        .expect("submit batch to fleet");
    assert_eq!(ack.jobs.len(), points.len(), "one job per point");

    // Wait until both workers hold an in-flight slice, then SIGKILL one:
    // the kill is then guaranteed to interrupt live work, not idle time.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let w0 = metric(&mut client, "coordinator.worker.0.in_flight");
        let w1 = metric(&mut client, "coordinator.worker.1.in_flight");
        if w0 >= 1.0 && w1 >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slices never reached both workers (in_flight {w0}/{w1})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let victim = pids[0];
    let killed = Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {victim} failed");

    // Every job must still complete — the dead worker's slice re-queues
    // onto the survivor — and every report must be byte-identical to an
    // in-process direct run of the same batch.
    let served: Vec<String> = ack
        .jobs
        .iter()
        .map(|&job| {
            client
                .wait_report(job, Duration::from_secs(300))
                .expect("batched point report survives the kill")
                .to_compact()
        })
        .collect();
    let direct: Vec<String> = batch_reports(&spec)
        .expect("direct batch")
        .iter()
        .map(|r| r.to_json().to_compact())
        .collect();
    assert_eq!(
        served, direct,
        "fleet reports differ from the direct run after a worker kill"
    );

    assert!(
        metric(&mut client, "coordinator.jobs.requeued") >= 1.0,
        "the killed worker's in-flight slice was not re-queued"
    );
    assert_eq!(
        metric(&mut client, "coordinator.workers.live"),
        1.0,
        "the killed worker should be marked dead"
    );

    client.shutdown().expect("drain the coordinator");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match serve.try_wait().expect("poll serve process") {
            Some(status) => {
                assert!(status.success(), "serve exited with {status}");
                break;
            }
            None => {
                assert!(Instant::now() < deadline, "serve did not drain and exit");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    wait_for_line(&out, Duration::from_secs(5), "drain message", |l| {
        l.contains("coordinator drained and stopped")
    });
    std::fs::remove_dir_all(&scratch).ok();
}
