//! Equivalence and liveness properties for the steady-state leap engine.
//!
//! The leap engine (`fgqos::sim::leap`) detects periodic steady state at
//! quiesced boundaries and advances the clock algebraically. Its whole
//! contract is *bit-identity*: a run with leaping enabled must be
//! indistinguishable — to the architectural fingerprint, the statistics
//! (latency histograms included) and the rendered report bytes — from the
//! same run simulated cycle by cycle. Every test here builds the same
//! scenario twice (leap on / leap off via [`Soc::set_leap`]) and requires
//! exact agreement; the deterministic tests additionally require that
//! leaps actually *fired*, so the properties are never vacuous.

use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::sim::axi::{Dir, MasterId};
use fgqos::sim::master::TrafficSource;
use fgqos::sim::snapshot::SocSnapshot;
use fgqos::sim::stats::LatencyStats;
use fgqos::sim::system::Soc;
use fgqos::sim::SnapshotBlob;
use fgqos::workloads::prelude::*;
use proptest::prelude::*;

/// Bound for quiesce searches (same rationale as `tests/snapshot.rs`).
const QUIESCE_BOUND: u64 = 20_000_000;

/// Full histogram snapshot: count, min, max and every non-empty bucket.
type LatKey = (u64, u64, u64, Vec<(u64, u64)>);

fn lat_key(l: &LatencyStats) -> LatKey {
    (l.count(), l.min(), l.max(), l.nonzero_buckets().collect())
}

type MasterKey = (u64, u64, u64, u64, u64, LatKey, LatKey);
type DramKey = (u64, u64, u64, u64, u64, u64, u64, LatKey);

fn stats_fingerprint(soc: &Soc) -> (Vec<MasterKey>, DramKey) {
    let masters = (0..soc.master_count())
        .map(|i| {
            let st = soc.master_stats(MasterId::new(i));
            (
                st.issued_txns,
                st.completed_txns,
                st.bytes_completed,
                st.gate_stall_cycles,
                st.fifo_stall_cycles,
                lat_key(&st.latency),
                lat_key(&st.service_latency),
            )
        })
        .collect();
    let d = soc.dram_stats();
    let dram = (
        d.bytes_completed,
        d.reads,
        d.writes,
        d.row_hits,
        d.row_misses,
        d.bus_busy_cycles,
        d.refreshes,
        lat_key(&d.queue_wait),
    );
    (masters, dram)
}

/// A saturated TC-regulated SoC: unbounded greedy streams, tight byte
/// budgets, DRAM refresh on — the workload class the leap engine exists
/// for. Every component opts into leaping, so a long run must converge
/// to a detected period.
fn build_saturated_soc(masters: u64, period: u32, budget: u32, refresh: bool) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: if refresh {
                DramConfig::default().t_refi
            } else {
                0
            },
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let mut b = SocBuilder::new(cfg);
    for i in 0..masters {
        let (reg, _driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            budget_bytes: budget,
            enabled: true,
            ..RegulatorConfig::default()
        });
        // A small footprint makes the DRAM row pattern itself periodic —
        // a streaming buffer reused in place, the workload class the
        // leap engine targets.
        b = b.gated_master(
            format!("m{i}"),
            SequentialSource::reads(i << 28, 256, u64::MAX).with_footprint(4_096),
            MasterKind::Accelerator,
            reg,
        );
    }
    b.build()
}

/// The headline liveness + identity test: a long saturated regulated
/// run leaps (skipping the overwhelming majority of its cycles) and
/// still lands bit-identical to the cycle-accurate calendar run.
#[test]
fn leap_fires_and_matches_calendar_on_saturated_run() {
    const HORIZON: u64 = 5_000_000;

    // Window period 1950 × the 4-window footprint pattern = 7800 cycles,
    // commensurate with the default refresh interval (t_refi = 7800), so
    // the machine's true steady-state period is one refresh interval.
    let mut leaping = build_saturated_soc(2, 1_950, 1_024, true);
    leaping.set_leap(true);
    leaping.run(HORIZON);
    let t = leaping.leap_telemetry();
    assert!(t.enabled, "nothing in this scenario denies leaping");
    assert!(t.leaps > 0, "no leap fired in {HORIZON} cycles: {t:?}");
    assert!(
        t.cycles_skipped > HORIZON / 2,
        "leaping should skip most of a saturated run: {t:?}"
    );
    assert_eq!(leaping.now().get(), HORIZON, "leap overshot the deadline");

    let mut plain = build_saturated_soc(2, 1_950, 1_024, true);
    plain.set_leap(false);
    plain.run(HORIZON);
    assert_eq!(plain.leap_telemetry().leaps, 0);

    assert_eq!(
        stats_fingerprint(&leaping),
        stats_fingerprint(&plain),
        "leaped run diverged from the plain calendar run"
    );
}

/// Leaping composes with the naive-core equivalence contract: leap-on
/// fast-forward, plain fast-forward and naive stepping all agree.
#[test]
fn leap_matches_naive_stepping() {
    const HORIZON: u64 = 400_000;
    let mut leaping = build_saturated_soc(1, 512, 768, false);
    leaping.set_leap(true);
    leaping.run(HORIZON);
    assert!(
        leaping.leap_telemetry().leaps > 0,
        "saturated single-master run must leap"
    );

    let mut naive = build_saturated_soc(1, 512, 768, false);
    naive.set_naive(true);
    naive.run(HORIZON);

    assert_eq!(stats_fingerprint(&leaping), stats_fingerprint(&naive));
}

/// The deadline landing is exact: leaps land on (never past) the run
/// deadline, and back-to-back `run` calls see the same state as one
/// long run.
#[test]
fn leap_respects_segmented_deadlines() {
    let mut segmented = build_saturated_soc(1, 1_024, 512, false);
    segmented.set_leap(true);
    for _ in 0..10 {
        segmented.run(300_000);
    }
    assert!(segmented.leap_telemetry().leaps > 0);

    let mut whole = build_saturated_soc(1, 1_024, 512, false);
    whole.set_leap(true);
    whole.run(3_000_000);

    assert_eq!(segmented.now(), whole.now());
    assert_eq!(stats_fingerprint(&segmented), stats_fingerprint(&whole));
}

/// Refresh storms are one-shot absolute-time events: the engine must
/// not leap across a storm edge it has not simulated. The run is long
/// enough to leap before, through (denied), and after the storm window.
#[test]
fn leap_lands_before_refresh_storms() {
    const HORIZON: u64 = 3_000_000;
    let build = || {
        let cfg = SocConfig {
            dram: DramConfig {
                storms: vec![RefreshStorm {
                    start: 700_000,
                    end: 760_000,
                    interval: 200,
                }],
                ..DramConfig::default()
            },
            ..SocConfig::default()
        };
        let (reg, _driver) = TcRegulator::create(RegulatorConfig {
            // Commensurate with t_refi (4 windows × 1950 = 7800), so the
            // pre- and post-storm steady states have a short true period.
            period_cycles: 1_950,
            budget_bytes: 1_024,
            enabled: true,
            ..RegulatorConfig::default()
        });
        SocBuilder::new(cfg)
            .gated_master(
                "dma",
                SequentialSource::reads(0, 256, u64::MAX).with_footprint(4_096),
                MasterKind::Accelerator,
                reg,
            )
            .build()
    };

    let mut leaping = build();
    leaping.set_leap(true);
    leaping.run(HORIZON);
    assert!(leaping.leap_telemetry().leaps > 0);

    let mut plain = build();
    plain.set_leap(false);
    plain.run(HORIZON);

    assert!(plain.dram_stats().refreshes > 0, "storm never fired");
    assert_eq!(stats_fingerprint(&leaping), stats_fingerprint(&plain));
}

/// Satellite: snapshot/blob round-trip from a *leaped* boundary. A
/// snapshot taken after the clock leaped must encode, decode, load and
/// fork exactly like one taken from a cycle-accurate run — leaping is
/// an execution strategy, never architectural state.
#[test]
fn snapshot_from_leaped_run_matches_cold_run() {
    const PREFIX: u64 = 2_000_000;
    const EXTRA: u64 = 500_000;
    let build = || build_saturated_soc(2, 1_950, 1_024, true);

    let mut warm = build();
    warm.set_leap(true);
    warm.run(PREFIX);
    assert!(
        warm.leap_telemetry().leaps > 0,
        "prefix must actually leap for this test to mean anything"
    );
    let tq = warm
        .quiesce_point(QUIESCE_BOUND)
        .expect("regulated streams quiesce between windows");
    let snap = warm.snapshot().expect("quiesced soc snapshots");
    assert!(snap.verify());

    // Through the wire format and back into a fresh skeleton.
    let encoded = snap.to_blob("leaped-soc").encode();
    let blob = SnapshotBlob::decode(&encoded).expect("fresh blob decodes");
    assert_eq!(blob.fingerprint, snap.fingerprint());
    let restored =
        SocSnapshot::load_into(build(), &blob).expect("leaped state loads into a cold skeleton");
    assert_eq!(restored.fingerprint(), snap.fingerprint());

    // The restored fork continues with leaping re-enabled and still
    // matches a cold cycle-accurate run to the same horizon.
    let mut fork = restored.fork();
    fork.set_leap(true);
    fork.run(EXTRA);
    assert!(fork.now().get() >= tq.get() + EXTRA);

    let mut cold = build();
    cold.set_leap(false);
    cold.run(PREFIX);
    assert_eq!(
        cold.quiesce_point(QUIESCE_BOUND),
        Some(tq),
        "quiesce boundary must be leap-invariant"
    );
    cold.run(EXTRA);

    assert_eq!(fork.now(), cold.now());
    assert_eq!(
        stats_fingerprint(&fork),
        stats_fingerprint(&cold),
        "fork from a leaped boundary diverged from the cold run"
    );
}

/// Components that cannot prove time-translation safety (here: a
/// request trace) structurally deny leaping — the engine disarms and
/// the run degrades gracefully to the plain calendar.
#[test]
fn unsupported_components_disarm_the_engine() {
    let spec = TrafficSpec {
        gap: 10,
        ..TrafficSpec::stream(0, 1 << 20, 256, Dir::Read)
    }
    .with_total(50);
    let records = TraceSource::from_spec(spec, 5, 50).records().to_vec();
    let mut soc = SocBuilder::new(SocConfig::default())
        .master(
            "trace",
            TraceSource::with_loops(records, 1_000),
            MasterKind::Accelerator,
        )
        .build();
    soc.set_leap(true);
    soc.run(2_000_000);
    let t = soc.leap_telemetry();
    assert!(!t.enabled, "a trace source must deny leap support");
    assert_eq!(t.leaps, 0);
}

/// Window-series recording observes every window individually, so a
/// leaped span would lose samples: recording masters deny leaping.
#[test]
fn window_recording_disarms_the_engine() {
    let (reg, _driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_024,
        budget_bytes: 1_024,
        enabled: true,
        ..RegulatorConfig::default()
    });
    let mut soc = SocBuilder::new(SocConfig::default())
        .gated_master(
            "m0",
            SequentialSource::reads(0, 256, u64::MAX),
            MasterKind::Accelerator,
            reg,
        )
        .record_windows(2_048)
        .build();
    soc.set_leap(true);
    soc.run(2_000_000);
    let t = soc.leap_telemetry();
    assert!(!t.enabled, "window recording must deny leap support");
    assert_eq!(t.leaps, 0);
}

/// One randomly drawn leap-eligible master: TC-regulated spec traffic
/// (plain, gapped or burst-shaped), sized so long horizons reach steady
/// state.
#[derive(Debug, Clone, Copy)]
struct LeapSpec {
    shape: u8,
    seed: u64,
    p1: u64,
    p2: u64,
    period: u32,
    budget: u32,
}

fn leap_specs() -> impl Strategy<Value = Vec<LeapSpec>> {
    prop::collection::vec(
        (
            0u8..3,
            0u64..1_000,
            0u64..10_000,
            0u64..10_000,
            0u32..2_000,
            0u32..4_000,
        )
            .prop_map(|(shape, seed, p1, p2, period, budget)| LeapSpec {
                shape,
                seed,
                p1,
                p2,
                period: 128 + period,
                budget: 256 + budget,
            }),
        1..4,
    )
}

fn build_leap_soc(specs: &[LeapSpec], refresh: bool) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: if refresh {
                DramConfig::default().t_refi
            } else {
                0
            },
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let mut b = SocBuilder::new(cfg);
    for (i, m) in specs.iter().enumerate() {
        let base = (i as u64) << 28;
        let src: Box<dyn TrafficSource> = match m.shape {
            0 => Box::new(SpecSource::new(
                TrafficSpec {
                    gap: m.p1 % 64,
                    ..TrafficSpec::stream(base, 1 << 20, 256, Dir::Read)
                },
                m.seed,
            )),
            1 => Box::new(SpecSource::new(
                TrafficSpec::stream(base, 1 << 20, 128, Dir::Read)
                    .with_write_ratio(0.3)
                    .with_burst(BurstShape {
                        on_cycles: 50 + m.p1 % 200,
                        off_cycles: 1 + m.p2 % 400,
                    }),
                m.seed,
            )),
            _ => {
                let txn = 64 * (1 + m.p1 % 8);
                Box::new(
                    SequentialSource::reads(base, txn, u64::MAX)
                        .with_footprint(txn * (4 + m.p2 % 32)),
                )
            }
        };
        let (reg, _driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: m.period,
            budget_bytes: m.budget,
            enabled: true,
            ..RegulatorConfig::default()
        });
        b = b.gated_master(format!("m{i}"), src, MasterKind::Accelerator, reg);
    }
    b.build()
}

/// Random phased/faulted scenario material layered over the leap SoC:
/// a budget-reprogramming schedule (optionally behind a fuse) and a
/// phased source switching specs mid-run.
fn build_faulted_soc(specs: &[LeapSpec], phase_at: u64, fuse_at: Option<u64>) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let mut b = SocBuilder::new(cfg);
    let mut driver0 = None;
    for (i, m) in specs.iter().enumerate() {
        let base = (i as u64) << 28;
        let src: Box<dyn TrafficSource> = if i == 0 {
            // A phased master: declared stream, then a rogue (ungapped)
            // segment from `phase_at` on.
            Box::new(PhasedSource::new(
                vec![
                    (
                        fgqos::sim::time::Cycle::ZERO,
                        TrafficSpec {
                            gap: 20 + m.p1 % 50,
                            ..TrafficSpec::stream(base, 1 << 20, 256, Dir::Read)
                        },
                    ),
                    (
                        fgqos::sim::time::Cycle::new(phase_at),
                        TrafficSpec::stream(base, 1 << 20, 256, Dir::Read),
                    ),
                ],
                m.seed,
            ))
        } else {
            let txn = 64 * (1 + m.p1 % 8);
            Box::new(
                SequentialSource::reads(base, txn, u64::MAX).with_footprint(txn * (4 + m.p2 % 32)),
            )
        };
        let (reg, driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: m.period,
            budget_bytes: m.budget,
            enabled: true,
            ..RegulatorConfig::default()
        });
        if i == 0 {
            driver0 = Some(driver);
        }
        b = b.gated_master(format!("m{i}"), src, MasterKind::Accelerator, reg);
    }
    // A timed budget ramp against master 0, optionally killed by a fuse
    // before its last op.
    let program = ScenarioProgram::new(vec![
        TimedOp {
            at: phase_at / 2,
            driver: driver0.clone().unwrap(),
            op: ProgramOp::Budget(512),
        },
        TimedOp {
            at: phase_at * 2,
            driver: driver0.unwrap(),
            op: ProgramOp::Budget(8_192),
        },
    ]);
    match fuse_at {
        Some(at) => b.controller(FusedController::new(program, at)).build(),
        None => b.controller(program).build(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random regulated scenarios at a long horizon: leap-on equals
    /// leap-off, bit for bit.
    #[test]
    fn leap_matches_plain_calendar_at_horizon(
        specs in leap_specs(),
        refresh in prop::bool::ANY,
        horizon in 200_000u64..2_000_000,
    ) {
        let mut leaping = build_leap_soc(&specs, refresh);
        leaping.set_leap(true);
        leaping.run(horizon);

        let mut plain = build_leap_soc(&specs, refresh);
        plain.set_leap(false);
        plain.run(horizon);

        prop_assert_eq!(leaping.now(), plain.now());
        prop_assert_eq!(
            stats_fingerprint(&leaping), stats_fingerprint(&plain),
            "leap diverged at horizon {} for {:?}", horizon, specs
        );
    }

    /// Phased sources, timed register programs and controller fuses are
    /// one-shot absolute-time events: leaping must land before each and
    /// stay bit-identical through all of them.
    #[test]
    fn leap_matches_plain_calendar_through_phases_and_faults(
        specs in leap_specs(),
        phase_at in 10_000u64..200_000,
        fuse in (prop::bool::ANY, 5_000u64..300_000)
            .prop_map(|(fused, at)| fused.then_some(at)),
        horizon in 500_000u64..1_500_000,
    ) {
        let mut leaping = build_faulted_soc(&specs, phase_at, fuse);
        leaping.set_leap(true);
        leaping.run(horizon);

        let mut plain = build_faulted_soc(&specs, phase_at, fuse);
        plain.set_leap(false);
        plain.run(horizon);

        prop_assert_eq!(leaping.now(), plain.now());
        prop_assert_eq!(
            stats_fingerprint(&leaping), stats_fingerprint(&plain),
            "leap diverged (phase_at {}, fuse {:?}) for {:?}", phase_at, fuse, specs
        );
    }

    /// Mid-run snapshot forks from leaped runs: fork at a quiesced
    /// boundary of a leaped run, continue both the fork (leaping) and a
    /// cold plain run, require identity. This pins that a leap landing
    /// is a legal snapshot boundary. Budgets are drawn tight relative to
    /// the window so every scenario throttles — and therefore quiesces.
    #[test]
    fn leaped_forks_match_cold_runs(
        specs in prop::collection::vec(
            (0u8..3, 0u64..1_000, 0u64..10_000, 0u64..10_000, 0u32..2_000, 0u32..1_024)
                .prop_map(|(shape, seed, p1, p2, period, budget)| LeapSpec {
                    shape,
                    seed,
                    p1,
                    p2,
                    period: 512 + period,
                    budget: 256 + budget,
                }),
            1..4,
        ),
        prefix in 100_000u64..600_000,
        extra in 50_000u64..400_000,
    ) {
        let mut warm = build_leap_soc(&specs, false);
        warm.set_leap(true);
        warm.run(prefix);
        let tq = warm.quiesce_point(QUIESCE_BOUND);
        prop_assert!(tq.is_some(), "regulated scenario failed to quiesce: {specs:?}");
        let snap = warm.snapshot().expect("quiesced soc snapshots");

        let mut fork = snap.fork();
        fork.set_leap(true);
        fork.run(extra);

        let mut cold = build_leap_soc(&specs, false);
        cold.set_leap(false);
        cold.run(prefix);
        prop_assert_eq!(cold.quiesce_point(QUIESCE_BOUND), tq);
        cold.run(extra);

        prop_assert_eq!(fork.now(), cold.now());
        prop_assert_eq!(
            stats_fingerprint(&fork), stats_fingerprint(&cold),
            "leaped fork diverged for {:?}", specs
        );
    }
}
