//! Equivalence properties for the next-event fast-forward core.
//!
//! Every test builds the *same* SoC twice — one forced into naive
//! cycle-by-cycle stepping (`Soc::set_naive`), one using next-event
//! fast-forward — runs both, and requires bit-identical results:
//! completion cycles, per-master statistics (including full latency
//! histograms and stall accounting) and DRAM statistics. Scenarios mix
//! ungated and gated masters across every gate family, every traffic
//! source family, refresh on/off, and software policy controllers.

use fgqos::baselines::prelude::*;
use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::sim::axi::{Dir, MasterId};
use fgqos::sim::master::TrafficSource;
use fgqos::sim::stats::LatencyStats;
use fgqos::sim::system::Soc;
use fgqos::workloads::prelude::*;
use proptest::prelude::*;

/// One randomly drawn master: a gate family, a source family and two
/// free parameters that shape both.
#[derive(Debug, Clone, Copy)]
struct MasterSpec {
    gate_sel: u8,
    src_sel: u8,
    seed: u64,
    p1: u64,
    p2: u64,
}

fn master_specs() -> impl Strategy<Value = Vec<MasterSpec>> {
    prop::collection::vec(
        (0u8..5, 0u8..5, 0u64..1_000, 0u64..10_000, 0u64..10_000).prop_map(
            |(gate_sel, src_sel, seed, p1, p2)| MasterSpec {
                gate_sel,
                src_sel,
                seed,
                p1,
                p2,
            },
        ),
        1..4,
    )
}

/// 4–8 masters with deliberately tight regulation parameters: small
/// replenish windows (`p1` capped) and low outstanding-transaction caps,
/// so the crossbar and DRAM queue stay contended and the event calendar
/// is exercised on its dense-wake path rather than the idle-skip path.
fn contended_specs() -> impl Strategy<Value = Vec<MasterSpec>> {
    prop::collection::vec(
        (0u8..5, 0u8..5, 0u64..1_000, 0u64..2_000, 0u64..10_000).prop_map(
            |(gate_sel, src_sel, seed, p1, p2)| MasterSpec {
                gate_sel,
                src_sel,
                seed,
                p1,
                p2,
            },
        ),
        4..9,
    )
}

fn make_source(i: usize, m: MasterSpec) -> Box<dyn TrafficSource> {
    let base = (i as u64) << 28;
    match m.src_sel {
        // Greedy sequential stream with a small gap.
        0 => {
            let spec = TrafficSpec {
                gap: m.p1 % 64,
                ..TrafficSpec::stream(base, 1 << 20, 256, Dir::Read)
            }
            .with_total(200);
            Box::new(SpecSource::new(spec, m.seed))
        }
        // On/off shaped stream with a write mix.
        1 => {
            let spec = TrafficSpec::stream(base, 1 << 20, 128, Dir::Read)
                .with_write_ratio(0.3)
                .with_burst(BurstShape {
                    on_cycles: 50 + m.p1 % 200,
                    off_cycles: 1 + m.p2 % 400,
                })
                .with_total(150);
            Box::new(SpecSource::new(spec, m.seed))
        }
        // Closed-loop latency-sensitive random reader.
        2 => {
            let spec =
                TrafficSpec::latency_sensitive(base, 1 << 20, 64, 10 + m.p1 % 300).with_total(120);
            Box::new(SpecSource::new(spec, m.seed))
        }
        // Captured trace replayed twice.
        3 => {
            let spec = TrafficSpec {
                gap: m.p1 % 100,
                ..TrafficSpec::stream(base, 1 << 20, 256, Dir::Read)
            }
            .with_total(60);
            let records = TraceSource::from_spec(spec, m.seed, 60).records().to_vec();
            Box::new(TraceSource::with_loops(records, 2))
        }
        // One iteration of a benchmark kernel's phase model.
        _ => {
            let kernel = Kernel::all()[(m.p1 % 6) as usize];
            Box::new(kernel.source(base, 1, m.seed))
        }
    }
}

fn add_master(b: SocBuilder, i: usize, m: MasterSpec) -> SocBuilder {
    let name = format!("m{i}");
    let kind = if m.src_sel == 2 {
        MasterKind::Cpu
    } else {
        MasterKind::Accelerator
    };
    let src = make_source(i, m);
    match m.gate_sel {
        0 => b.master(name, src, kind),
        1 => {
            let (reg, _driver) = TcRegulator::create(RegulatorConfig {
                period_cycles: 128 + (m.p1 % 2_000) as u32,
                budget_bytes: 512 + (m.p2 % 8_000) as u32,
                enabled: true,
                ..RegulatorConfig::default()
            });
            b.gated_master(name, src, kind, reg)
        }
        2 => b.gated_master(
            name,
            src,
            kind,
            MemGuardGate::new(MemGuardConfig {
                tick_cycles: 500 + m.p1 % 4_000,
                budget_bytes: 256 + m.p2 % 4_000,
                irq_latency_cycles: m.p1 % 300,
            }),
        ),
        3 => {
            let slot = 200 + m.p1 % 800;
            let slots = 2 + (m.p2 % 3) as usize;
            let mine = (m.p1 % slots as u64) as usize;
            let guard = m.p2 % (slot / 4);
            b.gated_master(
                name,
                src,
                kind,
                TdmaGate::new(TdmaSchedule::new(slot, slots), vec![mine], guard),
            )
        }
        _ => b.gated_master(
            name,
            src,
            kind,
            OtRegulatorGate::new(OtRegulatorConfig {
                max_outstanding: 1 + (m.p1 % 8) as usize,
                txns_per_period: if m.p2.is_multiple_of(2) {
                    1 + (m.p2 % 6) as u32
                } else {
                    0
                },
                period_cycles: 500 + m.p1 % 2_000,
            }),
        ),
    }
}

fn build_soc(specs: &[MasterSpec], refresh: bool) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: if refresh {
                DramConfig::default().t_refi
            } else {
                0
            },
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let mut b = SocBuilder::new(cfg);
    for (i, &m) in specs.iter().enumerate() {
        b = add_master(b, i, m);
    }
    b.build()
}

/// Full histogram snapshot: count, min, max and every non-empty bucket.
type LatKey = (u64, u64, u64, Vec<(u64, u64)>);

fn lat_key(l: &LatencyStats) -> LatKey {
    (l.count(), l.min(), l.max(), l.nonzero_buckets().collect())
}

type MasterKey = (u64, u64, u64, u64, u64, LatKey, LatKey);
type DramKey = (u64, u64, u64, u64, u64, u64, u64, LatKey);

fn fingerprint(soc: &Soc) -> (Vec<MasterKey>, DramKey) {
    let masters = (0..soc.master_count())
        .map(|i| {
            let st = soc.master_stats(MasterId::new(i));
            (
                st.issued_txns,
                st.completed_txns,
                st.bytes_completed,
                st.gate_stall_cycles,
                st.fifo_stall_cycles,
                lat_key(&st.latency),
                lat_key(&st.service_latency),
            )
        })
        .collect();
    let d = soc.dram_stats();
    let dram = (
        d.bytes_completed,
        d.reads,
        d.writes,
        d.row_hits,
        d.row_misses,
        d.bus_busy_cycles,
        d.refreshes,
        lat_key(&d.queue_wait),
    );
    (masters, dram)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Mixed gated/ungated SoCs drain to the same completion cycle with
    /// the same statistics under fast-forward and naive stepping.
    #[test]
    fn fast_forward_matches_naive_to_completion(
        specs in master_specs(),
        refresh in prop::bool::ANY,
    ) {
        let mut naive = build_soc(&specs, refresh);
        naive.set_naive(true);
        let mut fast = build_soc(&specs, refresh);
        fast.set_naive(false);

        let done_naive = naive.run_until_all_done(5_000_000);
        let done_fast = fast.run_until_all_done(5_000_000);
        prop_assert_eq!(done_naive, done_fast, "completion cycles diverge for {:?}", specs);
        prop_assert!(done_naive.is_some(), "scenario deadlocked: {:?}", specs);
        prop_assert_eq!(fingerprint(&naive), fingerprint(&fast), "stats diverge for {:?}", specs);
    }

    /// A fixed simulation horizon lands on the identical mid-flight
    /// state: fast-forward must stop at the deadline, not overshoot it.
    #[test]
    fn fast_forward_matches_naive_at_fixed_horizon(
        specs in master_specs(),
        refresh in prop::bool::ANY,
        horizon in 10_000u64..200_000,
    ) {
        let mut naive = build_soc(&specs, refresh);
        naive.set_naive(true);
        let mut fast = build_soc(&specs, refresh);

        naive.run(horizon);
        fast.run(horizon);
        prop_assert_eq!(naive.now(), fast.now());
        prop_assert_eq!(
            fingerprint(&naive), fingerprint(&fast),
            "stats diverge at horizon {} for {:?}", horizon, specs
        );
    }

    /// Contended 4–8-master SoCs — every port regulated or backlogged,
    /// small replenish windows, low OT caps — drain identically. This is
    /// the regime where the calendar executes nearly every cycle and
    /// cross-component wakes (pops, completions, gate windows) interleave
    /// densely.
    #[test]
    fn contended_many_master_matches_naive(
        specs in contended_specs(),
        refresh in prop::bool::ANY,
    ) {
        let mut naive = build_soc(&specs, refresh);
        naive.set_naive(true);
        let mut fast = build_soc(&specs, refresh);

        let done_naive = naive.run_until_all_done(5_000_000);
        let done_fast = fast.run_until_all_done(5_000_000);
        prop_assert_eq!(done_naive, done_fast, "completion cycles diverge for {:?}", specs);
        prop_assert!(done_naive.is_some(), "scenario deadlocked: {:?}", specs);
        prop_assert_eq!(fingerprint(&naive), fingerprint(&fast), "stats diverge for {:?}", specs);
    }

    /// Contended many-master SoCs cut at an arbitrary horizon land on the
    /// identical mid-flight state.
    #[test]
    fn contended_many_master_matches_naive_at_horizon(
        specs in contended_specs(),
        refresh in prop::bool::ANY,
        horizon in 10_000u64..100_000,
    ) {
        let mut naive = build_soc(&specs, refresh);
        naive.set_naive(true);
        let mut fast = build_soc(&specs, refresh);

        naive.run(horizon);
        fast.run(horizon);
        prop_assert_eq!(naive.now(), fast.now());
        prop_assert_eq!(
            fingerprint(&naive), fingerprint(&fast),
            "stats diverge at horizon {} for {:?}", horizon, specs
        );
    }

    /// `run_until_done` on a single master agrees cycle-for-cycle.
    #[test]
    fn run_until_done_matches_naive(
        spec in (0u8..5, 0u8..5, 0u64..1_000, 0u64..10_000, 0u64..10_000).prop_map(
            |(gate_sel, src_sel, seed, p1, p2)| MasterSpec { gate_sel, src_sel, seed, p1, p2 },
        ),
    ) {
        let specs = [spec];
        let mut naive = build_soc(&specs, false);
        naive.set_naive(true);
        let mut fast = build_soc(&specs, false);

        let id = MasterId::new(0);
        let a = naive.run_until_done(id, 5_000_000);
        let b = fast.run_until_done(id, 5_000_000);
        prop_assert_eq!(a, b, "run_until_done diverges for {:?}", spec);
        prop_assert_eq!(fingerprint(&naive), fingerprint(&fast));
    }
}

/// Builds the closed-loop stack: a critical reader with a monitor-only
/// regulator, TC-regulated best-effort streams, a software policy
/// reprogramming budgets each control period, and an IRQ dispatcher
/// acknowledging exhaustion interrupts.
fn build_policy_soc(seed: u64, control_period: u64, use_feedback: bool, irq_latency: u64) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let (crit_reg, crit_driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_000,
        budget_bytes: u32::MAX,
        enabled: true,
        ..RegulatorConfig::default()
    });
    let crit_spec = TrafficSpec::latency_sensitive(0, 1 << 20, 64, 50 + seed % 200).with_total(150);
    let mut b = SocBuilder::new(cfg).gated_master(
        "critical",
        SpecSource::new(crit_spec, seed),
        MasterKind::Cpu,
        crit_reg,
    );

    let mut be_drivers = Vec::new();
    for i in 0..2u64 {
        let (reg, driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 2_048,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let spec = TrafficSpec::stream((i + 1) << 28, 1 << 20, 256, Dir::Read).with_total(300);
        b = b.gated_master(
            format!("be{i}"),
            SpecSource::new(spec, seed ^ (i + 1)),
            MasterKind::Accelerator,
            reg,
        );
        be_drivers.push(driver);
    }

    let mut irq = IrqDispatcher::new(irq_latency);
    for d in &be_drivers {
        irq.connect(d.clone(), Box::new(|d, _| d.clear_exhausted()));
    }
    b = b.controller(irq);

    if use_feedback {
        // Floor of one full burst: the conservative overshoot policy
        // denies any burst larger than the whole budget, so a lower floor
        // would starve the BE ports outright.
        b = b.controller(FeedbackController::new(
            crit_driver,
            2_000,
            be_drivers,
            2_048,
            256,
            8_192,
            256,
            control_period,
        ));
    } else {
        b = b.controller(ReclaimPolicy::new(
            crit_driver,
            be_drivers,
            ReclaimConfig {
                critical_reserved: 4_096,
                be_base: 1_024,
                control_period,
                gain: 2,
                busy_threshold: Some(2_048),
            },
        ));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full software stack — policies reprogramming budgets and the
    /// IRQ dispatcher acknowledging exhaustion — is skip-safe.
    #[test]
    fn policy_controllers_match_naive(
        seed in 0u64..1_000,
        control_period in 2_000u64..20_000,
        use_feedback in prop::bool::ANY,
        irq_latency in 0u64..500,
    ) {
        let mut naive = build_policy_soc(seed, control_period, use_feedback, irq_latency);
        naive.set_naive(true);
        let mut fast = build_policy_soc(seed, control_period, use_feedback, irq_latency);

        let a = naive.run_until_all_done(10_000_000);
        let b = fast.run_until_all_done(10_000_000);
        prop_assert_eq!(a, b, "completion cycles diverge (seed {seed})");
        prop_assert!(a.is_some(), "policy scenario deadlocked");
        prop_assert_eq!(fingerprint(&naive), fingerprint(&fast));
    }

    /// Two masters sharing one centralized budget stay equivalent — the
    /// shared gate's wake is the aggregate window boundary.
    #[test]
    fn shared_budget_group_matches_naive(
        seed in 0u64..1_000,
        period in 200u64..4_000,
        budget in 512u64..8_000,
    ) {
        let build = |naive: bool| {
            let cfg = SocConfig {
                dram: DramConfig { t_refi: 0, ..DramConfig::default() },
                ..SocConfig::default()
            };
            let group = SharedRegulator::new(period, budget);
            let mut b = SocBuilder::new(cfg);
            for i in 0..2u64 {
                let spec = TrafficSpec::stream(i << 28, 1 << 20, 256, Dir::Read).with_total(200);
                b = b.gated_master(
                    format!("m{i}"),
                    SpecSource::new(spec, seed ^ i),
                    MasterKind::Accelerator,
                    group.port_gate(),
                );
            }
            let mut soc = b.build();
            soc.set_naive(naive);
            soc
        };
        let mut naive = build(true);
        let mut fast = build(false);
        let a = naive.run_until_all_done(5_000_000);
        let b = fast.run_until_all_done(5_000_000);
        prop_assert_eq!(a, b);
        prop_assert!(a.is_some());
        prop_assert_eq!(fingerprint(&naive), fingerprint(&fast));
    }
}

/// A fully-saturated SoC — every port backlogged behind a tiny-budget
/// regulator, DRAM refresh enabled — must keep making forward progress.
/// This is the worst case for the event calendar: all-bank refreshes
/// stall the bus while gate windows, denied retries and FIFO backpressure
/// all wake simultaneously. A missed wake here shows up as a master whose
/// completion count freezes (or, in the extreme, a calendar with no due
/// event and a silent stop at the deadline).
#[test]
fn saturated_soc_progresses_through_refresh_windows() {
    let build = |naive: bool| {
        let cfg = SocConfig {
            dram: DramConfig::default(), // refresh on (default t_refi)
            ..SocConfig::default()
        };
        let mut b = SocBuilder::new(cfg);
        for i in 0..8u64 {
            // Greedy back-to-back streams, far more demand than budget.
            let src = SequentialSource::reads(i << 28, 256, u64::MAX);
            b = b.gated_master(
                format!("m{i}"),
                src,
                MasterKind::Accelerator,
                MemGuardGate::new(MemGuardConfig {
                    tick_cycles: 700 + 97 * i,
                    budget_bytes: 512,
                    irq_latency_cycles: 13 * i,
                }),
            );
        }
        let mut soc = b.build();
        soc.set_naive(naive);
        soc
    };

    let mut fast = build(false);
    fast.run(300_000);
    assert_eq!(fast.now().get(), 300_000, "fast run stopped early");
    assert!(fast.dram_stats().refreshes > 0, "no refresh window crossed");
    for i in 0..8 {
        let st = fast.master_stats(MasterId::new(i));
        assert!(
            st.completed_txns > 0,
            "master {i} starved: no completions in 300k cycles"
        );
    }

    // And the saturated state is still bit-identical to naive stepping.
    let mut naive = build(true);
    naive.run(300_000);
    assert_eq!(fingerprint(&naive), fingerprint(&fast));
}
