//! Cross-crate integration tests: full SoC runs exercising the
//! simulator, the tightly-coupled regulator, the baselines, the policies
//! and the workloads together.

use fgqos::baselines::prelude::*;
use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::workloads::prelude::*;

fn no_refresh() -> SocConfig {
    SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    }
}

fn critical_spec(txns: u64) -> TrafficSpec {
    TrafficSpec::latency_sensitive(0, 1 << 20, 256, 100).with_total(txns)
}

fn greedy(i: u64) -> SpecSource {
    SpecSource::new(
        TrafficSpec::stream((1 + i) << 28, 8 << 20, 1024, Dir::Write),
        100 + i,
    )
}

/// Runs the critical actor alone; returns its completion cycle count.
fn isolation(txns: u64) -> u64 {
    let mut soc = SocBuilder::new(no_refresh())
        .master_full(
            "crit",
            SpecSource::new(critical_spec(txns), 1),
            MasterKind::Cpu,
            OpenGate,
            1,
        )
        .build();
    soc.run_until_done(MasterId::new(0), u64::MAX / 2)
        .expect("isolation completes")
        .get()
}

#[test]
fn regulation_restores_critical_performance() {
    let txns = 300;
    let iso = isolation(txns);

    let contended = |gated: bool| -> u64 {
        let mut b = SocBuilder::new(no_refresh()).master_full(
            "crit",
            SpecSource::new(critical_spec(txns), 1),
            MasterKind::Cpu,
            OpenGate,
            1,
        );
        for i in 0..4u64 {
            b = if gated {
                let (reg, _) = TcRegulator::create(RegulatorConfig {
                    period_cycles: 1_000,
                    budget_bytes: 1_024,
                    enabled: true,
                    ..RegulatorConfig::default()
                });
                b.gated_master(format!("dma{i}"), greedy(i), MasterKind::Accelerator, reg)
            } else {
                b.master(format!("dma{i}"), greedy(i), MasterKind::Accelerator)
            };
        }
        let mut soc = b.build();
        soc.run_until_done(MasterId::new(0), u64::MAX / 2)
            .expect("completes")
            .get()
    };

    let unreg = contended(false);
    let reg = contended(true);
    let sd_unreg = unreg as f64 / iso as f64;
    let sd_reg = reg as f64 / iso as f64;
    assert!(
        sd_unreg > 3.0,
        "unregulated slowdown too small: {sd_unreg:.2}"
    );
    assert!(
        sd_reg < sd_unreg / 2.0,
        "regulation gained too little: {sd_reg:.2} vs {sd_unreg:.2}"
    );
}

#[test]
fn dram_bytes_match_master_bytes_across_schemes() {
    // Conservation must hold regardless of the gating scheme.
    let mk_soc = |tag: usize| -> Soc {
        let mut b = SocBuilder::new(no_refresh()).master_full(
            "crit",
            SpecSource::new(critical_spec(100), 1),
            MasterKind::Cpu,
            OpenGate,
            1,
        );
        for i in 0..3u64 {
            let spec = TrafficSpec::stream((1 + i) << 28, 1 << 20, 512, Dir::Read).with_total(200);
            let src = SpecSource::new(spec, i);
            b = match tag {
                0 => b.master(format!("m{i}"), src, MasterKind::Accelerator),
                1 => {
                    let (reg, _) = TcRegulator::create(RegulatorConfig {
                        period_cycles: 500,
                        budget_bytes: 512,
                        enabled: true,
                        ..RegulatorConfig::default()
                    });
                    b.gated_master(format!("m{i}"), src, MasterKind::Accelerator, reg)
                }
                _ => {
                    let g = MemGuardGate::new(MemGuardConfig {
                        tick_cycles: 10_000,
                        budget_bytes: 4_096,
                        irq_latency_cycles: 100,
                    });
                    b.gated_master(format!("m{i}"), src, MasterKind::Accelerator, g)
                }
            };
        }
        b.build()
    };
    for tag in 0..3 {
        let mut soc = mk_soc(tag);
        soc.run_until_all_done(50_000_000).expect("drains");
        let master_bytes: u64 = (0..soc.master_count())
            .map(|i| soc.master_stats(MasterId::new(i)).bytes_completed)
            .sum();
        assert_eq!(
            master_bytes,
            soc.dram_stats().bytes_completed,
            "conservation violated under scheme {tag}"
        );
        assert_eq!(master_bytes, 100 * 256 + 3 * 200 * 512);
    }
}

#[test]
fn monitor_telemetry_matches_master_stats() {
    let (monitor, driver) = TcRegulator::monitor_only(1_000);
    let mut soc = SocBuilder::new(no_refresh())
        .gated_master(
            "dma",
            SpecSource::new(
                TrafficSpec::stream(0, 1 << 20, 1024, Dir::Read).with_total(500),
                1,
            ),
            MasterKind::Accelerator,
            monitor,
        )
        .build();
    soc.run_until_all_done(10_000_000).expect("drains");
    let st = soc.master_stats(MasterId::new(0));
    let t = driver.telemetry();
    assert_eq!(t.total_bytes, st.bytes_completed);
    assert_eq!(t.total_txns, st.completed_txns);
    assert_eq!(t.stall_cycles, 0);
    assert!(t.windows > 0);
}

#[test]
fn regulated_bandwidth_tracks_configured_budget() {
    // 2048 B per 1000-cycle window at 1 GHz = ~2 GB/s.
    let (reg, driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_000,
        budget_bytes: 2_048,
        enabled: true,
        ..RegulatorConfig::default()
    });
    let mut soc = SocBuilder::new(no_refresh())
        .gated_master(
            "dma",
            SpecSource::new(TrafficSpec::stream(0, 8 << 20, 512, Dir::Write), 1),
            MasterKind::Accelerator,
            reg,
        )
        .build();
    soc.run(2_000_000);
    let measured = soc.master_bandwidth(MasterId::new(0)).bytes_per_s();
    let configured = driver.configured_bandwidth(soc.freq()).bytes_per_s();
    let err = (measured - configured).abs() / configured;
    assert!(
        err < 0.05,
        "measured {measured:.3e} vs configured {configured:.3e}"
    );
    assert_eq!(driver.telemetry().max_overshoot, 0);
}

#[test]
fn kernel_workloads_run_under_regulation() {
    for kernel in Kernel::all() {
        let (reg, _) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 4_096,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let mut soc = SocBuilder::new(no_refresh())
            .gated_master("kern", kernel.source(0, 1, 3), MasterKind::Accelerator, reg)
            .build();
        let done = soc.run_until_done(MasterId::new(0), 100_000_000);
        assert!(done.is_some(), "{kernel} did not finish under regulation");
        let st = soc.master_stats(MasterId::new(0));
        assert_eq!(
            st.bytes_completed,
            kernel.bytes_per_iteration(),
            "{kernel} bytes"
        );
    }
}

#[test]
fn static_partition_controller_programs_live_soc() {
    let (reg, driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_000,
        budget_bytes: u32::MAX,
        enabled: false,
        ..RegulatorConfig::default()
    });
    let partition = StaticPartition::new(vec![PortBudget {
        driver: driver.clone(),
        period_cycles: 2_000,
        budget_bytes: 1_024,
    }]);
    let mut soc = SocBuilder::new(no_refresh())
        .gated_master(
            "dma",
            SpecSource::new(TrafficSpec::stream(0, 8 << 20, 512, Dir::Write), 1),
            MasterKind::Accelerator,
            reg,
        )
        .controller(partition)
        .build();
    soc.run(1_000_000);
    assert!(driver.enabled());
    assert_eq!(driver.period_cycles(), 2_000);
    // ~0.5 GB/s: 1024 B per 2000 cycles.
    let measured = soc.master_bandwidth(MasterId::new(0)).bytes_per_s();
    assert!(
        (measured - 0.512e9).abs() / 0.512e9 < 0.1,
        "measured {measured:.3e}"
    );
}

#[test]
fn tdma_silences_interferers_outside_their_slot() {
    // Slots much longer than the pipeline drain time (~400 cycles), so
    // completions spilling past the slot boundary stay a small fraction.
    let schedule = TdmaSchedule::new(5_000, 2);
    let gate = TdmaGate::new(schedule, vec![1], 0);
    let mut soc = SocBuilder::new(no_refresh())
        .gated_master(
            "dma",
            SpecSource::new(TrafficSpec::stream(0, 8 << 20, 512, Dir::Write), 1),
            MasterKind::Accelerator,
            gate,
        )
        .record_windows(5_000)
        .build();
    soc.run(500_000);
    let st = soc.master_stats(MasterId::new(0));
    let windows = st.window.as_ref().unwrap().windows();
    // Even-indexed windows (slot 0, not ours): nothing may be *admitted*.
    // Completions can spill slightly past the boundary, so compare
    // alternating activity instead of exact zeroes.
    let even: u64 = windows.iter().step_by(2).sum();
    let odd: u64 = windows.iter().skip(1).step_by(2).sum();
    assert!(
        odd > even * 4,
        "TDMA gating not visible: even {even}, odd {odd}"
    );
}

#[test]
fn fixed_priority_beats_round_robin_for_the_prioritized_port() {
    let latency_for = |arb: Arbitration| -> u64 {
        let cfg = SocConfig {
            xbar: XbarConfig {
                arbitration: arb,
                ..XbarConfig::default()
            },
            dram: DramConfig {
                t_refi: 0,
                ..DramConfig::default()
            },
            ..SocConfig::default()
        };
        let mut b = SocBuilder::new(cfg).master_full(
            "crit",
            SpecSource::new(critical_spec(300), 1),
            MasterKind::Cpu,
            OpenGate,
            1,
        );
        for i in 0..4u64 {
            b = b.master(format!("dma{i}"), greedy(i), MasterKind::Accelerator);
        }
        let mut soc = b.build();
        soc.run_until_done(MasterId::new(0), u64::MAX / 2)
            .expect("completes");
        soc.master_stats(MasterId::new(0)).latency.percentile(0.99)
    };
    let rr = latency_for(Arbitration::RoundRobin);
    let fp = latency_for(Arbitration::FixedPriority);
    assert!(
        fp < rr,
        "priority for port 0 should cut its tail latency: fp {fp} vs rr {rr}"
    );
}

#[test]
fn cached_cpu_reduces_dram_traffic_and_interference_sensitivity() {
    use fgqos::sim::cpu::{CacheConfig, CachedSource};
    // Same access stream, with and without a cache in front.
    let accesses = || {
        SpecSource::new(
            TrafficSpec {
                pattern: AddressPattern::Random,
                ..TrafficSpec::stream(0, 32 << 10, 64, Dir::Read)
            }
            .with_total(5_000),
            3,
        )
    };
    let run = |cached: bool| -> (u64, u64) {
        let mut b = SocBuilder::new(no_refresh());
        b = if cached {
            b.master_full(
                "cpu",
                CachedSource::new(accesses(), CacheConfig::default()),
                MasterKind::Cpu,
                OpenGate,
                2,
            )
        } else {
            b.master_full("cpu", accesses(), MasterKind::Cpu, OpenGate, 2)
        };
        let mut soc = b.build();
        let t = soc
            .run_until_done(MasterId::new(0), u64::MAX / 2)
            .expect("finishes");
        (t.get(), soc.dram_stats().bytes_completed)
    };
    let (_t_raw, bytes_raw) = run(false);
    let (_t_cached, bytes_cached) = run(true);
    // 32 KiB working set fits the 32 KiB cache: almost everything hits.
    assert!(
        bytes_cached < bytes_raw / 4,
        "cache should cut DRAM traffic: {bytes_cached} vs {bytes_raw}"
    );
}

#[test]
fn trace_replay_matches_captured_source_exactly() {
    use fgqos::workloads::trace::TraceSource;
    // Capture a spec source into a trace, replay both through identical
    // SoCs: byte-for-byte identical outcomes.
    let spec = TrafficSpec::stream(0x1000, 1 << 20, 512, Dir::Read).with_total(300);
    let spec = TrafficSpec { gap: 40, ..spec };
    let run_with = |boxed: Box<dyn TrafficSource>| -> (u64, u64) {
        let mut soc = SocBuilder::new(no_refresh())
            .master("m", boxed, MasterKind::Accelerator)
            .build();
        let t = soc.run_until_all_done(100_000_000).expect("drains");
        (t.get(), soc.master_stats(MasterId::new(0)).bytes_completed)
    };
    let direct = run_with(Box::new(SpecSource::new(spec, 11)));
    let replayed = run_with(Box::new(TraceSource::from_spec(spec, 11, 300)));
    assert_eq!(direct, replayed, "trace replay must be behaviour-identical");
}

#[test]
fn weighted_arbitration_shares_bandwidth_proportionally_in_soc() {
    let cfg = SocConfig {
        xbar: XbarConfig {
            arbitration: Arbitration::WeightedRoundRobin,
            weights: vec![3, 1],
            ..XbarConfig::default()
        },
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    // Deep pipelining on both ports so the crossbar (not the
    // outstanding limit) is the binding constraint.
    let mut soc = SocBuilder::new(cfg)
        .master_full(
            "heavy",
            SpecSource::new(TrafficSpec::stream(0, 8 << 20, 512, Dir::Read), 1),
            MasterKind::Accelerator,
            OpenGate,
            32,
        )
        .master_full(
            "light",
            SpecSource::new(TrafficSpec::stream(1 << 28, 8 << 20, 512, Dir::Read), 2),
            MasterKind::Accelerator,
            OpenGate,
            32,
        )
        .build();
    soc.run(1_000_000);
    let heavy = soc.master_stats(MasterId::new(0)).bytes_completed as f64;
    let light = soc.master_stats(MasterId::new(1)).bytes_completed as f64;
    let ratio = heavy / light;
    assert!(
        (2.5..=3.5).contains(&ratio),
        "3:1 weights gave ratio {ratio:.2}"
    );
}

#[test]
fn leaky_bucket_rate_holds_in_full_soc() {
    use fgqos::core::bucket::{BucketConfig, LeakyBucketRegulator};
    let bucket = LeakyBucketRegulator::new(BucketConfig {
        budget_bytes: 2_000, // 2 bytes/cycle => ~2 GB/s at 1 GHz
        period_cycles: 1_000,
        depth_bytes: 2_000,
        ..BucketConfig::default()
    });
    let mut soc = SocBuilder::new(no_refresh())
        .gated_master(
            "dma",
            SpecSource::new(TrafficSpec::stream(0, 8 << 20, 512, Dir::Write), 1),
            MasterKind::Accelerator,
            bucket,
        )
        .build();
    soc.run(2_000_000);
    let rate = soc.master_bandwidth(MasterId::new(0)).bytes_per_s();
    assert!(
        (rate - 2e9).abs() / 2e9 < 0.05,
        "bucket rate off: {rate:.3e}"
    );
}

#[test]
fn ot_regulation_caps_accelerator_pipelining() {
    use fgqos::baselines::qos400::{OtRegulatorConfig, OtRegulatorGate};
    // The OT cap (1) makes a deep-pipelining accelerator behave like a
    // serialized one: its throughput drops to ~1 txn per round-trip.
    let run = |cap: Option<usize>| -> u64 {
        let mut b = SocBuilder::new(no_refresh());
        let src = SpecSource::new(TrafficSpec::stream(0, 8 << 20, 512, Dir::Read), 1);
        b = match cap {
            Some(n) => b.gated_master(
                "dma",
                src,
                MasterKind::Accelerator,
                OtRegulatorGate::new(OtRegulatorConfig {
                    max_outstanding: n,
                    ..OtRegulatorConfig::default()
                }),
            ),
            None => b.master("dma", src, MasterKind::Accelerator),
        };
        let mut soc = b.build();
        soc.run(500_000);
        soc.master_stats(MasterId::new(0)).bytes_completed
    };
    let unlimited = run(None);
    let capped = run(Some(1));
    assert!(
        capped * 3 < unlimited * 2,
        "OT cap should cost the pipelined master at least a third of its \
         throughput: {capped} vs {unlimited}"
    );
}

#[test]
fn irq_driven_backoff_policy() {
    use fgqos::core::irq::IrqDispatcher;
    use std::cell::RefCell;
    use std::rc::Rc;

    // Event-driven software: every exhaustion interrupt halves the
    // port's budget (down to a floor) — no polling loop anywhere.
    let (reg, driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_000,
        budget_bytes: 8_192,
        enabled: true,
        ..RegulatorConfig::default()
    });
    let fired = Rc::new(RefCell::new(0u32));
    let sink = Rc::clone(&fired);
    let mut irq = IrqDispatcher::new(100);
    irq.connect(
        driver.clone(),
        Box::new(move |d, _now| {
            *sink.borrow_mut() += 1;
            let next = (d.budget_bytes() / 2).max(512);
            d.set_budget_bytes(next);
            d.clear_exhausted();
        }),
    );
    let mut soc = SocBuilder::new(no_refresh())
        .gated_master(
            "dma",
            SpecSource::new(TrafficSpec::stream(0, 8 << 20, 512, Dir::Write), 1),
            MasterKind::Accelerator,
            reg,
        )
        .controller(irq)
        .build();
    soc.run(100_000);
    // The greedy master exhausts every window: interrupts fired and the
    // budget walked down to the floor.
    assert!(
        *fired.borrow() >= 4,
        "interrupts fired {} times",
        *fired.borrow()
    );
    assert_eq!(driver.budget_bytes(), 512);
}
