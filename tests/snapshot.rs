//! Fork-vs-cold equivalence for the snapshot subsystem.
//!
//! The contract `fgqos-snap` exists to uphold: a Soc captured at a
//! quiesced boundary and forked must be indistinguishable — to the
//! fingerprint bit and to the report byte — from a cold Soc that ran
//! the identical schedule from cycle zero. Every test here builds the
//! same scenario twice, runs one to a quiesced boundary, snapshots and
//! forks it, and requires the fork's continuation to match the cold
//! run's: architectural fingerprint, full statistics (latency
//! histograms included) and the rendered report document. Scenarios
//! mix every gate family, every source family, refresh on/off, shared
//! budget groups, software policy controllers and both execution cores
//! (event calendar and `FGQOS_NAIVE`-style cycle stepping).

use fgqos::baselines::prelude::*;
use fgqos::bench::report::Report;
use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::sim::axi::{Dir, MasterId};
use fgqos::sim::master::TrafficSource;
use fgqos::sim::snapshot::SocSnapshot;
use fgqos::sim::stats::LatencyStats;
use fgqos::sim::system::Soc;
use fgqos::sim::{ForkCtx, SnapDecodeError, SnapshotBlob};
use fgqos::workloads::prelude::*;
use proptest::prelude::*;

/// Bound for the quiesce search. Every generated workload is bounded
/// (a few hundred transactions per master), so the pipeline always
/// drains well inside this budget; hitting it is a bug, not a flaky
/// scenario.
const QUIESCE_BOUND: u64 = 20_000_000;

/// One randomly drawn master: a gate family, a source family and two
/// free parameters shaping both (same construction as
/// `tests/fast_forward.rs`).
#[derive(Debug, Clone, Copy)]
struct MasterSpec {
    gate_sel: u8,
    src_sel: u8,
    seed: u64,
    p1: u64,
    p2: u64,
}

fn master_specs() -> impl Strategy<Value = Vec<MasterSpec>> {
    prop::collection::vec(
        (0u8..6, 0u8..5, 0u64..1_000, 0u64..10_000, 0u64..10_000).prop_map(
            |(gate_sel, src_sel, seed, p1, p2)| MasterSpec {
                gate_sel,
                src_sel,
                seed,
                p1,
                p2,
            },
        ),
        1..4,
    )
}

fn make_source(i: usize, m: MasterSpec) -> Box<dyn TrafficSource> {
    let base = (i as u64) << 28;
    match m.src_sel {
        0 => {
            let spec = TrafficSpec {
                gap: m.p1 % 64,
                ..TrafficSpec::stream(base, 1 << 20, 256, Dir::Read)
            }
            .with_total(200);
            Box::new(SpecSource::new(spec, m.seed))
        }
        1 => {
            let spec = TrafficSpec::stream(base, 1 << 20, 128, Dir::Read)
                .with_write_ratio(0.3)
                .with_burst(BurstShape {
                    on_cycles: 50 + m.p1 % 200,
                    off_cycles: 1 + m.p2 % 400,
                })
                .with_total(150);
            Box::new(SpecSource::new(spec, m.seed))
        }
        2 => {
            let spec =
                TrafficSpec::latency_sensitive(base, 1 << 20, 64, 10 + m.p1 % 300).with_total(120);
            Box::new(SpecSource::new(spec, m.seed))
        }
        3 => {
            let spec = TrafficSpec {
                gap: m.p1 % 100,
                ..TrafficSpec::stream(base, 1 << 20, 256, Dir::Read)
            }
            .with_total(60);
            let records = TraceSource::from_spec(spec, m.seed, 60).records().to_vec();
            Box::new(TraceSource::with_loops(records, 2))
        }
        _ => {
            let kernel = Kernel::all()[(m.p1 % 6) as usize];
            Box::new(kernel.source(base, 1, m.seed))
        }
    }
}

fn add_master(b: SocBuilder, i: usize, m: MasterSpec) -> SocBuilder {
    let name = format!("m{i}");
    let kind = if m.src_sel == 2 {
        MasterKind::Cpu
    } else {
        MasterKind::Accelerator
    };
    let src = make_source(i, m);
    match m.gate_sel {
        0 => b.master(name, src, kind),
        1 => {
            let (reg, _driver) = TcRegulator::create(RegulatorConfig {
                period_cycles: 128 + (m.p1 % 2_000) as u32,
                budget_bytes: 512 + (m.p2 % 8_000) as u32,
                enabled: true,
                ..RegulatorConfig::default()
            });
            b.gated_master(name, src, kind, reg)
        }
        2 => b.gated_master(
            name,
            src,
            kind,
            MemGuardGate::new(MemGuardConfig {
                tick_cycles: 500 + m.p1 % 4_000,
                budget_bytes: 256 + m.p2 % 4_000,
                irq_latency_cycles: m.p1 % 300,
            }),
        ),
        3 => {
            let slot = 200 + m.p1 % 800;
            let slots = 2 + (m.p2 % 3) as usize;
            let mine = (m.p1 % slots as u64) as usize;
            let guard = m.p2 % (slot / 4);
            b.gated_master(
                name,
                src,
                kind,
                TdmaGate::new(TdmaSchedule::new(slot, slots), vec![mine], guard),
            )
        }
        4 => b.gated_master(
            name,
            src,
            kind,
            OtRegulatorGate::new(OtRegulatorConfig {
                max_outstanding: 1 + (m.p1 % 8) as usize,
                txns_per_period: if m.p2.is_multiple_of(2) {
                    1 + (m.p2 % 6) as u32
                } else {
                    0
                },
                period_cycles: 500 + m.p1 % 2_000,
            }),
        ),
        _ => b.gated_master(
            name,
            src,
            kind,
            LeakyBucketRegulator::new(BucketConfig {
                budget_bytes: 512 + (m.p2 % 4_000) as u32,
                period_cycles: 128 + (m.p1 % 2_000) as u32,
                depth_bytes: 512 + (m.p1 % 4_000) as u32,
                ..BucketConfig::default()
            }),
        ),
    }
}

fn build_soc(specs: &[MasterSpec], refresh: bool, naive: bool) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: if refresh {
                DramConfig::default().t_refi
            } else {
                0
            },
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let mut b = SocBuilder::new(cfg);
    for (i, &m) in specs.iter().enumerate() {
        b = add_master(b, i, m);
    }
    let mut soc = b.build();
    soc.set_naive(naive);
    soc
}

/// Full histogram snapshot: count, min, max and every non-empty bucket.
type LatKey = (u64, u64, u64, Vec<(u64, u64)>);

fn lat_key(l: &LatencyStats) -> LatKey {
    (l.count(), l.min(), l.max(), l.nonzero_buckets().collect())
}

type MasterKey = (u64, u64, u64, u64, u64, LatKey, LatKey);
type DramKey = (u64, u64, u64, u64, u64, u64, u64, LatKey);

fn stats_fingerprint(soc: &Soc) -> (Vec<MasterKey>, DramKey) {
    let masters = (0..soc.master_count())
        .map(|i| {
            let st = soc.master_stats(MasterId::new(i));
            (
                st.issued_txns,
                st.completed_txns,
                st.bytes_completed,
                st.gate_stall_cycles,
                st.fifo_stall_cycles,
                lat_key(&st.latency),
                lat_key(&st.service_latency),
            )
        })
        .collect();
    let d = soc.dram_stats();
    let dram = (
        d.bytes_completed,
        d.reads,
        d.writes,
        d.row_hits,
        d.row_misses,
        d.bus_busy_cycles,
        d.refreshes,
        lat_key(&d.queue_wait),
    );
    (masters, dram)
}

/// Renders the Soc's observable outcome as a `fgqos.exp-report`
/// document and returns its compact JSON bytes — the same currency the
/// `fgqos-serve` result cache promises byte-determinism for.
fn report_bytes(soc: &Soc) -> String {
    let mut r = Report::new("snapshot-equivalence");
    r.context("cycle", soc.now());
    r.header(&["master", "txns", "bytes", "bandwidth", "p50", "p99", "max"]);
    for i in 0..soc.master_count() {
        let id = MasterId::new(i);
        let st = soc.master_stats(id);
        r.row(vec![
            format!("m{i}"),
            st.completed_txns.to_string(),
            st.bytes_completed.to_string(),
            format!("{}", soc.master_bandwidth(id)),
            st.latency.percentile(0.50).to_string(),
            st.latency.percentile(0.99).to_string(),
            st.latency.max().to_string(),
        ]);
    }
    let d = soc.dram_stats();
    r.note(format!(
        "dram: {} bytes, {} row hits, {} row misses, {} refreshes",
        d.bytes_completed, d.row_hits, d.row_misses, d.refreshes
    ));
    r.to_json().to_compact()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: for random scenarios and fork points,
    /// `fork(snapshot).run_to(t)` is fingerprint- and report-byte-
    /// identical to a cold run to `t`, under both execution cores.
    #[test]
    fn fork_matches_cold_run_under_both_cores(
        specs in master_specs(),
        refresh in prop::bool::ANY,
        prefix in 2_000u64..40_000,
        extra in 5_000u64..150_000,
    ) {
        for naive in [false, true] {
            let mut warm = build_soc(&specs, refresh, naive);
            warm.run(prefix);
            let tq = warm.quiesce_point(QUIESCE_BOUND);
            prop_assert!(tq.is_some(), "bounded workload failed to quiesce: {specs:?}");
            let snap = warm.snapshot().expect("quiesced soc snapshots");
            prop_assert!(snap.verify());
            prop_assert_eq!(snap.cycle(), tq.unwrap());

            let mut fork = snap.fork();
            prop_assert_eq!(
                fork.fingerprint(), snap.fingerprint(),
                "fork must start bit-identical to the boundary"
            );
            fork.run(extra);

            // The cold run executes the identical schedule from cycle
            // zero, with no snapshot in between.
            let mut cold = build_soc(&specs, refresh, naive);
            cold.run(prefix);
            let tq_cold = cold.quiesce_point(QUIESCE_BOUND);
            prop_assert_eq!(
                tq_cold, tq,
                "quiesced boundary must be deterministic (naive={}) for {:?}", naive, specs
            );
            cold.run(extra);

            prop_assert_eq!(fork.now(), cold.now());
            prop_assert_eq!(
                fork.fingerprint(), cold.fingerprint(),
                "architectural fingerprint diverged (naive={}) for {:?}", naive, specs
            );
            prop_assert_eq!(
                stats_fingerprint(&fork), stats_fingerprint(&cold),
                "statistics diverged (naive={}) for {:?}", naive, specs
            );
            prop_assert_eq!(
                report_bytes(&fork), report_bytes(&cold),
                "report bytes diverged (naive={}) for {:?}", naive, specs
            );
        }
    }

    /// Persistence round-trip: snapshot → serialize → deserialize →
    /// fork runs fingerprint-, statistics- and report-byte-identical to
    /// an in-memory fork, under both execution cores. This is the
    /// property the on-disk warm-boundary store and the serve protocol's
    /// `snapshot` op stand on.
    #[test]
    fn serialized_blob_fork_matches_in_memory_fork(
        specs in master_specs(),
        refresh in prop::bool::ANY,
        prefix in 2_000u64..30_000,
        extra in 5_000u64..100_000,
    ) {
        for naive in [false, true] {
            let mut warm = build_soc(&specs, refresh, naive);
            warm.run(prefix);
            let tq = warm.quiesce_point(QUIESCE_BOUND);
            prop_assert!(tq.is_some(), "bounded workload failed to quiesce: {specs:?}");
            let snap = warm.snapshot().expect("quiesced soc snapshots");

            // Through the wire format and back.
            let encoded = snap.to_blob("generated-soc").encode();
            let blob = SnapshotBlob::decode(&encoded).expect("fresh blob decodes");
            prop_assert_eq!(blob.fingerprint, snap.fingerprint());
            prop_assert_eq!(blob.cycle, snap.cycle().get());
            let restored = SocSnapshot::load_into(build_soc(&specs, refresh, naive), &blob)
                .expect("state stream loads into an identically built skeleton");
            prop_assert_eq!(restored.fingerprint(), snap.fingerprint());

            let mut mem_fork = snap.fork();
            let mut blob_fork = restored.fork();
            mem_fork.run(extra);
            blob_fork.run(extra);
            prop_assert_eq!(
                blob_fork.fingerprint(), mem_fork.fingerprint(),
                "deserialized fork diverged (naive={}) for {:?}", naive, specs
            );
            prop_assert_eq!(stats_fingerprint(&blob_fork), stats_fingerprint(&mem_fork));
            prop_assert_eq!(report_bytes(&blob_fork), report_bytes(&mem_fork));
        }
    }

    /// Snapshots cross the core boundary: a snapshot captured under the
    /// event calendar, forked and switched to naive stepping, matches a
    /// cold run that was naive from cycle zero. (The quiesced boundary
    /// is core-independent by construction — this is the proof.)
    #[test]
    fn snapshot_captured_fast_replays_naive(
        specs in master_specs(),
        refresh in prop::bool::ANY,
        prefix in 2_000u64..30_000,
        extra in 5_000u64..100_000,
    ) {
        let mut warm = build_soc(&specs, refresh, false);
        warm.run(prefix);
        let tq = warm.quiesce_point(QUIESCE_BOUND);
        prop_assert!(tq.is_some());
        let snap = warm.snapshot().expect("quiesced");

        let mut fork = snap.fork();
        fork.set_naive(true);
        fork.run(extra);

        let mut cold = build_soc(&specs, refresh, true);
        cold.run(prefix);
        prop_assert_eq!(cold.quiesce_point(QUIESCE_BOUND), tq);
        cold.run(extra);

        // The `naive` flag is part of the fingerprint stream (it is
        // architectural configuration), so compare behaviour via stats
        // and report bytes rather than the raw fingerprint.
        prop_assert_eq!(stats_fingerprint(&fork), stats_fingerprint(&cold));
        prop_assert_eq!(report_bytes(&fork), report_bytes(&cold));
    }

    /// N forks from one snapshot are mutually independent: running one
    /// to a different horizon neither perturbs its siblings nor the
    /// snapshot itself, and each sibling still matches its own cold run.
    #[test]
    fn sibling_forks_are_independent_and_each_matches_cold(
        specs in master_specs(),
        prefix in 2_000u64..30_000,
        extra_a in 5_000u64..80_000,
        extra_b in 5_000u64..80_000,
    ) {
        let mut warm = build_soc(&specs, false, false);
        warm.run(prefix);
        let tq = warm.quiesce_point(QUIESCE_BOUND);
        prop_assert!(tq.is_some());
        let snap = warm.snapshot().expect("quiesced");

        let mut a = snap.fork();
        let mut b = snap.fork();
        a.run(extra_a);
        b.run(extra_b);
        prop_assert!(snap.verify(), "running forks must not mutate the snapshot");

        for (fork, extra) in [(&a, extra_a), (&b, extra_b)] {
            let mut cold = build_soc(&specs, false, false);
            cold.run(prefix);
            prop_assert_eq!(cold.quiesce_point(QUIESCE_BOUND), tq);
            cold.run(extra);
            prop_assert_eq!(fork.fingerprint(), cold.fingerprint());
            prop_assert_eq!(stats_fingerprint(fork), stats_fingerprint(&cold));
        }
    }
}

/// Builds the closed-loop policy stack *without* the IRQ dispatcher
/// (interrupt dispatchers hold closures and are unforkable by design):
/// a critical reader behind a monitor-only regulator, TC-regulated
/// best-effort streams, and a software policy reprogramming budgets
/// each control period.
fn build_policy_soc(seed: u64, control_period: u64, use_feedback: bool) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let (crit_reg, crit_driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_000,
        budget_bytes: u32::MAX,
        enabled: true,
        ..RegulatorConfig::default()
    });
    let crit_spec = TrafficSpec::latency_sensitive(0, 1 << 20, 64, 50 + seed % 200).with_total(150);
    let mut b = SocBuilder::new(cfg).gated_master(
        "critical",
        SpecSource::new(crit_spec, seed),
        MasterKind::Cpu,
        crit_reg,
    );

    let mut be_drivers = Vec::new();
    for i in 0..2u64 {
        let (reg, driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: 1_000,
            budget_bytes: 2_048,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let spec = TrafficSpec::stream((i + 1) << 28, 1 << 20, 256, Dir::Read).with_total(300);
        b = b.gated_master(
            format!("be{i}"),
            SpecSource::new(spec, seed ^ (i + 1)),
            MasterKind::Accelerator,
            reg,
        );
        be_drivers.push(driver);
    }

    if use_feedback {
        b = b.controller(FeedbackController::new(
            crit_driver,
            2_000,
            be_drivers,
            2_048,
            256,
            8_192,
            256,
            control_period,
        ));
    } else {
        b = b.controller(ReclaimPolicy::new(
            crit_driver,
            be_drivers,
            ReclaimConfig {
                critical_reserved: 4_096,
                be_base: 1_024,
                control_period,
                gain: 2,
                busy_threshold: Some(2_048),
            },
        ));
    }
    b.build()
}

/// Software policy controllers fork with their driver handles rebound:
/// the forked policy keeps reprogramming the forked regulators, and the
/// continuation matches a cold run bit-for-bit.
#[test]
fn policy_controllers_fork_matches_cold() {
    for use_feedback in [false, true] {
        let mut warm = build_policy_soc(7, 5_000, use_feedback);
        warm.run(20_000);
        let tq = warm
            .quiesce_point(QUIESCE_BOUND)
            .expect("closed-loop stack quiesces");
        let snap = warm.snapshot().expect("policy controllers are forkable");

        let mut fork = snap.fork();
        fork.run(200_000);

        let mut cold = build_policy_soc(7, 5_000, use_feedback);
        cold.run(20_000);
        assert_eq!(cold.quiesce_point(QUIESCE_BOUND), Some(tq));
        cold.run(200_000);

        assert_eq!(
            fork.fingerprint(),
            cold.fingerprint(),
            "policy fork diverged (feedback={use_feedback})"
        );
        assert_eq!(stats_fingerprint(&fork), stats_fingerprint(&cold));
    }
}

/// A shared budget group's aggregate state is remapped once per fork:
/// both member gates of a fork see the same forked window, and sibling
/// forks never share budget with each other or the snapshot.
#[test]
fn shared_budget_group_forks_preserve_topology() {
    let build = || {
        let cfg = SocConfig {
            dram: DramConfig {
                t_refi: 0,
                ..DramConfig::default()
            },
            ..SocConfig::default()
        };
        let group = SharedRegulator::new(1_000, 4_096);
        let mut b = SocBuilder::new(cfg);
        for i in 0..2u64 {
            let spec = TrafficSpec {
                gap: 40,
                ..TrafficSpec::stream(i << 28, 1 << 20, 256, Dir::Read)
            }
            .with_total(300);
            b = b.gated_master(
                format!("m{i}"),
                SpecSource::new(spec, 11 ^ i),
                MasterKind::Accelerator,
                group.port_gate(),
            );
        }
        b.build()
    };

    let mut warm = build();
    warm.run(15_000);
    let tq = warm
        .quiesce_point(QUIESCE_BOUND)
        .expect("gapped streams drain");
    let snap = warm.snapshot().expect("shared gates are forkable");

    let mut a = snap.fork();
    let mut b = snap.fork();
    a.run(150_000);
    assert!(snap.verify(), "sibling fork consumed the snapshot's budget");
    b.run(150_000);

    let mut cold = build();
    cold.run(15_000);
    assert_eq!(cold.quiesce_point(QUIESCE_BOUND), Some(tq));
    cold.run(150_000);

    // Both forks exhausted the same shared window the same way the cold
    // run did — had the two member gates been remapped to *different*
    // copies of the group state, each would see double the budget.
    assert_eq!(a.fingerprint(), cold.fingerprint());
    assert_eq!(b.fingerprint(), cold.fingerprint());
    assert_eq!(stats_fingerprint(&a), stats_fingerprint(&cold));
}

/// External driver handles rebound through the fork's `ForkCtx` program
/// the fork — and only the fork. This is the seam the warm-start sweep
/// planner uses to apply per-point configurations after forking.
#[test]
fn rebound_driver_programs_fork_without_touching_snapshot() {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let (reg, driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_000,
        budget_bytes: 8_192,
        enabled: true,
        ..RegulatorConfig::default()
    });
    let spec = TrafficSpec {
        gap: 30,
        ..TrafficSpec::stream(0, 1 << 20, 256, Dir::Read)
    }
    .with_total(2_000);
    let mut warm = SocBuilder::new(cfg)
        .gated_master(
            "dma",
            SpecSource::new(spec, 3),
            MasterKind::Accelerator,
            reg,
        )
        .build();
    warm.run(20_000);
    warm.quiesce_point(QUIESCE_BOUND).expect("drains");
    let snap = warm.snapshot().expect("quiesced");

    // Fork A: rebind the external driver and throttle hard.
    let mut ctx = ForkCtx::new();
    let mut throttled = snap.fork_with(&mut ctx);
    let fork_driver = driver.forked(&mut ctx);
    fork_driver.set_budget_bytes(256);

    // Fork B: untouched configuration.
    let mut stock = snap.fork();

    // The original register file (alive inside the snapshot) must not
    // have seen the write.
    assert_eq!(driver.budget_bytes(), 8_192);
    assert_eq!(fork_driver.budget_bytes(), 256);
    assert!(snap.verify(), "programming a fork mutated the snapshot");

    throttled.run(300_000);
    stock.run(300_000);
    let id = MasterId::new(0);
    let slow = throttled.master_stats(id).bytes_completed;
    let fast = stock.master_stats(id).bytes_completed;
    assert!(
        slow < fast,
        "throttled fork ({slow} bytes) should trail the stock fork ({fast} bytes)"
    );
}

/// A quiesced snapshot of a small mixed scenario, encoded to blob bytes
/// (shared by the negative-path tests below).
fn encoded_test_blob() -> (SocSnapshot, Vec<u8>, Vec<MasterSpec>) {
    let specs = vec![
        MasterSpec {
            gate_sel: 1,
            src_sel: 0,
            seed: 7,
            p1: 123,
            p2: 456,
        },
        MasterSpec {
            gate_sel: 2,
            src_sel: 1,
            seed: 11,
            p1: 789,
            p2: 321,
        },
    ];
    let mut warm = build_soc(&specs, false, false);
    warm.run(10_000);
    warm.quiesce_point(QUIESCE_BOUND).expect("drains");
    let snap = warm.snapshot().expect("quiesced");
    let encoded = snap.to_blob("negative-path-soc").encode();
    (snap, encoded, specs)
}

/// Truncating a blob at any point must produce a diagnostic decode
/// error — never a panic, never a silent partial load.
#[test]
fn truncated_blobs_fail_with_diagnostics() {
    let (_snap, encoded, _specs) = encoded_test_blob();
    for cut in [0, 1, 7, 8, 16, encoded.len() / 2, encoded.len() - 1] {
        let err =
            SnapshotBlob::decode(&encoded[..cut]).expect_err("truncated blob must not decode");
        assert!(
            !err.to_string().is_empty(),
            "decode error must carry a diagnostic message"
        );
    }
}

/// A single flipped payload byte is caught by the container checksum
/// before any state is interpreted.
#[test]
fn flipped_byte_fails_the_checksum() {
    let (_snap, encoded, _specs) = encoded_test_blob();
    // Flip one byte in the middle of the state stream (well past the
    // header, well before the trailing checksum).
    let mut bad = encoded.clone();
    let mid = encoded.len() / 2;
    bad[mid] ^= 0x40;
    match SnapshotBlob::decode(&bad) {
        Err(SnapDecodeError::ChecksumMismatch { .. }) => {}
        other => panic!("expected a checksum mismatch, got {other:?}"),
    }
}

/// An unknown `SNAPSHOT_VERSION` is rejected at load with a version
/// diagnostic (the container still decodes — version negotiation
/// happens at the state layer, so future formats can carry old blobs).
#[test]
fn wrong_snapshot_version_is_rejected_at_load() {
    let (_snap, encoded, specs) = encoded_test_blob();
    let mut blob = SnapshotBlob::decode(&encoded).expect("fresh blob decodes");
    blob.snapshot_version = 999;
    let reencoded = SnapshotBlob::decode(&blob.encode()).expect("container re-encodes");
    match SocSnapshot::load_into(build_soc(&specs, false, false), &reencoded) {
        Err(SnapDecodeError::Version { found: 999, .. }) => {}
        other => panic!("expected a version error, got {other:?}"),
    }
}

/// A blob whose state does not hash back to its recorded fingerprint is
/// rejected end-to-end, even when the container checksum is intact.
#[test]
fn fingerprint_mismatch_is_rejected_at_load() {
    let (_snap, encoded, specs) = encoded_test_blob();
    let mut blob = SnapshotBlob::decode(&encoded).expect("fresh blob decodes");
    blob.fingerprint ^= 1;
    // encode() recomputes the container checksum, so only the
    // fingerprint cross-check can catch this.
    let reencoded = SnapshotBlob::decode(&blob.encode()).expect("container re-encodes");
    match SocSnapshot::load_into(build_soc(&specs, false, false), &reencoded) {
        Err(SnapDecodeError::FingerprintMismatch { .. }) => {}
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }
}

/// Loading a valid blob into a *differently built* skeleton fails with
/// a diagnostic instead of silently producing a frankenstate.
#[test]
fn blob_refuses_a_mismatched_skeleton() {
    let (_snap, encoded, mut specs) = encoded_test_blob();
    let blob = SnapshotBlob::decode(&encoded).expect("decodes");
    specs[0].gate_sel = 3; // different gate family than the capture
    let err = SocSnapshot::load_into(build_soc(&specs, false, false), &blob)
        .expect_err("mismatched skeleton must be rejected");
    assert!(!err.to_string().is_empty());
}
