//! End-to-end tests of the `fgqos-serve` service with the real
//! simulator-backed executor: byte-identity between served and direct
//! runs, cache-hit identity, frame robustness, graceful shutdown, and
//! the admission-control isolation guarantee from the paper's
//! window/budget regulation (here applied to the server's own ingress).

use fgqos::runner::{
    batch_reports, live_run, scenario_report, serve_batch_executor, serve_executor,
    serve_live_executor, serve_snapshot_executor, LiveOptions, RunOptions,
};
use fgqos::serve::admission::AdmissionConfig;
use fgqos::serve::client::{Client, ClientError, SubmitOptions};
use fgqos::serve::live::{ControlWrite, LiveRegistry};
use fgqos::serve::protocol::{BatchKind, BatchPoint, BatchSpec, ControlSet, JobSpec};
use fgqos::serve::server::{start, start_live, start_with, ServeConfig, ServerHandle};
use fgqos::serve::Executor;
use fgqos::sim::json::Value;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SCENARIO: &str = "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern seq
footprint 1M
txn 256
total 2000

[master dma]
kind accel
role best-effort
period 1000
budget 2K
pattern seq
base 0x40000000
footprint 4M
txn 512
";

const CYCLES: u64 = 50_000;

fn real_server(cfg: ServeConfig) -> ServerHandle {
    start_with(cfg, serve_executor(), serve_batch_executor()).expect("bind loopback")
}

fn two_threads() -> ServeConfig {
    ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    }
}

fn finish(server: ServerHandle) {
    let mut c = Client::connect(server.addr()).expect("connect for shutdown");
    c.shutdown().expect("graceful shutdown");
    server.join();
}

#[test]
fn served_run_is_byte_identical_to_a_direct_run() {
    let demo = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/demo.fgq"))
        .expect("demo scenario readable");
    let direct = scenario_report(
        &demo,
        &RunOptions {
            cycles: 200_000,
            until_done: None,
        },
    )
    .expect("direct run")
    .to_json();

    let server = real_server(two_threads());
    let mut client = Client::connect(server.addr()).expect("connect");
    let (ack, served) = client
        .submit_and_wait(
            &demo,
            200_000,
            &SubmitOptions::default(),
            Duration::from_secs(60),
        )
        .expect("served run");
    assert!(!ack.cached);
    assert_eq!(
        served.to_compact(),
        direct.to_compact(),
        "served and direct reports must serialize byte-identically"
    );
    finish(server);
}

#[test]
fn resubmission_hits_the_cache_with_identical_bytes() {
    let server = real_server(two_threads());
    let mut client = Client::connect(server.addr()).expect("connect");
    let opts = SubmitOptions::default();
    let (first_ack, first) = client
        .submit_and_wait(SCENARIO, CYCLES, &opts, Duration::from_secs(30))
        .expect("first run");
    assert!(!first_ack.cached);
    let (second_ack, second) = client
        .submit_and_wait(SCENARIO, CYCLES, &opts, Duration::from_secs(30))
        .expect("second run");
    assert!(second_ack.cached, "equal spec must be a cache hit");
    assert_ne!(first_ack.job, second_ack.job, "hits still get fresh ids");
    assert_eq!(first.to_compact(), second.to_compact());

    // The raw result responses (not just the embedded report) also
    // serialize identically: nothing leaks the cache-vs-fresh path.
    let raw_first = client.result(first_ack.job).expect("result");
    let mut raw_second = client.result(second_ack.job).expect("result");
    raw_second.set("job", Value::from(first_ack.job));
    assert_eq!(raw_first.to_compact(), raw_second.to_compact());

    let metrics = client
        .metrics(fgqos::serve::protocol::MetricsFormat::Json)
        .expect("metrics");
    let hits = metrics
        .get("metrics")
        .and_then(|m| m.get("metrics"))
        .and_then(|m| m.get("serve.cache.hits"))
        .and_then(Value::as_u64);
    assert_eq!(hits, Some(1));
    finish(server);
}

#[test]
fn malformed_and_oversized_frames_keep_the_connection_usable() {
    let server = real_server(ServeConfig {
        threads: 1,
        max_frame_bytes: 512,
        ..ServeConfig::default()
    });
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut roundtrip = |frame: &str| -> Value {
        writer
            .write_all(format!("{frame}\n").as_bytes())
            .expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        Value::parse(line.trim_end()).expect("response parses")
    };

    let garbage = roundtrip("{{{ not json");
    assert_eq!(garbage.get("ok"), Some(&Value::Bool(false)));
    let oversized = roundtrip(&"x".repeat(4096));
    assert_eq!(oversized.get("ok"), Some(&Value::Bool(false)));
    assert!(oversized
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("exceeds"));
    // After both rejections the same connection still serves real work.
    let ack = roundtrip(&format!(
        r#"{{"op":"submit","scenario":"{}","cycles":{CYCLES}}}"#,
        SCENARIO.replace('\n', "\\n")
    ));
    assert_eq!(
        ack.get("ok"),
        Some(&Value::Bool(true)),
        "connection unusable after rejected frames: {ack:?}"
    );
    finish(server);
}

#[test]
fn deadline_expiry_and_graceful_drain_end_to_end() {
    // A stub executor that sleeps makes queue timing deterministic.
    let slow: Executor = Arc::new(|_spec: &JobSpec| {
        std::thread::sleep(Duration::from_millis(50));
        Ok(fgqos::bench::report::Report::new("slow"))
    });
    let server = start(
        ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        },
        slow,
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Occupy the single worker, then enqueue a job that expires first.
    let blocker = client
        .submit("a", 1, &SubmitOptions::default())
        .expect("submit");
    let doomed = client
        .submit(
            "b",
            1,
            &SubmitOptions {
                deadline_ms: Some(5),
                ..SubmitOptions::default()
            },
        )
        .expect("submit");
    // Plus a queue of ordinary jobs the drain must still execute.
    let queued: Vec<u64> = (0..3)
        .map(|i| {
            client
                .submit(&format!("tail-{i}"), 1, &SubmitOptions::default())
                .expect("submit")
                .job
        })
        .collect();

    // Shutdown drains everything before answering.
    let summary = client.shutdown().expect("graceful shutdown");
    assert_eq!(summary.get("executed").and_then(Value::as_u64), Some(4));
    assert_eq!(summary.get("expired").and_then(Value::as_u64), Some(1));

    // The listener is down now; verify final job states through the
    // core the handle still shares.
    let core = server.core();
    assert!(matches!(
        core.result(blocker.job).unwrap().0,
        fgqos::serve::pool::JobState::Done
    ));
    assert!(matches!(
        core.result(doomed.job).unwrap().0,
        fgqos::serve::pool::JobState::Expired
    ));
    for id in queued {
        assert!(matches!(
            core.result(id).unwrap().0,
            fgqos::serve::pool::JobState::Done
        ));
    }
    server.join();
}

#[test]
fn batched_sweep_round_trip_is_byte_identical_and_cached_per_point() {
    let points: Vec<BatchPoint> = [256u64, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 32_768]
        .iter()
        .map(|&budget| BatchPoint {
            period: 1_000,
            budget,
        })
        .collect();
    let spec = BatchSpec {
        scenario: SCENARIO.to_string(),
        cycles: 20_000,
        until_done: None,
        warmup: 30_000,
        points: points.clone(),
        kind: BatchKind::Sweep,
    };
    let direct: Vec<String> = batch_reports(&spec)
        .expect("direct batch")
        .iter()
        .map(|r| r.to_json().to_compact())
        .collect();

    let server = real_server(two_threads());
    let mut client = Client::connect(server.addr()).expect("connect");
    let ack = client
        .submit_batch(&spec, &SubmitOptions::default())
        .expect("submit batch");
    assert_eq!(ack.jobs.len(), 8, "one job per point");
    assert!(ack.cached.iter().all(|&c| !c), "first batch misses");
    assert!(ack.lane.is_some(), "uncached batch is pinned to a lane");
    let served: Vec<String> = ack
        .jobs
        .iter()
        .map(|&job| {
            client
                .wait_report(job, Duration::from_secs(60))
                .expect("batched point report")
                .to_compact()
        })
        .collect();
    assert_eq!(
        served, direct,
        "served batch points must match direct batch_reports byte-for-byte"
    );

    // Resubmitting the same slice is a pure cache hit: fresh ids, no
    // lane, identical bytes per point.
    let again = client
        .submit_batch(&spec, &SubmitOptions::default())
        .expect("resubmit batch");
    assert!(again.cached.iter().all(|&c| c), "resubmit fully cached");
    assert_eq!(again.lane, None, "fully-cached batch never queues");
    for (i, &job) in again.jobs.iter().enumerate() {
        let report = client
            .wait_report(job, Duration::from_secs(10))
            .expect("cached point report");
        assert_eq!(report.to_compact(), served[i]);
    }

    // A half-overlapping slice only misses on the new points.
    let mut shifted = spec.clone();
    shifted.points = points[4..]
        .iter()
        .copied()
        .chain([65_536u64, 131_072].iter().map(|&budget| BatchPoint {
            period: 1_000,
            budget,
        }))
        .collect();
    let partial = client
        .submit_batch(&shifted, &SubmitOptions::default())
        .expect("overlapping batch");
    assert_eq!(
        partial.cached,
        vec![true, true, true, true, false, false],
        "only the new points miss"
    );
    for &job in &partial.jobs {
        client
            .wait_report(job, Duration::from_secs(60))
            .expect("overlapping point report");
    }

    let metrics = client
        .metrics(fgqos::serve::protocol::MetricsFormat::Json)
        .expect("metrics");
    let body = metrics.get("metrics").and_then(|m| m.get("metrics"));
    let batches = body
        .and_then(|m| m.get("serve.jobs.batches"))
        .and_then(Value::as_u64);
    assert_eq!(batches, Some(3), "every submit_batch call is counted");
    let lane = ack.lane.expect("pinned lane");
    let lane_executed = body
        .and_then(|m| m.get(&format!("serve.lane.{lane}.executed")))
        .and_then(Value::as_u64)
        .expect("per-lane executed counter exported");
    assert!(
        lane_executed >= 1,
        "the pinned lane executed the batch, got {lane_executed}"
    );
    finish(server);
}

/// The op-kind cache namespace: a hunt candidate batch must never be
/// answered from a sweep batch's cached points (or vice versa), even
/// when scenario, cycles, warm-up and the (period, budget) point are
/// all identical. Both kinds still compute the same pure report, so the
/// bytes agree — only the cache identity differs.
#[test]
fn hunt_batches_never_alias_sweep_cache_entries() {
    let points = vec![
        BatchPoint {
            period: 1_000,
            budget: 2_048,
        },
        BatchPoint {
            period: 1_000,
            budget: 4_096,
        },
    ];
    let sweep = BatchSpec {
        scenario: SCENARIO.to_string(),
        cycles: 20_000,
        until_done: None,
        warmup: 30_000,
        points,
        kind: BatchKind::Sweep,
    };
    let hunt = BatchSpec {
        kind: BatchKind::Hunt,
        ..sweep.clone()
    };

    let server = real_server(two_threads());
    let mut client = Client::connect(server.addr()).expect("connect");
    let first = client
        .submit_batch(&sweep, &SubmitOptions::default())
        .expect("sweep batch");
    let sweep_reports: Vec<String> = first
        .jobs
        .iter()
        .map(|&job| {
            client
                .wait_report(job, Duration::from_secs(60))
                .expect("sweep point report")
                .to_compact()
        })
        .collect();

    // Same scenario, same points, different kind: every point must be a
    // cache miss and re-execute on its own lane.
    let cross = client
        .submit_batch(&hunt, &SubmitOptions::default())
        .expect("hunt batch");
    assert!(
        cross.cached.iter().all(|&c| !c),
        "hunt points must not hit sweep cache entries: {:?}",
        cross.cached
    );
    assert!(cross.lane.is_some(), "uncached hunt batch queues on a lane");
    let hunt_reports: Vec<String> = cross
        .jobs
        .iter()
        .map(|&job| {
            client
                .wait_report(job, Duration::from_secs(60))
                .expect("hunt point report")
                .to_compact()
        })
        .collect();
    assert_eq!(
        hunt_reports, sweep_reports,
        "the computation is kind-independent; only the cache identity differs"
    );

    // Within its own namespace the hunt batch caches normally.
    let again = client
        .submit_batch(&hunt, &SubmitOptions::default())
        .expect("hunt resubmit");
    assert!(
        again.cached.iter().all(|&c| c),
        "hunt resubmit fully cached"
    );
    finish(server);
}

#[test]
fn flooding_client_is_denied_while_others_stay_fast() {
    // Tight ingress: 256 B/s sustained (negligible replenishment over
    // the test's lifetime), 32 KiB burst allowance.
    let server = real_server(ServeConfig {
        threads: 2,
        admission: AdmissionConfig {
            budget_bytes: 256,
            period_cycles: 1_000_000,
            depth_bytes: 32 << 10,
        },
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let polite_opts = SubmitOptions {
        client: Some("polite".into()),
        ..SubmitOptions::default()
    };

    // Warm the cache so polite round-trips measure protocol latency.
    let mut polite = Client::connect(addr).expect("connect");
    polite
        .submit_and_wait(SCENARIO, CYCLES, &polite_opts, Duration::from_secs(30))
        .expect("warm");

    let measure = |polite: &mut Client| -> Duration {
        let mut samples: Vec<Duration> = (0..15)
            .map(|_| {
                let t0 = Instant::now();
                polite
                    .submit_and_wait(SCENARIO, CYCLES, &polite_opts, Duration::from_secs(10))
                    .expect("polite round-trip");
                t0.elapsed()
            })
            .collect();
        samples.sort();
        samples[samples.len() / 2]
    };
    let unloaded = measure(&mut polite);

    // A 16 KiB frame per attempt: the burst allowance admits only the
    // first two, then the flood is denied at the protocol layer.
    let flood_scenario = format!("# {}\n{SCENARIO}", "f".repeat(16 << 10));
    let flooder = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect flooder");
        let opts = SubmitOptions {
            client: Some("flooder".into()),
            ..SubmitOptions::default()
        };
        let mut denied = 0u32;
        let mut accepted = 0u32;
        for _ in 0..100 {
            match c.submit(&flood_scenario, CYCLES, &opts) {
                Err(ClientError::Denied(_)) => denied += 1,
                Ok(_) => accepted += 1,
                Err(e) => panic!("unexpected flooder error: {e}"),
            }
        }
        (accepted, denied)
    });
    let loaded = measure(&mut polite);
    let (accepted, denied) = flooder.join().expect("flooder thread");

    assert!(denied >= 95, "flood mostly denied, got {denied}/100 denies");
    assert!(accepted >= 1, "the initial burst allowance admits");
    // The acceptance bound from ISSUE.md: flooding must not slow other
    // clients past 2x their unloaded latency (25 ms noise floor for
    // sub-millisecond medians on a busy test machine).
    let bound = (unloaded * 2).max(Duration::from_millis(25));
    assert!(
        loaded <= bound,
        "polite latency degraded: unloaded {unloaded:?}, loaded {loaded:?}"
    );
    finish(server);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Concurrent submissions of the same spec — racing each other for
    /// the cache slot — always observe the same report bytes.
    #[test]
    fn concurrent_equal_submissions_agree(cycles in 5_000u64..20_000) {
        let server = real_server(two_threads());
        let addr = server.addr();
        let reports: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        let mut c = Client::connect(addr).expect("connect");
                        let (_, report) = c
                            .submit_and_wait(
                                SCENARIO,
                                cycles,
                                &SubmitOptions::default(),
                                Duration::from_secs(30),
                            )
                            .expect("round-trip");
                        report.to_compact()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        });
        for r in &reports[1..] {
            prop_assert_eq!(&reports[0], r);
        }
        finish(server);
    }
}

/// A server with the full v4 surface: run/batch/snapshot/live executors.
fn live_server(cfg: ServeConfig) -> ServerHandle {
    start_live(
        cfg,
        serve_executor(),
        serve_batch_executor(),
        serve_snapshot_executor(),
        serve_live_executor(),
    )
    .expect("bind loopback")
}

/// The v4 streaming ops go through the same framed transport: malformed
/// and oversized `subscribe`/`control`/`journal` frames are rejected
/// with `ok:false` and the connection stays usable — including for a
/// real subscription, whose end-of-stream hands the connection back to
/// request/response mode.
#[test]
fn malformed_v4_frames_keep_the_connection_usable() {
    let server = live_server(ServeConfig {
        threads: 1,
        max_frame_bytes: 4_096,
        ..ServeConfig::default()
    });
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    fn rt(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, frame: &str) -> Value {
        writer
            .write_all(format!("{frame}\n").as_bytes())
            .expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        Value::parse(line.trim_end()).expect("response parses")
    }
    let mut roundtrip = |frame: &str| rt(&mut writer, &mut reader, frame);
    let expect_err = |resp: Value, needle: &str| {
        assert_eq!(resp.get("ok"), Some(&Value::Bool(false)), "{resp:?}");
        let msg = resp.get("error").and_then(Value::as_str).unwrap();
        assert!(msg.contains(needle), "error {msg:?} lacks {needle:?}");
    };

    expect_err(
        roundtrip(r#"{"op":"subscribe"}"#),
        "a string 'scenario' or a 'run' id",
    );
    expect_err(
        roundtrip(r#"{"op":"subscribe","scenario":"x","window":0}"#),
        "window",
    );
    expect_err(
        roundtrip(r#"{"op":"subscribe","run":99}"#),
        "unknown live run",
    );
    expect_err(roundtrip(r#"{"op":"control","run":1}"#), "'set'");
    expect_err(
        roundtrip(r#"{"op":"control","run":1,"target":"dma","set":"warp","value":9}"#),
        "warp",
    );
    expect_err(
        roundtrip(r#"{"op":"control","run":99,"target":"dma","set":"budget","value":512}"#),
        "unknown live run",
    );
    expect_err(
        roundtrip(r#"{"op":"journal","run":99}"#),
        "unknown live run",
    );
    let oversized = roundtrip(&format!(
        r#"{{"op":"subscribe","scenario":"{}"}}"#,
        "x".repeat(8_192)
    ));
    expect_err(oversized, "exceeds");

    // The same connection still carries a real subscription end to end.
    let ack = roundtrip(&format!(
        r#"{{"op":"subscribe","scenario":"{}","cycles":30000,"window":10000}}"#,
        SCENARIO.replace('\n', "\\n")
    ));
    assert_eq!(ack.get("ok"), Some(&Value::Bool(true)), "{ack:?}");
    let run = ack.get("run").and_then(Value::as_u64).expect("run id");
    let mut frames = 0u64;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("stream read");
        let doc = Value::parse(line.trim_end()).expect("frame parses");
        match doc.get("stream").and_then(Value::as_str) {
            Some("frame") => frames += 1,
            Some("end") => {
                assert_eq!(doc.get("state").and_then(Value::as_str), Some("done"));
                assert_eq!(doc.get("frames").and_then(Value::as_u64), Some(frames));
                break;
            }
            other => panic!("unexpected stream tag {other:?} in {doc:?}"),
        }
    }
    assert_eq!(frames, 3, "30000 cycles / 10000-cycle windows");

    // End of stream reverts to request/response: the journal is served
    // on the very same connection.
    let journal = rt(
        &mut writer,
        &mut reader,
        &format!(r#"{{"op":"journal","run":{run}}}"#),
    );
    assert_eq!(journal.get("ok"), Some(&Value::Bool(true)), "{journal:?}");
    finish(server);
}

/// Mid-run control writes through the wire land at a window boundary,
/// show up in the streamed frames' `controls` block and in the journal,
/// and the journal's replay scenario reproduces the live report
/// byte-for-byte (the `fgqos watch --verify-replay` loop, server-side).
#[test]
fn wire_control_writes_are_journaled_and_replayable() {
    let server = live_server(two_threads());
    let mut watcher = Client::connect(server.addr()).expect("connect watcher");
    // Pace the run so the control write beats the horizon comfortably.
    let run = watcher
        .subscribe(
            &fgqos::serve::protocol::LiveSpec {
                scenario: SCENARIO.to_string(),
                cycles: 50_000,
                window: 5_000,
                pace_ms: 100,
            },
            None,
        )
        .expect("subscribe");

    let mut first = watcher.next_live_frame().expect("first frame");
    assert_eq!(first.get("stream").and_then(Value::as_str), Some("frame"));
    let mut ctl = Client::connect(server.addr()).expect("connect ctl");
    let queued = ctl
        .control(run, "dma", ControlSet::Budget(256))
        .expect("control accepted");
    assert_eq!(queued, 0, "first write in the queue");

    let mut journaled = 0u64;
    loop {
        if let Some(ctls) = first.get("controls").and_then(Value::as_arr) {
            journaled += ctls.len() as u64;
        }
        if first.get("stream").and_then(Value::as_str) == Some("end") {
            break;
        }
        first = watcher.next_live_frame().expect("stream frame");
    }
    assert_eq!(journaled, 1, "the write landed in exactly one frame");

    let journal = watcher.journal(run).expect("journal");
    let entries = journal
        .get("journal")
        .and_then(|j| j.get("entries"))
        .and_then(Value::as_arr)
        .expect("journal entries");
    assert_eq!(entries.len(), 1);
    assert_eq!(
        entries[0].get("target").and_then(Value::as_str),
        Some("dma")
    );
    assert_eq!(
        entries[0].get("set").and_then(Value::as_str),
        Some("budget")
    );

    // Replay the synthesized scenario locally: byte-identical report.
    let replay_text = journal
        .get("replay_scenario")
        .and_then(Value::as_str)
        .expect("replay scenario");
    let live_report = journal.get("report").expect("live report");
    let (local, _fp) = fgqos::runner::live_replay_report(
        replay_text,
        &LiveOptions {
            cycles: 50_000,
            window: 5_000,
            naive: None,
            leap: None,
        },
    )
    .expect("replay");
    assert_eq!(local.to_json().to_compact(), live_report.to_compact());
    finish(server);
}

/// Golden pin of the live wire schema: the telemetry frames a
/// subscriber reads and the journal document the server serves are
/// exactly these bytes. Regenerate with
/// `FGQOS_BLESS=1 cargo test --test serve golden`.
#[test]
fn live_frame_and_journal_schema_match_golden() {
    let opts = LiveOptions {
        cycles: 30_000,
        window: 10_000,
        naive: Some(false),
        leap: Some(true),
    };
    let outcome = live_run(
        SCENARIO,
        &opts,
        1,
        |b| fgqos::serve::live::BoundaryCmd {
            writes: if b.index == 1 {
                vec![ControlWrite {
                    target: "dma".to_string(),
                    set: ControlSet::Budget(512),
                }]
            } else {
                Vec::new()
            },
            abort: false,
        },
        |_e| {},
    )
    .expect("live run");

    // Feed the outcome through a real session so the pinned journal
    // document is the exact object `{"op":"journal"}` serves.
    let registry = LiveRegistry::new();
    let session = registry.create().expect("session");
    session.begin(vec!["dma".to_string()]);
    for e in &outcome.journal {
        session.record(e.clone());
    }
    session.finish(
        Some(outcome.report.to_json()),
        Some(outcome.replay_scenario.clone()),
        None,
    );

    let mut doc = Value::obj();
    doc.set("frames", Value::Arr(outcome.frames.to_vec()));
    doc.set("journal", session.journal_doc());
    let golden = format!("{}\n", doc.to_pretty());

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/live_stream.json");
    if std::env::var_os("FGQOS_BLESS").is_some() {
        std::fs::write(&path, &golden).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with FGQOS_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        golden, expected,
        "live wire schema drifted; rerun with FGQOS_BLESS=1 and review the diff"
    );
}
