//! Validation of the analytical worst-case delay bound
//! ([`fgqos::core::analysis`]) against the simulator: across a grid of
//! hand-picked configurations *and* randomly drawn regulated scenarios
//! (proptest), the worst *measured* critical latency must never exceed
//! the computed bound and the measured critical throughput must never
//! fall below the analytic floor. Configurations on which `fgqos hunt`
//! ever finds a violation are pinned in [`hunt_pinned_regressions`].

use fgqos::core::analysis::{BoundSummary, PortModel, SystemModel};
use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::sim::time::Bandwidth;
use fgqos::workloads::prelude::*;
use proptest::prelude::*;

#[derive(Debug)]
struct Config {
    ports: usize,
    period: u32,
    budget: u32,
    txn_bytes: u64,
    outstanding: usize,
    think: u64,
    seed: u64,
}

/// What one simulated configuration produced, next to its analytic
/// figures.
struct Outcome {
    max_latency: u64,
    bandwidth: Bandwidth,
    summary: BoundSummary,
}

/// Runs the configuration to critical completion and returns the
/// measured worst latency and long-run throughput of the critical
/// master together with the model's [`BoundSummary`].
fn measure(cfg: &Config) -> Outcome {
    let critical = TrafficSpec::latency_sensitive(0, 4 << 20, 256, cfg.think).with_total(2_000);
    let (crit_monitor, _d) = TcRegulator::monitor_only(1_000);
    let mut builder = SocBuilder::new(SocConfig::default()).master_full(
        "critical",
        SpecSource::new(critical, cfg.seed),
        MasterKind::Cpu,
        crit_monitor,
        1,
    );
    for i in 0..cfg.ports {
        let (reg, _driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: cfg.period,
            budget_bytes: cfg.budget,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let spec = TrafficSpec::stream((1 + i as u64) << 28, 16 << 20, cfg.txn_bytes, Dir::Write);
        builder = builder.master_full(
            format!("dma{i}"),
            SpecSource::new(spec, cfg.seed + 10 + i as u64),
            MasterKind::Accelerator,
            reg,
            cfg.outstanding,
        );
    }
    let mut soc = builder.build();
    let critical_id = soc.master_id("critical").expect("critical");
    let done = soc
        .run_until_done(critical_id, u64::MAX / 2)
        .expect("critical finishes");
    let stats = soc.master_stats(critical_id);
    let measured = stats.latency.max();
    let bandwidth = Bandwidth::from_bytes_over(stats.bytes_completed, done.get(), soc.freq());

    let model = SystemModel {
        dram: DramConfig::default(),
        fifo_depth: XbarConfig::default().port_fifo_depth as u64,
        ports: vec![
            PortModel {
                period_cycles: cfg.period as u64,
                budget_bytes: cfg.budget as u64,
                max_outstanding: cfg.outstanding as u64,
                txn_bytes: cfg.txn_bytes,
            };
            cfg.ports
        ],
        critical_beats: 256 / fgqos::sim::axi::BEAT_BYTES,
    };
    // The critical actor issues one 256-byte access per `think` cycles
    // of computation — exactly the closed-loop shape the throughput
    // floor models.
    let summary = model.bound_summary(cfg.think, 256, soc.freq());
    Outcome {
        max_latency: measured,
        bandwidth,
        summary,
    }
}

#[test]
fn measured_latency_never_exceeds_bound() {
    let configs = [
        Config {
            ports: 1,
            period: 1_000,
            budget: 1_024,
            txn_bytes: 512,
            outstanding: 8,
            think: 100,
            seed: 1,
        },
        Config {
            ports: 4,
            period: 1_000,
            budget: 1_024,
            txn_bytes: 512,
            outstanding: 8,
            think: 100,
            seed: 2,
        },
        Config {
            ports: 6,
            period: 1_000,
            budget: 2_048,
            txn_bytes: 1_024,
            outstanding: 8,
            think: 50,
            seed: 3,
        },
        Config {
            ports: 3,
            period: 5_000,
            budget: 4_096,
            txn_bytes: 256,
            outstanding: 4,
            think: 200,
            seed: 4,
        },
        Config {
            ports: 2,
            period: 500,
            budget: 512,
            txn_bytes: 512,
            outstanding: 2,
            think: 500,
            seed: 5,
        },
    ];
    for (i, cfg) in configs.iter().enumerate() {
        let o = measure(cfg);
        let measured = o.max_latency;
        let bound = o.summary.delay_bound.expect("bound converges");
        assert!(
            measured <= bound,
            "config {i}: measured max {measured} exceeds bound {bound}"
        );
        // The bound should also be meaningful (not astronomically loose):
        // within 50x of the observation.
        assert!(
            bound <= measured.max(1) * 50,
            "config {i}: bound {bound} uselessly loose vs measured {measured}"
        );
    }
}

fn configs() -> impl Strategy<Value = Config> {
    (
        (1usize..=6, 500u32..=8_000, 512u32..=16_384),
        (0usize..=6, 1usize..=8, 50u64..=500, 0u64..1_000),
    )
        .prop_map(
            |((ports, period, budget), (txn_idx, outstanding, think, seed))| {
                const TXN_BYTES: [u64; 7] = [64, 128, 256, 512, 1_024, 2_048, 4_096];
                Config {
                    ports,
                    period,
                    budget,
                    txn_bytes: TXN_BYTES[txn_idx],
                    outstanding,
                    think,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On randomly drawn regulated configurations, the measured critical
    /// latency never exceeds the analytic delay bound and the measured
    /// critical throughput never falls below the analytic floor — the
    /// two guarantees `fgqos hunt` tries to break adversarially.
    #[test]
    fn random_configs_respect_delay_and_throughput_bounds(cfg in configs()) {
        let o = measure(&cfg);
        let bound = o.summary.delay_bound.expect("bound converges");
        prop_assert!(
            o.max_latency <= bound,
            "measured max {} exceeds bound {} for {:?}",
            o.max_latency, bound, cfg
        );
        let floor = o.summary.throughput_floor.expect("floor converges with bound");
        prop_assert!(
            o.bandwidth >= floor,
            "measured throughput {:.0} B/s below floor {:.0} B/s for {:?}",
            o.bandwidth.bytes_per_s(), floor.bytes_per_s(), cfg
        );
        prop_assert!(o.summary.utilization > 0.0, "ports present, so demand is nonzero");
    }
}

/// Regression pins for configurations surfaced by `fgqos hunt`
/// (`exp_worstcase`). Any hunt run that reports `VIOLATED` must have
/// its winning shape translated into a `Config` here, so the violation
/// stays fixed once the model is repaired. No violation has been found
/// to date; the entries below pin the most aggressive winner shapes the
/// searches produce (short-period, deep-budget, wide-burst aggressors)
/// so the pinning harness itself stays exercised.
#[test]
fn hunt_pinned_regressions() {
    let pinned = [
        // EXP-W seed 1/evals 40 winner shape: boundary period 200,
        // budget 262144 — regulator effectively wide open.
        Config {
            ports: 3,
            period: 200,
            budget: 262_144,
            txn_bytes: 4_096,
            outstanding: 8,
            think: 50,
            seed: 11,
        },
        // Dense small-transaction aggressors at the shortest hunted
        // period: maximal per-window admission pressure.
        Config {
            ports: 6,
            period: 200,
            budget: 4_096,
            txn_bytes: 64,
            outstanding: 8,
            think: 100,
            seed: 12,
        },
    ];
    for (i, cfg) in pinned.iter().enumerate() {
        let o = measure(cfg);
        let bound = o.summary.delay_bound.expect("bound converges");
        assert!(
            o.max_latency <= bound,
            "pinned config {i}: measured max {} exceeds bound {bound} for {cfg:?}",
            o.max_latency
        );
    }
}

#[test]
fn bound_tracks_interference_intensity() {
    let mk = |ports: usize| SystemModel {
        dram: DramConfig::default(),
        fifo_depth: 4,
        ports: vec![
            PortModel {
                period_cycles: 1_000,
                budget_bytes: 1_024,
                max_outstanding: 8,
                txn_bytes: 512,
            };
            ports
        ],
        critical_beats: 16,
    };
    let mut last = 0;
    for ports in [0usize, 1, 2, 4, 8] {
        let b = mk(ports).critical_delay_bound().expect("converges");
        assert!(b >= last, "bound must be monotone in port count");
        last = b;
    }
}

#[test]
fn utilization_distinguishes_guaranteed_from_best_effort_configs() {
    let mk = |budget: u64| SystemModel {
        dram: DramConfig::default(),
        fifo_depth: 4,
        ports: vec![
            PortModel {
                period_cycles: 1_000,
                budget_bytes: budget,
                max_outstanding: 8,
                txn_bytes: 512,
            };
            6
        ],
        critical_beats: 16,
    };
    // 1 txn/window per port: worst-case feasible (analysable regime).
    assert!(mk(512).regulated_utilization() < 1.0);
    // 2 txns/window per port: fine on average (row hits), but the
    // worst-case server is oversubscribed — the bound still holds per
    // request (backlog is bounded by outstanding limits), but the
    // metric correctly flags the regime change.
    assert!(mk(1_024).regulated_utilization() > 1.0);
}
