//! Validation of the analytical worst-case delay bound
//! ([`fgqos::core::analysis`]) against the simulator: across a grid of
//! regulated configurations, the worst *measured* critical latency must
//! never exceed the computed bound.

use fgqos::core::analysis::{PortModel, SystemModel};
use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::workloads::prelude::*;

struct Config {
    ports: usize,
    period: u32,
    budget: u32,
    txn_bytes: u64,
    outstanding: usize,
    think: u64,
    seed: u64,
}

/// Runs the configuration and returns `(measured_max, bound)`.
fn measure(cfg: &Config) -> (u64, u64) {
    let critical = TrafficSpec::latency_sensitive(0, 4 << 20, 256, cfg.think).with_total(2_000);
    let (crit_monitor, _d) = TcRegulator::monitor_only(1_000);
    let mut builder = SocBuilder::new(SocConfig::default()).master_full(
        "critical",
        SpecSource::new(critical, cfg.seed),
        MasterKind::Cpu,
        crit_monitor,
        1,
    );
    for i in 0..cfg.ports {
        let (reg, _driver) = TcRegulator::create(RegulatorConfig {
            period_cycles: cfg.period,
            budget_bytes: cfg.budget,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let spec = TrafficSpec::stream((1 + i as u64) << 28, 16 << 20, cfg.txn_bytes, Dir::Write);
        builder = builder.master_full(
            format!("dma{i}"),
            SpecSource::new(spec, cfg.seed + 10 + i as u64),
            MasterKind::Accelerator,
            reg,
            cfg.outstanding,
        );
    }
    let mut soc = builder.build();
    let critical_id = soc.master_id("critical").expect("critical");
    soc.run_until_done(critical_id, u64::MAX / 2)
        .expect("critical finishes");
    let measured = soc.master_stats(critical_id).latency.max();

    let model = SystemModel {
        dram: DramConfig::default(),
        fifo_depth: XbarConfig::default().port_fifo_depth as u64,
        ports: vec![
            PortModel {
                period_cycles: cfg.period as u64,
                budget_bytes: cfg.budget as u64,
                max_outstanding: cfg.outstanding as u64,
                txn_bytes: cfg.txn_bytes,
            };
            cfg.ports
        ],
        critical_beats: 256 / fgqos::sim::axi::BEAT_BYTES,
    };
    let bound = model.critical_delay_bound().expect("bound converges");
    (measured, bound)
}

#[test]
fn measured_latency_never_exceeds_bound() {
    let configs = [
        Config {
            ports: 1,
            period: 1_000,
            budget: 1_024,
            txn_bytes: 512,
            outstanding: 8,
            think: 100,
            seed: 1,
        },
        Config {
            ports: 4,
            period: 1_000,
            budget: 1_024,
            txn_bytes: 512,
            outstanding: 8,
            think: 100,
            seed: 2,
        },
        Config {
            ports: 6,
            period: 1_000,
            budget: 2_048,
            txn_bytes: 1_024,
            outstanding: 8,
            think: 50,
            seed: 3,
        },
        Config {
            ports: 3,
            period: 5_000,
            budget: 4_096,
            txn_bytes: 256,
            outstanding: 4,
            think: 200,
            seed: 4,
        },
        Config {
            ports: 2,
            period: 500,
            budget: 512,
            txn_bytes: 512,
            outstanding: 2,
            think: 500,
            seed: 5,
        },
    ];
    for (i, cfg) in configs.iter().enumerate() {
        let (measured, bound) = measure(cfg);
        assert!(
            measured <= bound,
            "config {i}: measured max {measured} exceeds bound {bound}"
        );
        // The bound should also be meaningful (not astronomically loose):
        // within 50x of the observation.
        assert!(
            bound <= measured.max(1) * 50,
            "config {i}: bound {bound} uselessly loose vs measured {measured}"
        );
    }
}

#[test]
fn bound_tracks_interference_intensity() {
    let mk = |ports: usize| SystemModel {
        dram: DramConfig::default(),
        fifo_depth: 4,
        ports: vec![
            PortModel {
                period_cycles: 1_000,
                budget_bytes: 1_024,
                max_outstanding: 8,
                txn_bytes: 512,
            };
            ports
        ],
        critical_beats: 16,
    };
    let mut last = 0;
    for ports in [0usize, 1, 2, 4, 8] {
        let b = mk(ports).critical_delay_bound().expect("converges");
        assert!(b >= last, "bound must be monotone in port count");
        last = b;
    }
}

#[test]
fn utilization_distinguishes_guaranteed_from_best_effort_configs() {
    let mk = |budget: u64| SystemModel {
        dram: DramConfig::default(),
        fifo_depth: 4,
        ports: vec![
            PortModel {
                period_cycles: 1_000,
                budget_bytes: budget,
                max_outstanding: 8,
                txn_bytes: 512,
            };
            6
        ],
        critical_beats: 16,
    };
    // 1 txn/window per port: worst-case feasible (analysable regime).
    assert!(mk(512).regulated_utilization() < 1.0);
    // 2 txns/window per port: fine on average (row hits), but the
    // worst-case server is oversubscribed — the bound still holds per
    // request (backlog is bounded by outstanding limits), but the
    // metric correctly flags the regime change.
    assert!(mk(1_024).regulated_utilization() > 1.0);
}
