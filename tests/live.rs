//! Live-run determinism properties.
//!
//! The control plane's contract, pinned at the integration boundary:
//!
//! * a windowed live run whose control writes were recorded in a
//!   journal is reproduced **byte-identically** (report) and
//!   **bit-identically** (`Soc::fingerprint`) by replaying the
//!   synthesized scenario — original text plus one `[phase live_ctl_N]`
//!   section per journal entry — as a single monolithic run, under both
//!   the naive and the event-calendar cores (proptest over random
//!   scenarios and random control scripts);
//! * a live run with *no* control traffic is itself nothing but a
//!   segmented monolithic run: same report, same fingerprint;
//! * the steady-state leap engine is invisible to subscribers — frames
//!   and reports from a leap-enabled run match a leap-disabled run
//!   except for the frames' own leap-telemetry block.

use fgqos::runner::{live_replay_report, live_run, LiveEvent, LiveOptions};
use fgqos::serve::live::{BoundaryCmd, ControlWrite};
use fgqos::serve::protocol::ControlSet;
use fgqos::sim::json::Value;
use proptest::prelude::*;

/// A two-master contended scenario with a regulated DMA engine and a
/// background reclaim policy controller (so live writes race a second
/// controller at coincident cycles — the tie-break the journal replay
/// must reproduce).
fn scenario(seed: u64, budget_kb: u64, with_policy: bool) -> String {
    let policy = if with_policy {
        "\n[policy reclaim]\nreserved 2500\nbase 20K\ncontrol 10000\ngain 20\nbusy 256\n"
    } else {
        ""
    };
    format!(
        "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern random
footprint 4M
txn 256
think 700
seed {seed}

[master dma]
kind accel
role best-effort
period 1000
budget {budget_kb}K
pattern seq
base 0x40000000
footprint 16M
txn 512
gap 150
{policy}"
    )
}

/// One scripted control arrival: fire `set` at window boundary `window`.
#[derive(Debug, Clone, Copy)]
struct Scripted {
    window: u64,
    set: ControlSet,
}

fn control_script() -> impl Strategy<Value = Vec<Scripted>> {
    prop::collection::vec(
        (1u64..7, 0u8..3, 1u32..4_096).prop_map(|(window, sel, v)| Scripted {
            window,
            set: match sel {
                0 => ControlSet::Budget(v),
                1 => ControlSet::Period(100 + v),
                _ => ControlSet::Enable(v % 2 == 0),
            },
        }),
        0..4,
    )
}

/// Runs `text` live with `script` injected at its declared boundaries,
/// then replays the synthesized scenario monolithically and requires a
/// byte-identical report and a bit-identical fingerprint.
fn assert_replay_identity(text: &str, script: &[Scripted], opts: &LiveOptions) {
    let mut events = 0usize;
    let outcome = live_run(
        text,
        opts,
        1,
        |b| BoundaryCmd {
            writes: script
                .iter()
                .filter(|s| s.window == b.index)
                .map(|s| ControlWrite {
                    target: "dma".to_string(),
                    set: s.set,
                })
                .collect(),
            abort: false,
        },
        |_e| events += 1,
    )
    .expect("live run succeeds");
    assert!(!outcome.aborted);
    assert_eq!(
        events,
        outcome.frames.len() + outcome.journal.len(),
        "every frame and accepted write reaches the sink"
    );
    let (replay_report, replay_fp) =
        live_replay_report(&outcome.replay_scenario, opts).expect("replay succeeds");
    assert_eq!(
        outcome.report.to_json().to_compact(),
        replay_report.to_json().to_compact(),
        "live report and journal replay must be byte-identical"
    );
    assert_eq!(
        outcome.fingerprint, replay_fp,
        "live fingerprint and journal replay must be bit-identical"
    );
}

proptest! {
    // Naive-core cases step every cycle, so a handful of cases with a
    // modest horizon keeps the suite's wall clock in check while still
    // walking all three register-write families and both controller
    // topologies (with and without the background policy).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random scenario + random control script: live == replay, both cores.
    #[test]
    fn journal_replay_is_identical_under_both_cores(
        seed in 0u64..1_000,
        budget_kb in 1u64..8,
        policy_sel in 0u8..2,
        script in control_script(),
    ) {
        let text = scenario(seed, budget_kb, policy_sel == 1);
        for naive in [false, true] {
            let opts = LiveOptions {
                cycles: 40_000,
                window: 5_000,
                naive: Some(naive),
                leap: Some(!naive),
            };
            assert_replay_identity(&text, &script, &opts);
        }
    }
}

/// With no control traffic the live run is just a segmented monolithic
/// run: the synthesized replay scenario is the original text and both
/// sides agree exactly.
#[test]
fn control_free_live_run_matches_monolithic() {
    let text = scenario(7, 4, true);
    let opts = LiveOptions {
        cycles: 120_000,
        window: 10_000,
        naive: Some(false),
        leap: Some(true),
    };
    let outcome =
        live_run(&text, &opts, 1, |_b| BoundaryCmd::default(), |_e| {}).expect("live run succeeds");
    assert!(outcome.journal.is_empty());
    assert_eq!(
        outcome.replay_scenario, text,
        "an empty journal synthesizes no phases"
    );
    let (replay_report, replay_fp) = live_replay_report(&text, &opts).expect("replay succeeds");
    assert_eq!(
        outcome.report.to_json().to_compact(),
        replay_report.to_json().to_compact()
    );
    assert_eq!(outcome.fingerprint, replay_fp);
}

/// A frame with its `leap` telemetry block removed — everything a
/// subscriber observes about the *simulated machine*.
fn frame_without_leap(frame: &Value) -> Value {
    let mut obj = Value::obj();
    if let Some(entries) = frame.as_obj() {
        for (k, v) in entries {
            if k != "leap" {
                obj.set(k, v.clone());
            }
        }
    }
    obj
}

/// An armed subscription constrains the leap engine to frame and
/// control boundaries, never across them: runs with the engine on and
/// off must stream identical frames (minus the engine's own counters)
/// and produce identical reports and fingerprints.
#[test]
fn leap_engine_is_invisible_to_subscribers() {
    let text = scenario(11, 2, false);
    let script = [
        Scripted {
            window: 2,
            set: ControlSet::Budget(512),
        },
        Scripted {
            window: 5,
            set: ControlSet::Period(400),
        },
    ];
    let run = |leap: bool| {
        live_run(
            &text,
            &LiveOptions {
                cycles: 80_000,
                window: 8_000,
                naive: Some(false),
                leap: Some(leap),
            },
            1,
            |b| BoundaryCmd {
                writes: script
                    .iter()
                    .filter(|s| s.window == b.index)
                    .map(|s| ControlWrite {
                        target: "dma".to_string(),
                        set: s.set,
                    })
                    .collect(),
                abort: false,
            },
            |_e| {},
        )
        .expect("live run succeeds")
    };
    let with_leap = run(true);
    let without_leap = run(false);
    assert_eq!(with_leap.journal, without_leap.journal);
    assert_eq!(with_leap.frames.len(), without_leap.frames.len());
    for (a, b) in with_leap.frames.iter().zip(&without_leap.frames) {
        assert_eq!(
            frame_without_leap(a).to_compact(),
            frame_without_leap(b).to_compact(),
            "leap engine must not change what subscribers observe"
        );
    }
    assert_eq!(
        with_leap.report.to_json().to_compact(),
        without_leap.report.to_json().to_compact()
    );
    assert_eq!(with_leap.fingerprint, without_leap.fingerprint);
}

/// Aborting at a boundary (the server draining) stops the run there:
/// fewer frames than windows, and the outcome says so.
#[test]
fn abort_stops_at_the_boundary() {
    let text = scenario(3, 4, false);
    let outcome = live_run(
        &text,
        &LiveOptions {
            cycles: 50_000,
            window: 5_000,
            naive: Some(false),
            leap: Some(true),
        },
        1,
        |b| BoundaryCmd {
            writes: Vec::new(),
            abort: b.index >= 3,
        },
        |_e| {},
    )
    .expect("live run succeeds");
    assert!(outcome.aborted);
    assert_eq!(
        outcome.frames.len(),
        4,
        "windows 0..=3 frame, then the run stops"
    );
}

/// Events arrive in boundary order: each window's accepted controls are
/// sunk before that window's frame.
#[test]
fn sink_sees_controls_before_their_frame() {
    let text = scenario(5, 4, false);
    let mut order: Vec<(u64, bool)> = Vec::new(); // (window, is_frame)
    let _ = live_run(
        &text,
        &LiveOptions {
            cycles: 30_000,
            window: 10_000,
            naive: Some(false),
            leap: Some(true),
        },
        1,
        |b| BoundaryCmd {
            writes: if b.index == 1 {
                vec![ControlWrite {
                    target: "dma".to_string(),
                    set: ControlSet::Budget(256),
                }]
            } else {
                Vec::new()
            },
            abort: false,
        },
        |e| match e {
            LiveEvent::Control(entry) => order.push((entry.window, false)),
            LiveEvent::Frame(frame) => {
                order.push((frame.get("window").and_then(Value::as_u64).unwrap(), true))
            }
        },
    )
    .expect("live run succeeds");
    assert_eq!(
        order,
        vec![(0, true), (1, false), (1, true), (2, true)],
        "control lands between the frames of its window and the previous one"
    );
}
