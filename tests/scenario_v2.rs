//! Scenario DSL v2 end-to-end properties.
//!
//! Everything the v2 surface promises, pinned at the integration
//! boundary:
//!
//! * phased/faulted scenarios are bit-identical between the naive
//!   per-cycle core and the event-calendar core (the timed program is
//!   part of the schedule, not a side channel);
//! * a snapshot captured *before* a fault fires restores — in memory
//!   and through the serialized blob — into continuations that fire the
//!   remaining schedule exactly where a cold run does;
//! * every ```fgq fenced block in `docs/scenario-format.md` parses, so
//!   the language reference cannot drift from the parser;
//! * every file in `scenarios/` parses and builds;
//! * `fgqos check`, `fgqos <file> --json` and `fgqos submit` agree on
//!   assertion pass/fail, and the submitted report document is
//!   byte-identical to the local `--json` one.

use fgqos::scenario::{load_scenario_text, ScenarioSpec};
use fgqos::sim::axi::MasterId;
use fgqos::sim::snapshot::SocSnapshot;
use fgqos::sim::stats::LatencyStats;
use fgqos::sim::system::Soc;
use fgqos::sim::SnapshotBlob;
use proptest::prelude::*;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Full histogram snapshot: count, min, max and every non-empty bucket.
type LatKey = (u64, u64, u64, Vec<(u64, u64)>);

fn lat_key(l: &LatencyStats) -> LatKey {
    (l.count(), l.min(), l.max(), l.nonzero_buckets().collect())
}

type MasterKey = (u64, u64, u64, u64, u64, LatKey, LatKey);
type DramKey = (u64, u64, u64, u64, u64, u64, u64, LatKey);

/// Statistics-level fingerprint. `Soc::fingerprint()` folds the core
/// selector into its stream (naive and calendar state never compare
/// equal by design), so cross-core equivalence is asserted over the
/// architectural statistics instead — the same observables
/// `tests/fast_forward.rs` pins for hand-built SoCs.
fn stats_fingerprint(soc: &Soc) -> (Vec<MasterKey>, DramKey) {
    let masters = (0..soc.master_count())
        .map(|i| {
            let st = soc.master_stats(MasterId::new(i));
            (
                st.issued_txns,
                st.completed_txns,
                st.bytes_completed,
                st.gate_stall_cycles,
                st.fifo_stall_cycles,
                lat_key(&st.latency),
                lat_key(&st.service_latency),
            )
        })
        .collect();
    let d = soc.dram_stats();
    let dram = (
        d.bytes_completed,
        d.reads,
        d.writes,
        d.row_hits,
        d.row_misses,
        d.bus_busy_cycles,
        d.refreshes,
        lat_key(&d.queue_wait),
    );
    (masters, dram)
}

/// A phased, faulted two-master scenario with every free knob supplied
/// by the caller. The fault family is chosen by `fault_sel` so the
/// proptest walks every event kind through both cores.
fn schedule_scenario(
    phase_at: u64,
    phase_budget: u32,
    fault_at: u64,
    fault_sel: u8,
    seed: u64,
) -> String {
    let fault = match fault_sel % 5 {
        0 => "rogue dma0".to_string(),
        1 => format!("bursty dma0 {} {}", 200 + seed % 400, 300 + seed % 500),
        2 => "halt dma0".to_string(),
        3 => "rogue dma0\nregulator dma0 off".to_string(),
        _ => "refresh_storm 600 40000".to_string(),
    };
    format!(
        "\
clock_mhz 1000

[master cpu]
kind cpu
role critical
pattern random
footprint 4M
txn 256
think 700
seed {seed}

[master dma0]
kind accel
role best-effort
period 1000
budget 4K
pattern seq
base 0x40000000
footprint 16M
txn 512
gap 350

[phase shift]
at {phase_at}
budget dma0 {phase_budget}

[fault jolt]
at {fault_at}
{fault}
"
    )
}

fn build(text: &str, naive: bool) -> Soc {
    let spec = ScenarioSpec::parse(text).expect("generated scenario parses");
    let (mut soc, _fabric) = spec.build();
    soc.set_naive(naive);
    soc
}

proptest! {
    // Each case steps a naive SoC cycle-by-cycle for the full horizon;
    // a handful of cases covers all five fault families without
    // dominating the suite's wall clock.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Timed `[phase]` re-programming and `[fault]` injection land on
    /// the same cycle with the same effect under both execution cores.
    #[test]
    fn phased_fault_scenarios_match_naive(
        phase_at in 20_000u64..120_000,
        budget_sel in 0usize..5,
        fault_at in 60_000u64..160_000,
        fault_sel in 0u8..5,
        seed in 0u64..1_000,
    ) {
        let phase_budget = [512u32, 1_024, 2_048, 8_192, 16_384][budget_sel];
        let text = schedule_scenario(phase_at, phase_budget, fault_at, fault_sel, seed);
        let mut naive = build(&text, true);
        let mut fast = build(&text, false);
        naive.run(200_000);
        fast.run(200_000);
        prop_assert_eq!(
            stats_fingerprint(&naive),
            stats_fingerprint(&fast),
            "cores diverge for phase@{} budget {} fault#{}@{}",
            phase_at,
            phase_budget,
            fault_sel,
            fault_at
        );
    }
}

/// Warm-up budget for the snapshot test; the boundary search gets the
/// usual regulated-scenario slack on top.
const WARMUP: u64 = 60_000;
const QUIESCE_SLACK: u64 = 60_000;
const TOTAL: u64 = 260_000;

/// A snapshot captured before the fault cycle must carry the pending
/// schedule: both the in-memory fork and the blob-restored fork fire
/// the remaining phase and fault exactly where a cold run does.
#[test]
fn pre_fault_snapshot_restores_pending_schedule() {
    // Phase and fault both land *after* the warm boundary, so firing
    // them is entirely the restored schedule's job.
    let text = schedule_scenario(150_000, 1_024, 180_000, 3, 42);

    let mut cold = build(&text, false);
    cold.run(TOTAL);

    let mut warm = build(&text, false);
    warm.run(WARMUP);
    let boundary = warm
        .quiesce_point(QUIESCE_SLACK)
        .expect("regulated scenario quiesces inside the slack")
        .get();
    assert!(
        boundary < 150_000,
        "boundary {boundary} ran past the first scheduled event"
    );
    let snap = warm.snapshot().expect("every component forks");

    let encoded = snap.to_blob(&text).encode();
    let blob = SnapshotBlob::decode(&encoded).expect("fresh blob decodes");
    let spec = ScenarioSpec::parse(&blob.scenario).expect("blob carries the recipe");
    let restored = SocSnapshot::load_into(spec.build().0, &blob).expect("stream loads");

    let mut mem_fork = snap.fork();
    let mut blob_fork = restored.fork();
    mem_fork.run(TOTAL - boundary);
    blob_fork.run(TOTAL - boundary);

    assert_eq!(
        mem_fork.fingerprint(),
        cold.fingerprint(),
        "in-memory fork diverged from the cold run"
    );
    assert_eq!(
        blob_fork.fingerprint(),
        cold.fingerprint(),
        "blob-restored fork diverged from the cold run"
    );
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Every ```fgq fenced block in the language reference must parse:
/// the doc cannot describe syntax the parser rejects. (The `extends`
/// walkthrough references files on disk and is fenced as ```text,
/// deliberately outside this net.)
#[test]
fn docs_examples_parse() {
    let doc = std::fs::read_to_string(repo_path("docs/scenario-format.md"))
        .expect("docs/scenario-format.md exists");
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        match &mut current {
            None if line.trim_start().starts_with("```fgq") => current = Some(String::new()),
            None => {}
            Some(buf) => {
                if line.trim_start().starts_with("```") {
                    blocks.push(current.take().unwrap());
                } else {
                    buf.push_str(line);
                    buf.push('\n');
                }
            }
        }
    }
    assert!(
        blocks.len() >= 5,
        "expected the reference to carry at least 5 fgq examples, found {}",
        blocks.len()
    );
    for (i, block) in blocks.iter().enumerate() {
        if let Err(e) = ScenarioSpec::parse(block) {
            panic!(
                "docs/scenario-format.md fgq block #{} does not parse: {e}\n---\n{block}",
                i + 1
            );
        }
    }
}

/// Every shipped scenario parses and builds. (`fgqos check` in the CI
/// scenario-corpus job additionally *runs* the ones carrying expects.)
#[test]
fn scenario_corpus_parses_and_builds() {
    let dir = repo_path("scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("fgq") {
            continue;
        }
        seen += 1;
        let text = load_scenario_text(path.to_str().expect("utf-8 path"))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let spec = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{}", e.diagnostic(&path.display().to_string())));
        let _ = spec.build();
    }
    assert!(
        seen >= 7,
        "expected the cookbook corpus, found {seen} scenarios"
    );
}

/// Collects a child stream's lines into a shared buffer from a reader
/// thread, so the test can poll without blocking on the pipe.
fn drain(stream: impl std::io::Read + Send + 'static) -> Arc<Mutex<Vec<String>>> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    std::thread::spawn(move || {
        for line in BufReader::new(stream).lines() {
            match line {
                Ok(l) => sink.lock().unwrap().push(l),
                Err(_) => break,
            }
        }
    });
    lines
}

fn wait_for(
    lines: &Arc<Mutex<Vec<String>>>,
    timeout: Duration,
    what: &str,
    pred: impl Fn(&str) -> bool,
) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(l) = lines.lock().unwrap().iter().find(|l| pred(l)) {
            return l.clone();
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; saw: {:?}",
            lines.lock().unwrap()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn fgqos(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fgqos"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("fgqos binary runs")
}

/// `check`, a local `--json` run and a server-side `submit` must agree
/// on assertion pass/fail (exit status), and the submitted report
/// document must be byte-identical to the local `--json` one.
#[test]
fn check_json_and_submit_agree_on_assertions() {
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_fgqos"));
    let mut serve = Command::new(&bin)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let lines = drain(serve.stdout.take().expect("piped stdout"));
    let addr = wait_for(&lines, Duration::from_secs(20), "listen line", |l| {
        l.starts_with("listening on ")
    })
    .trim_start_matches("listening on ")
    .to_string();

    // A failing variant, built by inheritance so it stays one file: the
    // passing scenario plus an impossible byte floor. `extends` takes
    // the parent verbatim, so an absolute path works from any cwd.
    let parent = repo_path("scenarios/rogue-dma.fgq");
    let failing = std::env::temp_dir().join(format!("fgqos-v2-fail-{}.fgq", std::process::id()));
    std::fs::write(
        &failing,
        format!("extends {}\n\nexpect bytes(cpu) > 100G\n", parent.display()),
    )
    .expect("temp scenario writes");

    // Kill the server and drop the temp file even when an assertion
    // below panics, so a red run does not leak a listener.
    struct Cleanup(std::process::Child, PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
            let _ = std::fs::remove_file(&self.1);
        }
    }
    let _cleanup = Cleanup(serve, failing.clone());

    {
        let pass_file = "scenarios/rogue-dma.fgq";
        let fail_file = failing.to_str().expect("utf-8 temp path");

        let check_pass = fgqos(&["check", pass_file]);
        let json_pass = fgqos(&[pass_file, "--json"]);
        let submit_pass = fgqos(&["submit", pass_file, "--addr", &addr]);
        assert!(
            check_pass.status.success(),
            "check must pass: {check_pass:?}"
        );
        assert!(json_pass.status.success(), "--json run must pass");
        assert!(submit_pass.status.success(), "submit must pass");
        assert_eq!(
            String::from_utf8_lossy(&submit_pass.stdout),
            String::from_utf8_lossy(&json_pass.stdout),
            "submitted report must be byte-identical to the local --json document"
        );

        let check_fail = fgqos(&["check", fail_file]);
        let json_fail = fgqos(&[fail_file, "--json"]);
        let submit_fail = fgqos(&["submit", fail_file, "--addr", &addr]);
        for (name, out) in [
            ("check", &check_fail),
            ("--json", &json_fail),
            ("submit", &submit_fail),
        ] {
            assert_eq!(
                out.status.code(),
                Some(1),
                "{name} must exit 1 on a failed assertion; stderr: {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        let stderr = String::from_utf8_lossy(&check_fail.stderr);
        assert!(
            stderr.contains("assertion(s) failed"),
            "failure diagnostic names the assertions: {stderr}"
        );
    }

    let _ = fgqos(&["shutdown", "--addr", &addr]);
}
