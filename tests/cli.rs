//! End-to-end test of the `fgqos` CLI binary against the shipped demo
//! scenario.

use std::process::Command;

fn fgqos() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fgqos"))
}

#[test]
fn runs_demo_scenario() {
    let out = fgqos()
        .args(["scenarios/demo.fgq", "--cycles", "200000"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("simulated 200000 cycles"));
    for name in ["cpu", "dma0", "dma1", "rogue"] {
        assert!(stdout.contains(name), "missing master {name} in report");
    }
    assert!(stdout.contains("qos fabric:"));
    assert!(stdout.contains("best-effort"));
}

#[test]
fn until_done_mode() {
    let out = fgqos()
        .args([
            "scenarios/demo.fgq",
            "--until-done",
            "rogue",
            "--cycles",
            "500000",
            "--quiet",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The rogue master's source is unbounded, so it cannot finish within
    // the cap: the CLI must report that rather than hang.
    assert!(
        stdout.contains("did not finish"),
        "unexpected output: {stdout}"
    );
}

#[test]
fn rejects_missing_file() {
    let out = fgqos()
        .arg("/does/not/exist.fgq")
        .output()
        .expect("binary runs");
    // Runtime failures (unreadable scenario) are exit 1, not the usage
    // error code.
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_exits_zero_on_stdout() {
    for flag in ["--help", "-h"] {
        let out = fgqos().arg(flag).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(0), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage: fgqos"), "{flag} prints usage");
        assert!(stdout.contains("serve"), "usage lists the subcommands");
        assert!(
            out.stderr.is_empty(),
            "{flag} must not write to stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn missing_arguments_exit_two() {
    let out = fgqos().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn json_flag_prints_the_report_document() {
    let out = fgqos()
        .args(["scenarios/demo.fgq", "--cycles", "100000", "--json"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"fgqos.exp-report\""));
    assert!(stdout.contains("dma0"));
}

#[test]
fn check_accepts_a_valid_scenario() {
    let out = fgqos()
        .args(["check", "scenarios/demo.fgq"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scenarios/demo.fgq: ok"));
    assert!(stdout.contains("4 masters"));
}

#[test]
fn check_prints_file_line_diagnostics() {
    let dir = std::env::temp_dir();
    let path = dir.join("fgqos-cli-check-bad.fgq");
    std::fs::write(&path, "clock_mhz 1000\nbogus line here\n").expect("write temp scenario");
    let out = fgqos()
        .args(["check", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "invalid scenarios are exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let want = format!("{}:2: ", path.display());
    assert!(
        stderr.contains(&want),
        "diagnostic must be file:line: message, got: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn rejects_bad_flags() {
    let out = fgqos()
        .args(["x.fgq", "--bogus"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn reports_unknown_master_for_until_done() {
    let out = fgqos()
        .args(["scenarios/demo.fgq", "--until-done", "ghost"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no master named"));
}

#[test]
fn runs_kernel_scenario_until_done() {
    let out = fgqos()
        .args([
            "scenarios/kernels.fgq",
            "--until-done",
            "stencil",
            "--cycles",
            "50000000",
            "--quiet",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("finished at"),
        "kernel should finish: {stdout}"
    );
    assert!(stdout.contains("stencil"));
}

#[test]
fn histogram_flag_prints_distributions() {
    let out = fgqos()
        .args([
            "scenarios/demo.fgq",
            "--cycles",
            "100000",
            "--quiet",
            "--histogram",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("latency histogram for cpu"));
    assert!(stdout.contains('#'));
}

#[test]
fn json_report_carries_the_leap_block() {
    let out = fgqos()
        .args(["scenarios/demo.fgq", "--cycles", "100000", "--json"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "leap_enabled",
        "leap_periods_detected",
        "leap_cycles_skipped",
        "leap_leaps",
    ] {
        assert!(stdout.contains(key), "missing {key} in --json report");
    }
}

#[test]
fn conflicting_leap_env_prints_one_diagnostic() {
    let out = fgqos()
        .args(["scenarios/demo.fgq", "--cycles", "100000", "--quiet"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .env("FGQOS_LEAP", "1")
        .env("FGQOS_NAIVE", "1")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let needle = "FGQOS_LEAP=1 conflicts with FGQOS_NAIVE=1";
    assert_eq!(
        stderr.matches(needle).count(),
        1,
        "exactly one conflict diagnostic expected, got: {stderr}"
    );
    // The naive core must still win: its run stays bit-identical to the
    // default (leaping) fast core, so the rendered stats agree.
    let plain = fgqos()
        .args(["scenarios/demo.fgq", "--cycles", "100000", "--quiet"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    assert!(plain.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&plain.stdout),
        "naive-with-conflict run must match the default core's stats"
    );
}

#[test]
fn no_leap_escape_hatch_preserves_results_and_warns_on_conflict() {
    let with_leap = fgqos()
        .args(["scenarios/demo.fgq", "--cycles", "100000", "--quiet"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    let without = fgqos()
        .args(["scenarios/demo.fgq", "--cycles", "100000", "--quiet"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .env("FGQOS_NO_LEAP", "1")
        .env("FGQOS_LEAP", "1")
        .output()
        .expect("binary runs");
    assert!(with_leap.status.success() && without.status.success());
    assert_eq!(
        String::from_utf8_lossy(&with_leap.stdout),
        String::from_utf8_lossy(&without.stdout),
        "FGQOS_NO_LEAP must not change simulation results"
    );
    assert!(
        String::from_utf8_lossy(&without.stderr)
            .contains("FGQOS_LEAP=1 conflicts with FGQOS_NO_LEAP=1"),
        "conflict diagnostic names the escape hatch"
    );
}

#[test]
fn version_pins_every_format_version() {
    for flag in ["--version", "-V"] {
        let out = fgqos().arg(flag).output().expect("binary runs");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        // The full surface a client may need to match against, pinned
        // line by line: bumping any format constant must show up here.
        let expected = format!(
            "fgqos {}\n\
             serve protocol: 4\n\
             snapshot stream: 2\n\
             hunt report: fgqos.hunt-report v1\n\
             live stream: fgqos.live v1\n\
             control journal: fgqos.control-journal v1\n",
            env!("CARGO_PKG_VERSION"),
        );
        assert_eq!(stdout, expected, "{flag} output drifted");
    }
}
