//! Observability invariants.
//!
//! The metrics/tracing layer promises to be *invisible*: wrapping gates
//! in [`TracingGate`], enabling per-window latency recording and pulling
//! metric snapshots must not change a single simulated cycle or counter
//! versus the bare run (the disabled path is allocation-free and
//! bit-identical — same contract as `FGQOS_NAIVE` in
//! `tests/fast_forward.rs`). Golden-file tests additionally pin the
//! exported Chrome-trace JSON and per-window CSV schemas byte-for-byte;
//! regenerate with `FGQOS_BLESS=1 cargo test --test observability`.

use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::sim::axi::{Dir, MasterId};
use fgqos::sim::gate::OpenGate;
use fgqos::sim::json::Value;
use fgqos::sim::master::TrafficSource;
use fgqos::sim::metrics::MetricValue;
use fgqos::sim::stats::LatencyStats;
use fgqos::sim::system::Soc;
use fgqos::sim::trace::{Trace, TraceEvent, TracingGate};
use fgqos::workloads::prelude::*;
use proptest::prelude::*;
use std::path::Path;

/// One randomly drawn master of the equivalence scenarios.
#[derive(Debug, Clone, Copy)]
struct MasterSpec {
    gate_sel: u8,
    src_sel: u8,
    seed: u64,
    p1: u64,
    p2: u64,
}

fn master_specs() -> impl Strategy<Value = Vec<MasterSpec>> {
    prop::collection::vec(
        (0u8..3, 0u8..3, 0u64..1_000, 0u64..10_000, 0u64..10_000).prop_map(
            |(gate_sel, src_sel, seed, p1, p2)| MasterSpec {
                gate_sel,
                src_sel,
                seed,
                p1,
                p2,
            },
        ),
        1..4,
    )
}

fn make_source(i: usize, m: MasterSpec) -> Box<dyn TrafficSource> {
    let base = (i as u64) << 28;
    match m.src_sel {
        0 => {
            let spec = TrafficSpec {
                gap: m.p1 % 64,
                ..TrafficSpec::stream(base, 1 << 20, 256, Dir::Read)
            }
            .with_total(150);
            Box::new(SpecSource::new(spec, m.seed))
        }
        1 => {
            let spec = TrafficSpec::stream(base, 1 << 20, 128, Dir::Write)
                .with_burst(BurstShape {
                    on_cycles: 50 + m.p1 % 200,
                    off_cycles: 1 + m.p2 % 400,
                })
                .with_total(120);
            Box::new(SpecSource::new(spec, m.seed))
        }
        _ => {
            let spec =
                TrafficSpec::latency_sensitive(base, 1 << 20, 64, 10 + m.p1 % 300).with_total(100);
            Box::new(SpecSource::new(spec, m.seed))
        }
    }
}

/// Builds the SoC; `observe` wraps every gate in a [`TracingGate`] and
/// turns on per-window latency recording — the run under test must not
/// be able to tell the difference.
fn build_soc(specs: &[MasterSpec], observe: Option<&Trace>) -> Soc {
    let cfg = SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    };
    let mut b = SocBuilder::new(cfg);
    if observe.is_some() {
        b = b.record_windows_with_latency(1_000);
    }
    for (i, &m) in specs.iter().enumerate() {
        let name = format!("m{i}");
        let kind = if m.src_sel == 2 {
            MasterKind::Cpu
        } else {
            MasterKind::Accelerator
        };
        let src = make_source(i, m);
        macro_rules! gated {
            ($gate:expr) => {
                match observe {
                    Some(trace) => {
                        b.gated_master(name, src, kind, TracingGate::new($gate, trace.clone()))
                    }
                    None => b.gated_master(name, src, kind, $gate),
                }
            };
        }
        b = match m.gate_sel {
            0 => gated!(OpenGate),
            1 => {
                let (reg, _driver) = TcRegulator::create(RegulatorConfig {
                    period_cycles: 128 + (m.p1 % 2_000) as u32,
                    budget_bytes: 512 + (m.p2 % 8_000) as u32,
                    enabled: true,
                    ..RegulatorConfig::default()
                });
                gated!(reg)
            }
            _ => gated!(fgqos::baselines::memguard::MemGuardGate::new(
                fgqos::baselines::memguard::MemGuardConfig {
                    tick_cycles: 500 + m.p1 % 4_000,
                    budget_bytes: 256 + m.p2 % 4_000,
                    irq_latency_cycles: m.p1 % 300,
                }
            )),
        };
    }
    b.build()
}

type LatKey = (u64, u64, u64, Vec<(u64, u64)>);

fn lat_key(l: &LatencyStats) -> LatKey {
    (l.count(), l.min(), l.max(), l.nonzero_buckets().collect())
}

type MasterKey = (u64, u64, u64, u64, u64, LatKey, LatKey);
type DramKey = (u64, u64, u64, u64, u64, u64, u64, LatKey);

fn fingerprint(soc: &Soc) -> (Vec<MasterKey>, DramKey) {
    let masters = (0..soc.master_count())
        .map(|i| {
            let st = soc.master_stats(MasterId::new(i));
            (
                st.issued_txns,
                st.completed_txns,
                st.bytes_completed,
                st.gate_stall_cycles,
                st.fifo_stall_cycles,
                lat_key(&st.latency),
                lat_key(&st.service_latency),
            )
        })
        .collect();
    let d = soc.dram_stats();
    let dram = (
        d.bytes_completed,
        d.reads,
        d.writes,
        d.row_hits,
        d.row_misses,
        d.bus_busy_cycles,
        d.refreshes,
        lat_key(&d.queue_wait),
    );
    (masters, dram)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full observability (tracing on every gate, per-window latency
    /// recording, metric snapshots pulled mid-run and at the end) leaves
    /// the simulation bit-identical to the bare run.
    #[test]
    fn observability_is_invisible(specs in master_specs()) {
        let mut bare = build_soc(&specs, None);
        let trace = Trace::new();
        let mut observed = build_soc(&specs, Some(&trace));

        let a = bare.run_until_all_done(5_000_000);
        // Pull a metrics snapshot mid-run on the observed SoC: snapshots
        // are pull-based and must not perturb anything either.
        observed.run(1_000);
        let _ = observed.collect_metrics();
        let b = observed.run_until_all_done(5_000_000);

        prop_assert_eq!(a, b, "completion cycles diverge for {:?}", specs);
        prop_assert!(a.is_some(), "scenario deadlocked: {:?}", specs);
        prop_assert_eq!(
            fingerprint(&bare), fingerprint(&observed),
            "stats diverge for {:?}", specs
        );

        // The instrumented run did observe something real.
        let accepts = trace.count_matching(|e| matches!(e, TraceEvent::Accepted { .. }));
        let issued: u64 = (0..observed.master_count())
            .map(|i| observed.master_stats(MasterId::new(i)).issued_txns)
            .sum();
        prop_assert_eq!(accepts as u64 + trace.dropped(), issued + trace.dropped());
        // And the final registry is coherent with the stats it mirrors.
        let reg = observed.collect_metrics();
        for i in 0..observed.master_count() {
            let name = observed.master_name(MasterId::new(i)).to_string();
            let key = format!("soc.master.{name}.bytes_completed");
            let Some(MetricValue::Counter(bytes)) = reg.get(&key) else {
                return Err(TestCaseError::fail(format!("missing {key}")));
            };
            prop_assert_eq!(*bytes, observed.master_stats(MasterId::new(i)).bytes_completed);
        }
    }
}

/// The deterministic scenario behind the golden files and the
/// `trace_capture` example: the README quickstart pair (latency-sensitive
/// CPU reader + regulated greedy-ish DMA), small enough to keep the
/// golden artifacts reviewable.
fn golden_soc(trace: &Trace) -> Soc {
    let (regulator, _driver) = TcRegulator::create(RegulatorConfig {
        period_cycles: 1_000,
        budget_bytes: 2_048,
        enabled: true,
        ..RegulatorConfig::default()
    });
    SocBuilder::new(SocConfig {
        dram: DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        },
        ..SocConfig::default()
    })
    .record_windows_with_latency(1_000)
    .master_full(
        "cpu",
        SequentialSource::reads(0x0000_0000, 256, 20)
            .with_think_time(200)
            .with_footprint(1 << 20),
        MasterKind::Cpu,
        TracingGate::new(OpenGate, trace.clone()),
        1,
    )
    .gated_master(
        "dma",
        SequentialSource::writes(0x4000_0000, 1024, 10).with_think_time(150),
        MasterKind::Accelerator,
        TracingGate::new(regulator, trace.clone()),
    )
    .build()
}

fn run_golden() -> (Soc, Trace) {
    // A regulated greedy-ish port logs one deny per stalled retry cycle,
    // so even this small scenario produces thousands of events; the cap
    // keeps the golden artifact reviewable and exercises the bounded-log
    // path (dropped counter) on a real capture.
    let trace = Trace::with_max_events(256);
    let mut soc = golden_soc(&trace);
    soc.run_until_all_done(1_000_000)
        .expect("golden scenario finishes");
    (soc, trace)
}

/// Compares `actual` against the golden file, or rewrites it when
/// `FGQOS_BLESS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("FGQOS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with FGQOS_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted; rerun with FGQOS_BLESS=1 and review the diff"
    );
}

#[test]
fn chrome_trace_matches_golden() {
    let (soc, trace) = run_golden();
    let json = soc.chrome_trace(&trace);

    // Structural checks first: valid JSON, schema header, the phases the
    // format promises, thread names for both masters.
    let doc = Value::parse(&json).expect("exported trace is valid JSON");
    let other = doc.get("otherData").expect("otherData");
    assert_eq!(
        other.get("schema").and_then(Value::as_str),
        Some("fgqos.chrome-trace")
    );
    assert_eq!(other.get("version").and_then(Value::as_u64), Some(1));
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents");
    let phase = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some(ph))
            .count()
    };
    assert_eq!(phase("M"), 2, "one thread_name per master");
    assert!(phase("X") > 0, "paired transactions become slices");
    assert!(phase("i") > 0, "gate decisions become instants");
    assert!(phase("C") > 0, "window counter samples present");
    assert!(trace.dropped() > 0, "the capped capture saturated");

    check_golden("quickstart_trace.json", &json);
}

#[test]
fn window_series_csv_matches_golden() {
    let (soc, _trace) = run_golden();
    let csv = soc.window_series_csv();

    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("# fgqos.window-series v1"));
    assert_eq!(
        lines.next(),
        Some("master,window,start_cycle,bytes,lat_count,p50_lat,p99_lat")
    );
    // Every data row has exactly the schema's 7 columns and belongs to a
    // registered master.
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 7, "row {line:?}");
        assert!(cols[0] == "cpu" || cols[0] == "dma", "row {line:?}");
    }
    // Window bytes reconcile with the per-master totals.
    for name in ["cpu", "dma"] {
        let id = soc.master_id(name).unwrap();
        let st = soc.master_stats(id);
        let from_csv: u64 = csv
            .lines()
            .skip(2)
            .filter(|l| l.starts_with(&format!("{name},")))
            .map(|l| l.split(',').nth(3).unwrap().parse::<u64>().unwrap())
            .sum();
        let recorded: u64 = st.window.as_ref().unwrap().windows().iter().sum();
        assert_eq!(from_csv, recorded);
        assert!(recorded <= st.bytes_completed);
    }

    check_golden("window_series.csv", &csv);
}

#[test]
fn metrics_snapshot_exports() {
    let (soc, _trace) = run_golden();
    let reg = soc.collect_metrics();

    // Stable hierarchical names for every layer.
    for key in [
        "soc.cycle",
        "soc.master.cpu.completed_txns",
        "soc.master.cpu.latency",
        "soc.master.dma.gate.kind",
        "soc.master.dma.gate.budget_bytes",
        "soc.master.dma.gate.stall_cycles",
        "soc.xbar.arbitration",
        "soc.dram.row_hit_ratio",
    ] {
        assert!(reg.get(key).is_some(), "missing metric {key}");
    }
    // The JSON export round-trips through the parser.
    let doc = reg.to_json();
    let parsed = Value::parse(&doc.to_pretty()).unwrap();
    assert_eq!(
        parsed.get("schema").and_then(Value::as_str),
        Some("fgqos.metrics")
    );
    assert_eq!(
        parsed
            .get("metrics")
            .and_then(|m| m.get("soc.cycle"))
            .and_then(Value::as_u64),
        reg.get("soc.cycle").and_then(|v| match v {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        })
    );
    // The CSV export carries its schema comment and one row per metric
    // (histograms flatten to seven).
    let csv = reg.to_csv();
    assert!(csv.starts_with("# fgqos.metrics v1\nname,type,value\n"));
}

#[test]
fn trace_cap_bounds_memory() {
    // A deliberately tiny cap on the golden scenario: the log stops at
    // the cap, counts the rest, and the Chrome export still works.
    let trace = Trace::with_max_events(16);
    let mut soc = golden_soc(&trace);
    soc.run_until_all_done(1_000_000).expect("finishes");
    assert_eq!(trace.len(), 16);
    assert!(trace.dropped() > 0);
    let json = soc.chrome_trace(&trace);
    Value::parse(&json).expect("capped trace still exports valid JSON");
}
