//! Property-based tests (proptest) on the core invariants of the
//! regulator, the monitor, the baselines and the simulator.

use fgqos::baselines::prelude::*;
use fgqos::core::prelude::*;
use fgqos::prelude::*;
use fgqos::sim::axi::{Dir, MasterId, Request, BEAT_BYTES};
use fgqos::sim::gate::PortGate;
use fgqos::sim::stats::{LatencyStats, WindowRecorder};
use fgqos::workloads::prelude::*;
use proptest::prelude::*;

/// A randomly timed stream of admission attempts against a gate.
#[derive(Debug, Clone)]
struct Attempt {
    gap: u64,
    beats: u16,
}

fn attempts() -> impl Strategy<Value = Vec<Attempt>> {
    prop::collection::vec(
        (0u64..300, 1u16..=64).prop_map(|(gap, beats)| Attempt { gap, beats }),
        1..200,
    )
}

/// Replays attempts against a gate, returning per-window accepted bytes.
fn replay(gate: &mut dyn PortGate, attempts: &[Attempt], period: u64) -> Vec<u64> {
    let mut now = Cycle::ZERO;
    let mut windows: Vec<u64> = Vec::new();
    let mut serial = 0u64;
    for a in attempts {
        now += a.gap;
        gate.on_cycle(now);
        let req = Request::new(
            MasterId::new(0),
            serial,
            serial * 4096,
            a.beats,
            Dir::Read,
            now,
        );
        if gate.try_accept(&req, now).is_accept() {
            let w = (now.get() / period) as usize;
            if windows.len() <= w {
                windows.resize(w + 1, 0);
            }
            windows[w] += req.bytes();
            serial += 1;
        }
    }
    windows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservative charge-at-acceptance regulation never lets a window
    /// exceed its budget.
    #[test]
    fn tc_conservative_never_exceeds_budget(
        atts in attempts(),
        period in 64u32..5_000,
        budget in 16u32..20_000,
    ) {
        let (mut reg, _d) = TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            budget_bytes: budget,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let windows = replay(&mut reg, &atts, period as u64);
        for (i, &w) in windows.iter().enumerate() {
            prop_assert!(w <= budget as u64, "window {i} holds {w} B > budget {budget}");
        }
    }

    /// Final-burst regulation overshoots by at most one request.
    #[test]
    fn tc_final_burst_bounded_by_one_burst(
        atts in attempts(),
        period in 64u32..5_000,
        budget in 16u32..20_000,
    ) {
        let (mut reg, _d) = TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            budget_bytes: budget,
            enabled: true,
            overshoot: OvershootPolicy::FinalBurst,
            ..RegulatorConfig::default()
        });
        let max_burst = 64 * BEAT_BYTES;
        let windows = replay(&mut reg, &atts, period as u64);
        for (i, &w) in windows.iter().enumerate() {
            prop_assert!(
                w <= budget as u64 + max_burst,
                "window {i} holds {w} B > budget {budget} + burst {max_burst}"
            );
        }
    }

    /// The monitor's lifetime byte total equals the sum of accepted
    /// request sizes, no matter the acceptance pattern.
    #[test]
    fn monitor_total_is_exact(
        atts in attempts(),
        period in 64u32..5_000,
        budget in 16u32..20_000,
    ) {
        let (mut reg, d) = TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            budget_bytes: budget,
            enabled: true,
            ..RegulatorConfig::default()
        });
        let windows = replay(&mut reg, &atts, period as u64);
        let accepted: u64 = windows.iter().sum();
        prop_assert_eq!(d.telemetry().total_bytes, accepted);
    }

    /// Once MemGuard's throttle engages, nothing passes until the tick
    /// replenishes.
    #[test]
    fn memguard_throttle_holds_until_tick(
        atts in attempts(),
        tick in 1_000u64..20_000,
        budget in 64u64..10_000,
        irq in 0u64..500,
    ) {
        let mut gate = MemGuardGate::new(MemGuardConfig {
            tick_cycles: tick,
            budget_bytes: budget,
            irq_latency_cycles: irq,
        });
        let mut now = Cycle::ZERO;
        let mut serial = 0u64;
        let mut denied_in_tick: Option<u64> = None;
        for a in &atts {
            now += a.gap;
            gate.on_cycle(now);
            let tick_idx = now.get() / tick;
            let req = Request::new(MasterId::new(0), serial, 0, a.beats, Dir::Read, now);
            let accepted = gate.try_accept(&req, now).is_accept();
            if accepted {
                serial += 1;
                prop_assert_ne!(
                    denied_in_tick, Some(tick_idx),
                    "acceptance after a denial within the same tick"
                );
            } else {
                denied_in_tick = Some(tick_idx);
            }
        }
    }

    /// TDMA admits only inside the port's own slots.
    #[test]
    fn tdma_only_admits_in_slot(
        atts in attempts(),
        slot in 100u64..5_000,
        slots in 2usize..6,
    ) {
        let mine = slots - 1;
        let mut gate = TdmaGate::new(TdmaSchedule::new(slot, slots), vec![mine], 0);
        let mut now = Cycle::ZERO;
        for (i, a) in atts.iter().enumerate() {
            now += a.gap;
            let req = Request::new(MasterId::new(0), i as u64, 0, a.beats, Dir::Read, now);
            if gate.try_accept(&req, now).is_accept() {
                let active = (now.get() / slot) as usize % slots;
                prop_assert_eq!(active, mine, "admitted outside own slot at {}", now);
            }
        }
    }

    /// End-to-end conservation and sanity for arbitrary small SoCs.
    #[test]
    fn soc_conservation_and_latency_sanity(
        masters in 1usize..5,
        txn_bytes_exp in 5u32..11, // 32..1024 bytes
        txns in 10u64..80,
        seed in 0u64..1_000,
    ) {
        let txn_bytes = 1u64 << txn_bytes_exp;
        let cfg = SocConfig {
            dram: DramConfig { t_refi: 0, ..DramConfig::default() },
            ..SocConfig::default()
        };
        let mut b = SocBuilder::new(cfg);
        for i in 0..masters {
            let spec = TrafficSpec {
                pattern: AddressPattern::Random,
                ..TrafficSpec::stream((i as u64) << 28, 1 << 20, txn_bytes, Dir::Read)
            }
            .with_total(txns);
            b = b.master(format!("m{i}"), SpecSource::new(spec, seed + i as u64), MasterKind::Accelerator);
        }
        let mut soc = b.build();
        soc.run_until_all_done(100_000_000).expect("drains");
        let total: u64 = (0..masters)
            .map(|i| soc.master_stats(MasterId::new(i)).bytes_completed)
            .sum();
        prop_assert_eq!(total, soc.dram_stats().bytes_completed);
        prop_assert_eq!(total, masters as u64 * txns * txn_bytes);
        for i in 0..masters {
            let st = soc.master_stats(MasterId::new(i));
            prop_assert!(st.latency.min() > 0);
            prop_assert!(st.latency.max() >= st.latency.percentile(0.5));
            // Service latency never exceeds end-to-end latency.
            prop_assert!(st.service_latency.max() <= st.latency.max());
        }
    }

    /// Latency statistics invariants: percentiles are ordered and
    /// bracketed by min/max; mean is within [min, max].
    #[test]
    fn latency_stats_invariants(values in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut s = LatencyStats::new();
        for &v in &values {
            s.record(v);
        }
        let exact_min = *values.iter().min().unwrap();
        let exact_max = *values.iter().max().unwrap();
        prop_assert_eq!(s.min(), exact_min);
        prop_assert_eq!(s.max(), exact_max);
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let p = s.percentile(q);
            prop_assert!(p >= last, "percentiles must be monotone");
            prop_assert!(p >= exact_min && p <= exact_max);
            last = p;
        }
        prop_assert!(s.mean() >= exact_min as f64 && s.mean() <= exact_max as f64);
    }

    /// WindowRecorder conserves the recorded total.
    #[test]
    fn window_recorder_conserves_total(
        events in prop::collection::vec((0u64..100, 1u64..1_000), 1..200),
        window in 1u64..500,
    ) {
        let mut r = WindowRecorder::new(window);
        let mut now = 0u64;
        let mut total = 0u64;
        for (gap, v) in &events {
            now += gap;
            r.add(Cycle::new(now), *v);
            total += v;
        }
        r.finish(Cycle::new(now + window));
        let sum: u64 = r.windows().iter().sum();
        prop_assert_eq!(sum, total);
    }

    /// Driver bandwidth/budget arithmetic round-trips within one byte
    /// per window.
    #[test]
    fn driver_bandwidth_roundtrip(
        period in 100u32..100_000,
        mibs in 1u32..8_192,
    ) {
        let (_r, d) = TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            ..RegulatorConfig::default()
        });
        let freq = Freq::default();
        let bw = Bandwidth::from_mib_per_s(mibs as f64);
        d.set_bandwidth(bw, freq);
        let back = d.configured_bandwidth(freq);
        // Quantization: at most one byte per window of error.
        let one_byte = Bandwidth::from_bytes_over(1, period as u64, freq);
        prop_assert!(back.bytes_per_s() <= bw.bytes_per_s() + 1.0);
        prop_assert!(
            back.bytes_per_s() + one_byte.bytes_per_s() >= bw.bytes_per_s() * 0.999,
            "round-trip lost more than a byte/window: {} vs {}",
            back.bytes_per_s(),
            bw.bytes_per_s()
        );
    }

    /// DRAM address mapping is a bijection on (bank, row, offset).
    #[test]
    fn dram_mapping_consistent(addr in 0u64..(1 << 34)) {
        let cfg = DramConfig::default();
        let (bank, row) = cfg.map(addr);
        prop_assert!(bank < cfg.banks);
        // Reconstruct the row start and re-map: must agree.
        let row_index = row * cfg.banks as u64 + bank as u64;
        let base = row_index * cfg.row_bytes;
        prop_assert_eq!(cfg.map(base), (bank, row));
        prop_assert_eq!(cfg.map(base + cfg.row_bytes - 1), (bank, row));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cache bookkeeping: fills equal misses, write-backs equal dirty
    /// evictions and never exceed misses.
    #[test]
    fn cache_fill_and_writeback_accounting(
        accesses in prop::collection::vec((0u64..(1 << 16), prop::bool::ANY), 1..400),
    ) {
        use fgqos::sim::cpu::{Cache, CacheConfig, CacheOutcome};
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1 << 12,
            line_bytes: 64,
            ways: 4,
            hit_latency: 1,
        });
        let mut fills = 0u64;
        let mut writebacks = 0u64;
        for &(addr, is_write) in &accesses {
            match c.access(addr, is_write) {
                CacheOutcome::Hit => {}
                CacheOutcome::Miss { writeback } => {
                    fills += 1;
                    if writeback.is_some() {
                        writebacks += 1;
                    }
                }
            }
        }
        prop_assert_eq!(fills, c.stats().misses);
        prop_assert_eq!(writebacks, c.stats().writebacks);
        prop_assert!(writebacks <= fills);
        prop_assert_eq!(c.stats().hits + c.stats().misses, accesses.len() as u64);
    }

    /// A cache never reports a hit for a line it has not filled, and
    /// always hits on an immediate re-access.
    #[test]
    fn cache_rehit_property(addrs in prop::collection::vec(0u64..(1 << 14), 1..200)) {
        use fgqos::sim::cpu::{Cache, CacheConfig, CacheOutcome};
        let mut c = Cache::new(CacheConfig::default());
        for &a in &addrs {
            let _ = c.access(a, false);
            // Immediate re-access of the same address must hit.
            prop_assert_eq!(c.access(a, false), CacheOutcome::Hit);
        }
    }

    /// Trace capture → replay is lossless for arbitrary bounded specs.
    #[test]
    fn trace_capture_replay_lossless(
        txn_exp in 5u32..11,
        gap in 0u64..200,
        total in 1u64..100,
        seed in 0u64..500,
    ) {
        use fgqos::workloads::trace::{capture, TraceSource};
        let spec = TrafficSpec {
            gap,
            ..TrafficSpec::stream(0x1000, 1 << 20, 1 << txn_exp, Dir::Read)
        }
        .with_total(total);
        let mut original = SpecSource::new(spec, seed);
        let records = capture(&mut original, total as usize);
        prop_assert_eq!(records.len() as u64, total);
        let mut replay = TraceSource::new(records);
        let mut check = SpecSource::new(spec, seed);
        loop {
            let a = check.next_request(Cycle::ZERO);
            let b = replay.next_request(Cycle::ZERO);
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.addr, y.addr);
                    prop_assert_eq!(x.beats, y.beats);
                    prop_assert_eq!(x.dir, y.dir);
                    prop_assert_eq!(x.not_before, y.not_before);
                }
                other => prop_assert!(false, "length mismatch: {:?}", other.0.is_some()),
            }
        }
    }

    /// Split-mode regulation keeps each channel within its own budget.
    #[test]
    fn split_rw_budgets_are_independent_caps(
        atts in attempts(),
        period in 64u32..5_000,
        rd_budget in 16u32..10_000,
        wr_budget in 16u32..10_000,
        write_each in prop::collection::vec(prop::bool::ANY, 200),
    ) {
        let (mut reg, _d) = TcRegulator::create(RegulatorConfig {
            period_cycles: period,
            budget_bytes: u32::MAX,
            enabled: true,
            split: Some(SplitBudgets { read_bytes: rd_budget, write_bytes: wr_budget }),
            ..RegulatorConfig::default()
        });
        use fgqos::sim::gate::PortGate;
        let mut now = Cycle::ZERO;
        let mut rd_win = vec![0u64];
        let mut wr_win = vec![0u64];
        for (i, a) in atts.iter().enumerate() {
            now += a.gap;
            reg.on_cycle(now);
            let dir = if write_each[i % write_each.len()] { Dir::Write } else { Dir::Read };
            let req = Request::new(MasterId::new(0), i as u64, i as u64 * 4096, a.beats, dir, now);
            if reg.try_accept(&req, now).is_accept() {
                let w = (now.get() / period as u64) as usize;
                if rd_win.len() <= w {
                    rd_win.resize(w + 1, 0);
                    wr_win.resize(w + 1, 0);
                }
                match dir {
                    Dir::Read => rd_win[w] += req.bytes(),
                    Dir::Write => wr_win[w] += req.bytes(),
                }
            }
        }
        for (i, (&r, &w)) in rd_win.iter().zip(&wr_win).enumerate() {
            prop_assert!(r <= rd_budget as u64, "window {i} read {r} > {rd_budget}");
            prop_assert!(w <= wr_budget as u64, "window {i} write {w} > {wr_budget}");
        }
    }
}

/// A hostile gate making arbitrary admission decisions (failure
/// injection): the SoC must neither deadlock nor violate conservation no
/// matter what a gate does.
#[derive(Debug)]
struct ChaosGate {
    rng_state: u64,
    deny_bias: u64, // deny when (hash % 100) < deny_bias
}

impl fgqos::sim::gate::PortGate for ChaosGate {
    fn try_accept(&mut self, _request: &Request, _now: Cycle) -> fgqos::sim::gate::GateDecision {
        self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (self.rng_state >> 33) % 100 < self.deny_bias {
            fgqos::sim::gate::GateDecision::Deny
        } else {
            fgqos::sim::gate::GateDecision::Accept
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Failure injection: arbitrary (even adversarial) gate decisions
    /// never break conservation, and unless the gate denies everything
    /// the system keeps making progress.
    #[test]
    fn soc_survives_chaotic_gates(
        seeds in prop::collection::vec(0u64..1_000_000, 1..4),
        deny_bias in 0u64..95,
    ) {
        let cfg = SocConfig {
            dram: DramConfig { t_refi: 0, ..DramConfig::default() },
            ..SocConfig::default()
        };
        let mut b = SocBuilder::new(cfg);
        let n = seeds.len();
        for (i, &seed) in seeds.iter().enumerate() {
            let spec = TrafficSpec::stream((i as u64) << 28, 1 << 20, 256, Dir::Read)
                .with_total(200);
            b = b.gated_master(
                format!("m{i}"),
                SpecSource::new(spec, seed),
                MasterKind::Accelerator,
                ChaosGate { rng_state: seed ^ 0xdead_beef, deny_bias },
            );
        }
        let mut soc = b.build();
        let done = soc.run_until_all_done(200_000_000);
        prop_assert!(done.is_some(), "SoC deadlocked under chaotic gating");
        let total: u64 = (0..n)
            .map(|i| soc.master_stats(MasterId::new(i)).bytes_completed)
            .sum();
        prop_assert_eq!(total, soc.dram_stats().bytes_completed);
        prop_assert_eq!(total, n as u64 * 200 * 256);
    }
}
