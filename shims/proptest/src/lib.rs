//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry access, so the
//! workspace vendors the subset of proptest's API its test suites use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! integer range / tuple / `prop::collection::vec` / `prop::bool::ANY`
//! strategies, [`test_runner::ProptestConfig`] and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate, deliberately accepted:
//! - **No shrinking.** A failing case reports the generated inputs
//!   verbatim (they are printed with `Debug`) instead of a minimised
//!   counter-example.
//! - **Deterministic seeding.** Case `i` of test `t` derives its RNG
//!   from `fnv64(t) ⊕ i`, so failures reproduce exactly across runs —
//!   there is no persistence file because there is no nondeterminism.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// xoshiro256++ driving all strategies; seeded per (test, case).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Deterministic RNG for one case of one named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h ^ ((case as u64) << 32 | 0x9e37_79b9);
            let mut s = [0u64; 4];
            for w in &mut s {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` yields
    /// the final value directly and failures are not shrunk.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )+};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A / a);
    impl_tuple!(A / a, B / b);
    impl_tuple!(A / a, B / b, C / c);
    impl_tuple!(A / a, B / b, C / c, D / d);
    impl_tuple!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple!(A / a, B / b, C / c, D / d, E / e, F / f);

    /// `Strategy::generate` through a reference, so strategies can be
    /// shared without cloning.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Element-count bound for [`vec()`]: a fixed size or a half-open /
    /// inclusive range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniformly random booleans (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the real crate's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Fails the current generated case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Declares property tests. Mirrors the real macro's surface for the
/// forms this workspace uses: an optional leading
/// `#![proptest_config(...)]`, then `#[test]`-attributed functions whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!("  ", stringify!($arg), " = "));
                        __s.push_str(&format!("{:?}\n", &$arg));
                    )+
                    __s
                };
                let __outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}:\n{}\ninputs:\n{}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 1u16..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_len_and_map(v in prop::collection::vec((0u64..100, prop::bool::ANY), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            for &(n, _) in &v {
                prop_assert!(n < 100, "element {} out of range", n);
            }
        }

        #[test]
        fn prop_map_applies(d in (0u64..5, 0u64..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(d <= 8);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1_000, 1..50);
        let a = s.generate(&mut TestRng::for_case("t", 3));
        let b = s.generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
        // A different case index exercises the same API; collisions with
        // case 3's value are legal, so only the call is asserted.
        let _c = s.generate(&mut TestRng::for_case("t", 4));
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
