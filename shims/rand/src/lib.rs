//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the *small subset* of `rand`'s API it actually
//! uses: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over integer ranges and `Rng::gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit targets. The exact value stream is
//! not guaranteed to match the real crate (nothing in the workspace
//! depends on it); determinism per seed is.

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Integer range sampling support for [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, as the real crate does.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for synthetic workloads.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words (exposed so deterministic
        /// simulators can fold the generator state into snapshots).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words previously captured
        /// with [`SmallRng::state`] — the restore half of snapshotting.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "streams for different seeds look identical");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3u16..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 gave {heads}/10000");
    }
}
