//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry access, so the
//! workspace vendors the subset of criterion's API its benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `Throughput`, `bench_with_input`, and
//! `Bencher::iter`/`iter_batched`.
//!
//! Statistics are deliberately simple: each benchmark takes
//! `sample_size` wall-clock samples and reports the minimum, median and
//! mean time per iteration (the minimum is the least noisy estimator on
//! a busy machine). Results are printed to stdout in a stable
//! machine-greppable format:
//!
//! ```text
//! bench: <name>  median <t> ns/iter  min <t> ns/iter  [thrpt <n> Melem/s]
//! ```
//!
//! Running with `--test` (as `cargo test` does for `harness = false`
//! bench targets) executes every routine once and skips measurement.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How much setup product to batch per measured chunk. The shim always
/// measures one routine invocation per setup call, so this is a no-op
/// knob kept for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher<'a> {
    samples: usize,
    test_mode: bool,
    result: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    median_ns: f64,
    min_ns: f64,
    mean_ns: f64,
}

fn summarize(mut per_iter_ns: Vec<f64>) -> Sample {
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min_ns = per_iter_ns[0];
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    Sample {
        median_ns,
        min_ns,
        mean_ns,
    }
}

impl Bencher<'_> {
    /// Benchmarks `routine` called back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: how many iterations fit in ~2 ms per sample?
        let cal_start = Instant::now();
        let mut cal_iters = 0u64;
        while cal_start.elapsed() < Duration::from_micros(500) {
            black_box(routine());
            cal_iters += 1;
        }
        let per_iter = cal_start.elapsed().as_nanos() as f64 / cal_iters as f64;
        let iters = ((2e6 / per_iter).ceil() as u64).clamp(1, 10_000_000);

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        *self.result = Some(summarize(samples));
    }

    /// Benchmarks `routine` on fresh input from `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        *self.result = Some(summarize(samples));
    }
}

/// Top-level benchmark harness state.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if let Some(fil) = &self.filter {
            if !name.contains(fil.as_str()) {
                return;
            }
        }
        let mut result = None;
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            result: &mut result,
        };
        f(&mut b);
        if self.test_mode {
            println!("bench: {name}  ok (test mode)");
            return;
        }
        match result {
            Some(s) => {
                let thrpt = match throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  thrpt {:.3} Melem/s", n as f64 * 1e3 / s.median_ns)
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!(
                            "  thrpt {:.3} MiB/s",
                            n as f64 * 1e9 / s.median_ns / (1 << 20) as f64
                        )
                    }
                    None => String::new(),
                };
                println!(
                    "bench: {name}  median {:.1} ns/iter  min {:.1} ns/iter  mean {:.1} ns/iter{thrpt}",
                    s.median_ns, s.min_ns, s.mean_ns
                );
            }
            None => println!("bench: {name}  (no measurement recorded)"),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        let t = self.throughput;
        self.criterion.run_one(&name, t, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        let t = self.throughput;
        self.criterion.run_one(&name, t, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Criterion {
        Criterion {
            sample_size: 3,
            filter: None,
            test_mode: false,
        }
    }

    #[test]
    fn iter_records_a_sample() {
        let mut c = quiet();
        let mut ran = 0u64;
        c.bench_function("smoke_iter", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = quiet();
        let mut setups = 0u64;
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 64]
                },
                |v| black_box(v.len()),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 3);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quiet();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter_batched(|| n, |x| black_box(x * 2), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("zzz".into()),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("abc", |b| {
            ran = true;
            b.iter(|| black_box(1))
        });
        assert!(!ran, "filtered bench must not run");
    }
}
