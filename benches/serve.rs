//! Round-trip benchmarks of the `fgqos-serve` service: submit→result
//! latency over loopback TCP with a real simulator-backed executor,
//! cached vs uncached. Medians feed `BENCH_serve.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use fgqos::runner::{serve_batch_executor, serve_executor};
use fgqos::serve::client::{Client, SubmitOptions};
use fgqos::serve::protocol::{BatchKind, BatchPoint, BatchSpec};
use fgqos::serve::server::{start_with, ServeConfig};
use std::time::Duration;

const CYCLES: u64 = 20_000;

fn scenario(tag: u64) -> String {
    format!(
        "# bench {tag}\nclock_mhz 1000\n\n[master cpu]\nkind cpu\nrole critical\npattern seq\nfootprint 1M\ntxn 256\ntotal 500\n\n[master dma]\nkind accel\nrole best-effort\nperiod 1000\nbudget 2K\npattern seq\nbase 0x40000000\nfootprint 4M\ntxn 512\n"
    )
}

fn bench_roundtrip(c: &mut Criterion) {
    let server = start_with(
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
        serve_executor(),
        serve_batch_executor(),
    )
    .expect("bind loopback");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let opts = SubmitOptions::default();
    let timeout = Duration::from_secs(30);

    let mut g = c.benchmark_group("serve_roundtrip");
    g.sample_size(10);
    // Fresh scenario text per iteration: every submit misses the cache
    // and pays a full simulation.
    let mut tag = 0u64;
    g.bench_function("uncached", |b| {
        b.iter(|| {
            tag += 1;
            client
                .submit_and_wait(&scenario(tag), CYCLES, &opts, timeout)
                .expect("roundtrip")
        });
    });
    // One warmed entry hit over and over: measures protocol + cache
    // overhead alone.
    let warmed = scenario(u64::MAX);
    client
        .submit_and_wait(&warmed, CYCLES, &opts, timeout)
        .expect("warm the cache");
    g.bench_function("cached", |b| {
        b.iter(|| {
            client
                .submit_and_wait(&warmed, CYCLES, &opts, timeout)
                .expect("roundtrip")
        });
    });
    g.finish();

    // Warm-start sweep slices (protocol v2): one 8-point submit_batch
    // against the same 8 points pushed as single-point batches. Both
    // variants pay the identical per-point divergent tail; the batch
    // amortizes the scenario's warm-up + quiesce + snapshot across the
    // slice while the sequential client re-simulates the prefix 8x.
    const WARMUP: u64 = 100_000;
    let points: Vec<BatchPoint> = (0..8)
        .map(|i| BatchPoint {
            period: 1_000,
            budget: 512 << i,
        })
        .collect();
    let batch_spec = |tag: u64, points: Vec<BatchPoint>| BatchSpec {
        scenario: scenario(tag),
        cycles: CYCLES,
        until_done: None,
        warmup: WARMUP,
        points,
        kind: BatchKind::Sweep,
    };
    let mut g = c.benchmark_group("serve_batch");
    g.sample_size(10);
    // Fresh scenario text per iteration keeps every point a cache miss.
    let mut tag = 1_000_000u64;
    g.bench_function("batch8", |b| {
        b.iter(|| {
            tag += 1;
            let ack = client
                .submit_batch(&batch_spec(tag, points.clone()), &opts)
                .expect("submit batch");
            for job in ack.jobs {
                client.wait_report(job, timeout).expect("batched point");
            }
        });
    });
    g.bench_function("sequential8", |b| {
        b.iter(|| {
            tag += 1;
            for p in &points {
                let ack = client
                    .submit_batch(&batch_spec(tag, vec![*p]), &opts)
                    .expect("submit point");
                client
                    .wait_report(ack.jobs[0], timeout)
                    .expect("sequential point");
            }
        });
    });
    g.finish();

    client.shutdown().expect("graceful shutdown");
    server.join();
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);
