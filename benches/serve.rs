//! Round-trip benchmarks of the `fgqos-serve` service: submit→result
//! latency over loopback TCP with a real simulator-backed executor,
//! cached vs uncached. Medians feed `BENCH_serve.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use fgqos::runner::serve_executor;
use fgqos::serve::client::{Client, SubmitOptions};
use fgqos::serve::server::{start, ServeConfig};
use std::time::Duration;

const CYCLES: u64 = 20_000;

fn scenario(tag: u64) -> String {
    format!(
        "# bench {tag}\nclock_mhz 1000\n\n[master cpu]\nkind cpu\nrole critical\npattern seq\nfootprint 1M\ntxn 256\ntotal 500\n\n[master dma]\nkind accel\nrole best-effort\nperiod 1000\nbudget 2K\npattern seq\nbase 0x40000000\nfootprint 4M\ntxn 512\n"
    )
}

fn bench_roundtrip(c: &mut Criterion) {
    let server = start(
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
        serve_executor(),
    )
    .expect("bind loopback");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let opts = SubmitOptions::default();
    let timeout = Duration::from_secs(30);

    let mut g = c.benchmark_group("serve_roundtrip");
    g.sample_size(10);
    // Fresh scenario text per iteration: every submit misses the cache
    // and pays a full simulation.
    let mut tag = 0u64;
    g.bench_function("uncached", |b| {
        b.iter(|| {
            tag += 1;
            client
                .submit_and_wait(&scenario(tag), CYCLES, &opts, timeout)
                .expect("roundtrip")
        });
    });
    // One warmed entry hit over and over: measures protocol + cache
    // overhead alone.
    let warmed = scenario(u64::MAX);
    client
        .submit_and_wait(&warmed, CYCLES, &opts, timeout)
        .expect("warm the cache");
    g.bench_function("cached", |b| {
        b.iter(|| {
            client
                .submit_and_wait(&warmed, CYCLES, &opts, timeout)
                .expect("roundtrip")
        });
    });
    g.finish();

    client.shutdown().expect("graceful shutdown");
    server.join();
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);
