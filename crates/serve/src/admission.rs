//! Per-client ingress admission control — the paper's mechanism applied
//! to the server itself.
//!
//! The paper regulates accelerator ports with tightly-coupled
//! window/budget accounting at the traffic source. `fgqos-serve`
//! dogfoods the same idea one layer up: every client gets its own
//! [`LeakyBucketRegulator`] instance (the continuous-replenish variant
//! of the window regulator, see `fgqos_core::bucket`) charged with the
//! *request bytes* it sends. A flooding client exhausts its own budget
//! and receives 429-style `deny` responses at the protocol layer —
//! before any queueing or simulation work — while every other client's
//! bucket, and therefore its latency, is untouched.
//!
//! The mapping to the paper's terms:
//!
//! | paper (port regulation)      | serve (ingress regulation)           |
//! |------------------------------|--------------------------------------|
//! | window period `P` (cycles)   | [`AdmissionConfig::period_cycles`], 1 cycle = 1 µs wall time |
//! | byte budget `Q` per window   | [`AdmissionConfig::budget_bytes`]    |
//! | burst allowance              | [`AdmissionConfig::depth_bytes`]     |
//! | AXI beats                    | request frame bytes, in [`BEAT_BYTES`] beats |

use fgqos_core::bucket::{BucketConfig, LeakyBucketRegulator};
use fgqos_core::regulator::OvershootPolicy;
use fgqos_sim::axi::{Dir, MasterId, Request, BEAT_BYTES, MAX_BURST_BEATS};
use fgqos_sim::gate::PortGate;
use fgqos_sim::time::Cycle;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Ingress budget applied to every client, independently.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Bytes replenished per [`period_cycles`](Self::period_cycles).
    pub budget_bytes: u32,
    /// Replenishment period in regulator cycles (1 cycle = 1 µs).
    pub period_cycles: u32,
    /// Maximum accumulated credit: the burst a client may send after an
    /// idle stretch.
    pub depth_bytes: u32,
}

impl Default for AdmissionConfig {
    /// 1 MiB/s sustained with a 2 MiB burst allowance — generous for
    /// interactive use, restrictive for floods.
    fn default() -> Self {
        AdmissionConfig {
            budget_bytes: 1 << 20,
            period_cycles: 1_000_000,
            depth_bytes: 2 << 20,
        }
    }
}

struct ClientState {
    bucket: LeakyBucketRegulator,
    accepted: u64,
    denied: u64,
    serial: u64,
}

/// Thread-safe per-client admission regulator bank.
pub struct AdmissionControl {
    cfg: AdmissionConfig,
    start: Instant,
    clients: Mutex<HashMap<String, ClientState>>,
}

impl AdmissionControl {
    /// Creates an empty bank; client regulators are instantiated lazily
    /// on first contact.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionControl {
            cfg,
            start: Instant::now(),
            clients: Mutex::new(HashMap::new()),
        }
    }

    fn now(&self) -> Cycle {
        Cycle::new(self.start.elapsed().as_micros() as u64)
    }

    /// Charges `bytes` of request traffic to `client` and decides
    /// admission. Denied requests debit nothing.
    pub fn admit(&self, client: &str, bytes: u64) -> bool {
        let now = self.now();
        let mut clients = self.clients.lock().expect("admission poisoned");
        let st = clients
            .entry(client.to_string())
            .or_insert_with(|| ClientState {
                bucket: LeakyBucketRegulator::new(BucketConfig {
                    budget_bytes: self.cfg.budget_bytes,
                    period_cycles: self.cfg.period_cycles,
                    depth_bytes: self.cfg.depth_bytes,
                    overshoot: OvershootPolicy::Conservative,
                }),
                accepted: 0,
                denied: 0,
                serial: 0,
            });
        st.bucket.on_cycle(now);
        // All-or-nothing: a frame larger than one max AXI burst is
        // charged as a burst sequence, but only if the whole frame —
        // rounded up to whole beats, which is what the bucket debits —
        // fits the available credit.
        let total_beats = bytes.max(1).div_ceil(BEAT_BYTES);
        if st.bucket.tokens() < total_beats * BEAT_BYTES {
            st.denied += 1;
            return false;
        }
        let mut remaining = total_beats;
        while remaining > 0 {
            let beats = remaining.min(MAX_BURST_BEATS as u64) as u16;
            let req = Request::new(MasterId::new(0), st.serial, 0, beats, Dir::Read, now);
            st.serial += 1;
            let charged = st.bucket.try_accept(&req, now).is_accept();
            debug_assert!(charged, "pre-checked credit must admit every burst");
            remaining -= beats as u64;
        }
        st.accepted += 1;
        true
    }

    /// Per-client `(name, accepted, denied)` counters, sorted by name
    /// for deterministic metrics export.
    pub fn snapshot(&self) -> Vec<(String, u64, u64)> {
        let clients = self.clients.lock().expect("admission poisoned");
        let mut rows: Vec<(String, u64, u64)> = clients
            .iter()
            .map(|(name, st)| (name.clone(), st.accepted, st.denied))
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> AdmissionControl {
        // 1 KiB/s, 4 KiB burst: easy to exhaust within a test.
        AdmissionControl::new(AdmissionConfig {
            budget_bytes: 1 << 10,
            period_cycles: 1_000_000,
            depth_bytes: 4 << 10,
        })
    }

    #[test]
    fn flood_is_denied_after_the_burst_allowance() {
        let ac = tight();
        let mut accepted = 0;
        let mut denied = 0;
        for _ in 0..100 {
            if ac.admit("flood", 1024) {
                accepted += 1;
            } else {
                denied += 1;
            }
        }
        assert!(accepted >= 1, "the initial burst allowance admits");
        assert!(accepted <= 6, "at most depth/frame (+refill slack) admits");
        assert!(denied >= 94, "the flood is back-pressured");
    }

    #[test]
    fn clients_are_isolated() {
        let ac = tight();
        while ac.admit("flood", 2048) {}
        assert!(
            ac.admit("polite", 512),
            "another client's budget is untouched by the flood"
        );
    }

    #[test]
    fn denied_requests_debit_nothing() {
        let ac = tight();
        // Drain to below 2 KiB of credit...
        assert!(ac.admit("c", 3 << 10));
        // ...then an oversized frame is denied without debiting:
        assert!(!ac.admit("c", 4 << 10));
        // the remaining ~1 KiB credit still admits a small frame.
        assert!(ac.admit("c", 512));
    }

    #[test]
    fn snapshot_is_sorted_and_counts() {
        let ac = tight();
        assert!(ac.admit("b", 64));
        assert!(ac.admit("a", 64));
        while ac.admit("b", 4096) {}
        let snap = ac.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[0], ("a".to_string(), 1, 0));
        assert_eq!(snap[1].0, "b");
        assert!(snap[1].1 >= 1 && snap[1].2 >= 1);
    }

    #[test]
    fn zero_byte_frames_still_charge_a_beat() {
        let ac = AdmissionControl::new(AdmissionConfig {
            budget_bytes: 1,
            period_cycles: 1_000_000,
            depth_bytes: BEAT_BYTES as u32,
        });
        assert!(ac.admit("c", 0));
        assert!(!ac.admit("c", 0), "the single beat of credit is spent");
    }
}
