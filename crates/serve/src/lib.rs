//! `fgqos-serve` — a long-running scenario-execution service.
//!
//! The one-shot `fgqos <scenario-file>` CLI pays full process startup per
//! run and shares nothing between requests. This crate turns the same
//! execution path into a std-only TCP service:
//!
//! * [`protocol`] — a framed, newline-delimited JSON protocol
//!   (`submit` / `status` / `result` / `metrics` / `shutdown`), with
//!   versioned `fgqos.serve v1` responses carrying the same
//!   [`fgqos_bench::report::Report`] document the `exp_*` binaries emit.
//! * [`pool`] — a job queue + worker pool on the
//!   `fgqos_bench::sweep` threading model (FIFO order-stable,
//!   `FGQOS_SERVE_THREADS` override), with per-job deadlines and a
//!   graceful drain on shutdown.
//! * [`cache`] — a content-addressed in-memory result cache keyed by a
//!   hash of (scenario text, cycles, options): resubmitting a job
//!   returns byte-identical cached JSON without re-simulating.
//! * [`admission`] — per-client admission control built from our own
//!   [`fgqos_core::bucket::LeakyBucketRegulator`]: the paper's
//!   window/budget regulation applied to the server's own ingress, so a
//!   flooding client is back-pressured (429-style `deny` responses)
//!   while other clients' latency stays bounded.
//! * [`server`] / [`client`] — the TCP service and a small blocking
//!   client used by `fgqos submit`.
//!
//! The crate is deliberately *executor-agnostic*: scenario parsing lives
//! in the umbrella `fgqos` crate (which depends on this one), so the
//! server takes the execution function as an injected [`Executor`]. The
//! umbrella's `fgqos::runner::serve_executor()` supplies the real
//! simulator-backed one; tests inject stubs.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod pool;
pub mod protocol;
pub mod server;

use fgqos_bench::report::Report;
use std::sync::Arc;

/// Executes one scenario job into a [`Report`].
///
/// Implementations must be pure functions of the [`protocol::JobSpec`]:
/// the result cache assumes two jobs with equal specs produce
/// byte-identical reports.
pub type Executor = Arc<dyn Fn(&protocol::JobSpec) -> Result<Report, String> + Send + Sync>;
