//! `fgqos-serve` — a long-running scenario-execution service.
//!
//! The one-shot `fgqos <scenario-file>` CLI pays full process startup per
//! run and shares nothing between requests. This crate turns the same
//! execution path into a std-only TCP service:
//!
//! * [`protocol`] — a framed, newline-delimited JSON protocol
//!   (`submit` / `submit_batch` / `status` / `result` / `metrics` /
//!   `shutdown`), with versioned `fgqos.serve v2` responses carrying the
//!   same [`fgqos_bench::report::Report`] document the `exp_*` binaries
//!   emit.
//! * [`pool`] — a job queue + worker pool on the
//!   `fgqos_bench::sweep` threading model (FIFO order-stable,
//!   `FGQOS_SERVE_THREADS` override), with per-job deadlines and a
//!   graceful drain on shutdown. Workers have stable lane identities:
//!   a `submit_batch`'s uncached points are pinned to one lane so the
//!   warm boundary snapshot is captured once and forked per point.
//! * [`cache`] — a content-addressed in-memory result cache keyed by a
//!   hash of (scenario text, cycles, options): resubmitting a job
//!   returns byte-identical cached JSON without re-simulating.
//! * [`admission`] — per-client admission control built from our own
//!   [`fgqos_core::bucket::LeakyBucketRegulator`]: the paper's
//!   window/budget regulation applied to the server's own ingress, so a
//!   flooding client is back-pressured (429-style `deny` responses)
//!   while other clients' latency stays bounded.
//! * [`server`] / [`client`] — the TCP service and a small blocking
//!   client used by `fgqos submit`.
//!
//! The crate is deliberately *executor-agnostic*: scenario parsing lives
//! in the umbrella `fgqos` crate (which depends on this one), so the
//! server takes the execution function as an injected [`Executor`]. The
//! umbrella's `fgqos::runner::serve_executor()` supplies the real
//! simulator-backed one; tests inject stubs.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod coordinator;
pub mod live;
pub mod pool;
pub mod protocol;
pub mod server;

use fgqos_bench::report::Report;
use std::sync::Arc;

/// Executes one scenario job into a [`Report`].
///
/// Implementations must be pure functions of the [`protocol::JobSpec`]:
/// the result cache assumes two jobs with equal specs produce
/// byte-identical reports.
pub type Executor = Arc<dyn Fn(&protocol::JobSpec) -> Result<Report, String> + Send + Sync>;

/// Executes a warm-start batch: one report per point of the passed
/// [`protocol::BatchSpec`], in point order.
///
/// The pool hands an executor only the *uncached* points of a
/// submission, always on a single worker lane — the intended
/// implementation (the umbrella's `fgqos::runner::serve_batch_executor`)
/// warms the scenario once to a quiesced boundary, captures it as a
/// `SocSnapshot`, and forks it per point. Like [`Executor`], the result
/// must be a pure function of `(spec, point)` so the per-point cache
/// stays byte-deterministic; a returned `Err` fails every point of the
/// call.
pub type BatchExecutor =
    Arc<dyn Fn(&protocol::BatchSpec) -> Result<Vec<Report>, String> + Send + Sync>;

/// A [`BatchExecutor`] for deployments without warm-start support: every
/// `submit_batch` fails with a stable error message. This is what
/// [`server::start`] installs; [`server::start_with`] takes a real one.
pub fn unsupported_batch_executor() -> BatchExecutor {
    Arc::new(|_spec| Err("this server has no batch executor installed".into()))
}

/// Serves the v3 `snapshot` op: warms `(scenario, warmup)` to a
/// quiesced boundary and returns it as an encoded snapshot blob
/// (`Ok(None)` when the scenario never quiesces). The umbrella's
/// `fgqos::runner::warm_boundary_blob` is the real implementation;
/// must be a pure function of its inputs like the other executors.
pub type SnapshotExecutor = Arc<dyn Fn(&str, u64) -> Result<Option<Vec<u8>>, String> + Send + Sync>;

/// A [`SnapshotExecutor`] for deployments without snapshot support:
/// every `snapshot` request fails with a stable error message.
pub fn unsupported_snapshot_executor() -> SnapshotExecutor {
    Arc::new(|_scenario, _warmup| Err("this server has no snapshot executor installed".into()))
}

/// Runs a v4 live job to completion against its [`live::LiveSession`]:
/// execute the scenario in windows, publish one frame per window, apply
/// and journal queued control writes at boundaries, and `finish` the
/// session with the final report and replay scenario (or an error).
///
/// The server spawns one dedicated thread per live run around this call
/// (live runs are long-lived streams, so they never occupy a pool
/// worker lane). The umbrella's `fgqos::runner::serve_live_executor` is
/// the real implementation. A returned `Err` is recorded on the session
/// when the executor did not already `finish` it.
pub type LiveExecutor =
    Arc<dyn Fn(&protocol::LiveSpec, Arc<live::LiveSession>) -> Result<(), String> + Send + Sync>;

/// A [`LiveExecutor`] for deployments without live-run support: every
/// new-run `subscribe` fails with a stable error message.
pub fn unsupported_live_executor() -> LiveExecutor {
    Arc::new(|_spec, _session| Err("this server has no live executor installed".into()))
}
