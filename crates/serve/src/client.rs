//! A small blocking client for the `fgqos.serve` protocol.
//!
//! This is what `fgqos submit` and the integration tests use: one TCP
//! connection, synchronous request/response, polling for results. It
//! has no async machinery on purpose — the protocol is strictly
//! one-response-per-request, so a `BufReader` over the socket is all
//! the state a client needs.

use crate::live::LIVE_SCHEMA;
use crate::protocol::{BatchSpec, ControlSet, LiveSpec, MetricsFormat, SERVE_SCHEMA};
use fgqos_sim::json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read or write).
    Io(std::io::Error),
    /// The server's response was missing, unparsable, or off-schema.
    Protocol(String),
    /// The server denied the submission at admission control.
    Denied(String),
    /// The job finished in a non-`done` state (`failed` / `expired`).
    Job(String),
    /// The result did not arrive within the caller's wait budget.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Denied(m) => write!(f, "denied: {m}"),
            ClientError::Job(m) => write!(f, "job error: {m}"),
            ClientError::Timeout => write!(f, "timed out waiting for the result"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The `submit` acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitAck {
    /// Server-assigned job id.
    pub job: u64,
    /// `true` when the job was answered from the result cache.
    pub cached: bool,
}

/// Options attached to a submission (admission principal, deadline).
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// `--until-done <master>`: stop when this master's queue drains.
    pub until_done: Option<String>,
    /// Admission-control principal; the server defaults to the peer ip.
    pub client: Option<String>,
    /// Queue deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// The `submit_batch` acknowledgement: one job per point, in point
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchAck {
    /// Server-assigned job ids, parallel to the submitted points.
    pub jobs: Vec<u64>,
    /// Per-point cache hits, parallel to `jobs`.
    pub cached: Vec<bool>,
    /// Worker lane the uncached remainder was pinned to (`None` when
    /// the whole batch was answered from the cache).
    pub lane: Option<usize>,
}

/// A blocking connection to a `fgqos serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        // Frames are small and strictly request/response: Nagle only
        // adds latency here.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one raw request frame and reads the matching response.
    ///
    /// Schema and version are checked; `ok` is not — callers decide how
    /// to treat application-level errors.
    pub fn request(&mut self, request: &Value) -> Result<Value, ClientError> {
        self.writer.write_all(request.to_compact().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a response arrived".into(),
            ));
        }
        let doc = Value::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparsable response: {e}")))?;
        if doc.get("schema").and_then(Value::as_str) != Some(SERVE_SCHEMA) {
            return Err(ClientError::Protocol(
                "response missing serve schema".into(),
            ));
        }
        Ok(doc)
    }

    fn expect_ok(doc: Value) -> Result<Value, ClientError> {
        if doc.get("ok") == Some(&Value::Bool(true)) {
            return Ok(doc);
        }
        let message = doc
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("unspecified server error")
            .to_string();
        if doc.get("denied") == Some(&Value::Bool(true)) {
            Err(ClientError::Denied(message))
        } else {
            Err(ClientError::Job(message))
        }
    }

    /// Submits a scenario for execution.
    pub fn submit(
        &mut self,
        scenario: &str,
        cycles: u64,
        opts: &SubmitOptions,
    ) -> Result<SubmitAck, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("submit"));
        req.set("scenario", Value::str(scenario));
        req.set("cycles", Value::from(cycles));
        if let Some(u) = &opts.until_done {
            req.set("until_done", Value::str(u.clone()));
        }
        if let Some(c) = &opts.client {
            req.set("client", Value::str(c.clone()));
        }
        if let Some(d) = opts.deadline_ms {
            req.set("deadline_ms", Value::from(d));
        }
        let doc = Self::expect_ok(self.request(&req)?)?;
        let job = doc
            .get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit ack missing 'job'".into()))?;
        let cached = doc.get("cached") == Some(&Value::Bool(true));
        Ok(SubmitAck { job, cached })
    }

    /// Submits a warm-start sweep slice (protocol v2).
    ///
    /// Every point gets its own job id; poll them with
    /// [`wait_report`](Self::wait_report) like ordinary submissions.
    pub fn submit_batch(
        &mut self,
        spec: &BatchSpec,
        opts: &SubmitOptions,
    ) -> Result<BatchAck, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("submit_batch"));
        req.set("scenario", Value::str(spec.scenario.clone()));
        req.set("cycles", Value::from(spec.cycles));
        if let Some(u) = &spec.until_done {
            req.set("until_done", Value::str(u.clone()));
        }
        req.set("warmup", Value::from(spec.warmup));
        req.set("kind", Value::str(spec.kind.as_str()));
        let mut points = Value::arr();
        for p in &spec.points {
            let mut point = Value::obj();
            point.set("period", Value::from(p.period));
            point.set("budget", Value::from(p.budget));
            points.push(point);
        }
        req.set("points", points);
        if let Some(c) = &opts.client {
            req.set("client", Value::str(c.clone()));
        }
        if let Some(d) = opts.deadline_ms {
            req.set("deadline_ms", Value::from(d));
        }
        let doc = Self::expect_ok(self.request(&req)?)?;
        let jobs = doc
            .get("jobs")
            .and_then(Value::as_arr)
            .ok_or_else(|| ClientError::Protocol("submit_batch ack missing 'jobs'".into()))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| ClientError::Protocol("non-integer job id".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let cached = doc
            .get("cached")
            .and_then(Value::as_arr)
            .ok_or_else(|| ClientError::Protocol("submit_batch ack missing 'cached'".into()))?
            .iter()
            .map(|v| v == &Value::Bool(true))
            .collect();
        let lane = doc.get("lane").and_then(Value::as_u64).map(|l| l as usize);
        Ok(BatchAck { jobs, cached, lane })
    }

    /// Bounds how long a single response read may block (used by the
    /// coordinator's forwarding paths so a hung worker is detected
    /// instead of wedging the forward thread forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends a v3 liveness probe; any transport or schema failure means
    /// the peer is not a healthy serve endpoint.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("ping"));
        Self::expect_ok(self.request(&req)?).map(|_| ())
    }

    /// Announces a worker's serve address to a coordinator (v3);
    /// returns the coordinator's live worker count.
    pub fn register_worker(&mut self, addr: &str) -> Result<u64, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("register_worker"));
        req.set("addr", Value::str(addr));
        let doc = Self::expect_ok(self.request(&req)?)?;
        doc.get("workers")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("register ack missing 'workers'".into()))
    }

    /// Fetches a job's result response once (no waiting).
    pub fn result(&mut self, job: u64) -> Result<Value, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("result"));
        req.set("job", Value::from(job));
        self.request(&req)
    }

    /// Polls until the job's `Report` JSON document is available.
    ///
    /// Returns the embedded `"report"` value. Fails fast on `failed` /
    /// `expired` jobs; gives up after `timeout`.
    ///
    /// Polling backs off adaptively: most scenario runs finish in well
    /// under a millisecond, so the first re-poll comes after ~100 µs and
    /// the interval doubles up to a 5 ms ceiling. Short jobs no longer
    /// pay a fixed 5 ms latency floor, while long jobs converge to the
    /// old polling rate instead of hammering the server.
    pub fn wait_report(&mut self, job: u64, timeout: Duration) -> Result<Value, ClientError> {
        const FIRST_POLL: Duration = Duration::from_micros(100);
        const MAX_POLL: Duration = Duration::from_millis(5);
        let give_up = Instant::now() + timeout;
        let mut backoff = FIRST_POLL;
        loop {
            let doc = Self::expect_ok(self.result(job)?)?;
            match doc.get("state").and_then(Value::as_str) {
                Some("done") => {
                    return doc
                        .get("report")
                        .cloned()
                        .ok_or_else(|| ClientError::Protocol("done job missing report".into()));
                }
                Some("queued") | Some("running") => {}
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected job state {other:?}"
                    )))
                }
            }
            if Instant::now() >= give_up {
                return Err(ClientError::Timeout);
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(MAX_POLL);
        }
    }

    /// Submits and waits for the report in one call.
    pub fn submit_and_wait(
        &mut self,
        scenario: &str,
        cycles: u64,
        opts: &SubmitOptions,
        timeout: Duration,
    ) -> Result<(SubmitAck, Value), ClientError> {
        let ack = self.submit(scenario, cycles, opts)?;
        let report = self.wait_report(ack.job, timeout)?;
        Ok((ack, report))
    }

    /// Fetches the server's metrics registry export.
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<Value, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("metrics"));
        req.set(
            "format",
            Value::str(match format {
                MetricsFormat::Json => "json",
                MetricsFormat::Csv => "csv",
            }),
        );
        Self::expect_ok(self.request(&req)?)
    }

    /// Requests a graceful drain-and-stop; returns the drain summary
    /// response once the server is quiescent.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("shutdown"));
        Self::expect_ok(self.request(&req)?)
    }

    /// Starts a live run (v4 `subscribe`, new-run mode) and returns its
    /// run id. After this call the connection is **streaming**: read
    /// frames with [`next_live_frame`](Self::next_live_frame) until it
    /// returns the end-of-stream object; only then is the connection
    /// usable for ordinary requests again.
    pub fn subscribe(&mut self, spec: &LiveSpec, client: Option<&str>) -> Result<u64, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("subscribe"));
        req.set("scenario", Value::str(spec.scenario.clone()));
        req.set("cycles", Value::from(spec.cycles));
        req.set("window", Value::from(spec.window));
        if spec.pace_ms > 0 {
            req.set("pace_ms", Value::from(spec.pace_ms));
        }
        if let Some(c) = client {
            req.set("client", Value::str(c));
        }
        let doc = Self::expect_ok(self.request(&req)?)?;
        doc.get("run")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("subscribe ack missing 'run'".into()))
    }

    /// Attaches to an already-running live run (v4 `subscribe`, attach
    /// mode). Streaming semantics as in [`subscribe`](Self::subscribe).
    pub fn subscribe_run(&mut self, run: u64) -> Result<u64, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("subscribe"));
        req.set("run", Value::from(run));
        let doc = Self::expect_ok(self.request(&req)?)?;
        doc.get("run")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("subscribe ack missing 'run'".into()))
    }

    /// Reads the next streamed object after a subscribe: a telemetry
    /// frame (`"stream":"frame"`) or the end-of-stream object
    /// (`"stream":"end"`). The caller decides when to stop by
    /// inspecting `"stream"`.
    pub fn next_live_frame(&mut self) -> Result<Value, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("connection closed mid-stream".into()));
        }
        let doc = Value::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparsable frame: {e}")))?;
        if doc.get("schema").and_then(Value::as_str) != Some(LIVE_SCHEMA) {
            return Err(ClientError::Protocol("frame missing live schema".into()));
        }
        Ok(doc)
    }

    /// Queues a register write against a live run (v4 `control`);
    /// returns its position in the run's pending queue. Use a separate
    /// connection when another one is mid-stream.
    pub fn control(&mut self, run: u64, target: &str, set: ControlSet) -> Result<u64, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("control"));
        req.set("run", Value::from(run));
        req.set("target", Value::str(target));
        req.set("set", Value::str(set.key()));
        req.set("value", set.value());
        let doc = Self::expect_ok(self.request(&req)?)?;
        doc.get("queued")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("control ack missing 'queued'".into()))
    }

    /// Fetches a live run's journal document (v4 `journal`): control
    /// journal, lifecycle state, and — once the run finished — the
    /// synthesized replay scenario plus the final report.
    pub fn journal(&mut self, run: u64) -> Result<Value, ClientError> {
        let mut req = Value::obj();
        req.set("op", Value::str("journal"));
        req.set("run", Value::from(run));
        Self::expect_ok(self.request(&req)?)
    }
}
