//! The fleet coordinator: one frontend speaking the ordinary
//! `fgqos.serve` protocol, fanning work out to registered worker
//! processes.
//!
//! A coordinator owns no simulator. Workers — full `fgqos-serve`
//! servers, usually one process per core group — announce themselves
//! with the v3 `register_worker` op, and the coordinator forwards
//! `submit` / `submit_batch` traffic to them over the normal [`Client`]:
//!
//! * **Placement** is least-loaded: every forward picks the live worker
//!   with the fewest in-flight coordinator jobs.
//! * **Sharding**: a `submit_batch`'s uncached points are split into
//!   contiguous slices, one per live worker, so an N-point sweep warms
//!   on (up to) N processes concurrently while each slice still shares
//!   its warm boundary within its worker. Results merge back in point
//!   order under per-point job ids, exactly like a single server.
//! * **Fault tolerance**: a heartbeat (`ping`) thread marks unreachable
//!   workers dead, and any forward that hits a dead, killed or hung
//!   worker re-queues its jobs onto the remaining fleet. Because
//!   executors are pure functions of their specs, a re-run returns the
//!   byte-identical report the lost worker would have produced.
//! * **Caching**: the coordinator keeps its own content-addressed
//!   [`ResultCache`] in front of the fleet — optionally persistent
//!   ([`CoordinatorConfig::cache_dir`]), so repeat submissions are
//!   answered byte-identically even across coordinator restarts.
//!
//! `status` / `result` / `metrics` / `ping` are answered locally;
//! `snapshot` is forwarded to a live worker; `shutdown` drains the
//! in-flight forwards, shuts the workers down, then stops the
//! coordinator itself.

use crate::cache::{batch_point_key, job_key, ResultCache};
use crate::client::{Client, ClientError, SubmitOptions};
use crate::pool::JobState;
#[cfg(test)]
use crate::protocol::BatchKind;
use crate::protocol::{
    error_response, parse_request, read_frame, response_head, BatchPoint, BatchSpec, FrameError,
    JobSpec, MetricsFormat, Request, DEFAULT_MAX_FRAME_BYTES,
};
use fgqos_sim::json::Value;
use fgqos_sim::metrics::MetricsRegistry;
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Coordinator configuration; every field has a usable default.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Listen address. Port 0 picks a free port.
    pub addr: String,
    /// Per-frame byte cap on the wire.
    pub max_frame_bytes: usize,
    /// Directory for a persistent result cache; `None` keeps it in
    /// memory only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Worker heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
    /// Read timeout on forwarded requests — the hung-worker detector.
    pub forward_read_timeout_ms: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            cache_dir: None,
            heartbeat_ms: 250,
            forward_read_timeout_ms: 5_000,
        }
    }
}

/// One registered worker.
struct WorkerEntry {
    addr: String,
    in_flight: AtomicU64,
    alive: AtomicBool,
}

struct FlightState {
    active: u64,
    draining: bool,
}

/// Why a forward attempt did not produce a report.
enum Forward {
    /// The worker is unreachable, dead or hung: re-queue elsewhere.
    Down(String),
    /// The worker answered with a deterministic failure: do not retry.
    Fail(String),
}

fn classify(e: ClientError) -> Forward {
    match e {
        ClientError::Io(_) | ClientError::Protocol(_) | ClientError::Timeout => {
            Forward::Down(e.to_string())
        }
        ClientError::Denied(m) | ClientError::Job(m) => Forward::Fail(m),
    }
}

/// A job's lifecycle state plus its report once done.
type JobSlot = (JobState, Option<Arc<Value>>);

/// One `submit_batch` ack entry: the point's job id, plus its report
/// when the point was answered from the cache.
type BatchAckEntry = (u64, Option<Arc<Value>>);

/// Shared state of a running coordinator.
pub struct CoordinatorCore {
    workers: Mutex<Vec<Arc<WorkerEntry>>>,
    jobs: Mutex<HashMap<u64, JobSlot>>,
    next_job: AtomicU64,
    /// The fleet-level content-addressed result cache.
    pub cache: ResultCache,
    flight: Mutex<FlightState>,
    idle: Condvar,
    submitted: AtomicU64,
    executed: AtomicU64,
    failed: AtomicU64,
    requeued: AtomicU64,
    stop_heartbeat: AtomicBool,
    forward_read_timeout: Duration,
    frames: AtomicU64,
    malformed: AtomicU64,
}

impl CoordinatorCore {
    fn new(cache: ResultCache, forward_read_timeout: Duration) -> Self {
        CoordinatorCore {
            workers: Mutex::new(Vec::new()),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            cache,
            flight: Mutex::new(FlightState {
                active: 0,
                draining: false,
            }),
            idle: Condvar::new(),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            stop_heartbeat: AtomicBool::new(false),
            forward_read_timeout,
            frames: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
        }
    }

    /// One liveness probe against a serve endpoint.
    fn probe(addr: &str) -> bool {
        match Client::connect(addr) {
            Ok(mut c) => {
                let _ = c.set_read_timeout(Some(Duration::from_millis(2_000)));
                c.ping().is_ok()
            }
            Err(_) => false,
        }
    }

    /// Registers (or revives) a worker after probing it; returns the
    /// live worker count.
    pub fn register_worker(&self, addr: &str) -> Result<usize, String> {
        if !Self::probe(addr) {
            return Err(format!("worker at {addr} did not answer a ping"));
        }
        let mut workers = self.workers.lock().expect("coordinator poisoned");
        // A restarted worker re-registers the same address: drop the
        // dead entry rather than double-counting it.
        workers.retain(|w| w.addr != addr || w.alive.load(Ordering::Relaxed));
        if !workers.iter().any(|w| w.addr == addr) {
            workers.push(Arc::new(WorkerEntry {
                addr: addr.to_string(),
                in_flight: AtomicU64::new(0),
                alive: AtomicBool::new(true),
            }));
        }
        Ok(workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .count())
    }

    fn live_workers(&self) -> Vec<Arc<WorkerEntry>> {
        self.workers
            .lock()
            .expect("coordinator poisoned")
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .cloned()
            .collect()
    }

    /// Number of live workers.
    pub fn live_worker_count(&self) -> usize {
        self.live_workers().len()
    }

    /// Least-loaded placement: the live worker with the fewest
    /// in-flight coordinator forwards (lowest index on ties).
    fn pick_worker(&self) -> Option<Arc<WorkerEntry>> {
        self.live_workers()
            .into_iter()
            .min_by_key(|w| w.in_flight.load(Ordering::Relaxed))
    }

    fn new_job(&self, state: JobState, report: Option<Arc<Value>>) -> u64 {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed) + 1;
        self.jobs
            .lock()
            .expect("coordinator poisoned")
            .insert(id, (state, report));
        self.submitted.fetch_add(1, Ordering::Relaxed);
        id
    }

    fn finish_job(&self, id: u64, report: Arc<Value>) {
        self.jobs
            .lock()
            .expect("coordinator poisoned")
            .insert(id, (JobState::Done, Some(report)));
        self.executed.fetch_add(1, Ordering::Relaxed);
    }

    fn fail_job(&self, id: u64, message: String) {
        self.jobs
            .lock()
            .expect("coordinator poisoned")
            .insert(id, (JobState::Failed(message), None));
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job's current state.
    pub fn status(&self, id: u64) -> Option<JobState> {
        self.jobs
            .lock()
            .expect("coordinator poisoned")
            .get(&id)
            .map(|(s, _)| s.clone())
    }

    /// A job's state plus its report once done.
    pub fn result(&self, id: u64) -> Option<(JobState, Option<Arc<Value>>)> {
        self.jobs
            .lock()
            .expect("coordinator poisoned")
            .get(&id)
            .cloned()
    }

    /// Reserves `n` forward slots, refusing when draining.
    fn begin_flights(&self, n: u64) -> Result<(), String> {
        let mut f = self.flight.lock().expect("coordinator poisoned");
        if f.draining {
            return Err("coordinator is shutting down".into());
        }
        f.active += n;
        Ok(())
    }

    fn end_flight(&self) {
        let mut f = self.flight.lock().expect("coordinator poisoned");
        f.active -= 1;
        if f.active == 0 {
            self.idle.notify_all();
        }
    }

    fn connect_worker(&self, worker: &WorkerEntry) -> Result<Client, Forward> {
        let client = Client::connect(&worker.addr).map_err(classify)?;
        let _ = client.set_read_timeout(Some(self.forward_read_timeout));
        Ok(client)
    }

    /// Polls a forwarded job on `client` until it resolves, watching
    /// the worker's liveness between polls so a heartbeat-detected
    /// death aborts promptly.
    fn poll_report(
        &self,
        worker: &WorkerEntry,
        client: &mut Client,
        job: u64,
    ) -> Result<Value, Forward> {
        let mut backoff = Duration::from_micros(200);
        loop {
            if !worker.alive.load(Ordering::Relaxed) {
                return Err(Forward::Down("worker marked dead by heartbeat".into()));
            }
            let doc = client.result(job).map_err(classify)?;
            if doc.get("ok") != Some(&Value::Bool(true)) {
                let message = doc
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified worker error")
                    .to_string();
                return Err(Forward::Fail(message));
            }
            match doc.get("state").and_then(Value::as_str) {
                Some("done") => {
                    return doc
                        .get("report")
                        .cloned()
                        .ok_or_else(|| Forward::Down("done job missing its report".into()))
                }
                Some("queued") | Some("running") => {}
                other => return Err(Forward::Fail(format!("unexpected job state {other:?}"))),
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(5));
        }
    }

    fn forward_submit(&self, worker: &WorkerEntry, spec: &JobSpec) -> Result<Value, Forward> {
        let mut client = self.connect_worker(worker)?;
        let opts = SubmitOptions {
            until_done: spec.until_done.clone(),
            client: Some("fgqos-coordinator".into()),
            deadline_ms: None,
        };
        let ack = client
            .submit(&spec.scenario, spec.cycles, &opts)
            .map_err(classify)?;
        self.poll_report(worker, &mut client, ack.job)
    }

    fn forward_batch(&self, worker: &WorkerEntry, spec: &BatchSpec) -> Result<Vec<Value>, Forward> {
        let mut client = self.connect_worker(worker)?;
        let opts = SubmitOptions {
            until_done: None,
            client: Some("fgqos-coordinator".into()),
            deadline_ms: None,
        };
        let ack = client.submit_batch(spec, &opts).map_err(classify)?;
        if ack.jobs.len() != spec.points.len() {
            return Err(Forward::Fail(format!(
                "worker acknowledged {} jobs for {} points",
                ack.jobs.len(),
                spec.points.len()
            )));
        }
        ack.jobs
            .iter()
            .map(|&job| self.poll_report(worker, &mut client, job))
            .collect()
    }

    /// Accepts a single job: cache hits are born done, misses are
    /// forwarded on a fresh thread (re-queued across workers on
    /// failure).
    pub fn submit(self: &Arc<Self>, spec: JobSpec) -> Result<(u64, Option<Arc<Value>>), String> {
        let (hash, key) = job_key(&spec);
        if let Some(hit) = self.cache.get(hash, &key) {
            let id = self.new_job(JobState::Done, Some(Arc::clone(&hit)));
            return Ok((id, Some(hit)));
        }
        self.begin_flights(1)?;
        let id = self.new_job(JobState::Running, None);
        let core = Arc::clone(self);
        std::thread::spawn(move || {
            core.run_single(id, spec, hash, key);
            core.end_flight();
        });
        Ok((id, None))
    }

    fn run_single(&self, id: u64, spec: JobSpec, hash: u64, key: String) {
        loop {
            let Some(worker) = self.pick_worker() else {
                self.fail_job(id, "no live workers in the fleet".into());
                return;
            };
            worker.in_flight.fetch_add(1, Ordering::Relaxed);
            let outcome = self.forward_submit(&worker, &spec);
            worker.in_flight.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(report) => {
                    let report = Arc::new(report);
                    self.cache.insert(hash, key, Arc::clone(&report));
                    self.finish_job(id, report);
                    return;
                }
                Err(Forward::Down(_)) => {
                    worker.alive.store(false, Ordering::Relaxed);
                    self.requeued.fetch_add(1, Ordering::Relaxed);
                }
                Err(Forward::Fail(message)) => {
                    self.fail_job(id, message);
                    return;
                }
            }
        }
    }

    /// Accepts a warm-start batch: per-point cache hits are born done,
    /// the uncached remainder is sharded into contiguous slices across
    /// the live workers and merged back in point order.
    pub fn submit_batch(self: &Arc<Self>, spec: BatchSpec) -> Result<Vec<BatchAckEntry>, String> {
        struct PendingPoint {
            id: u64,
            hash: u64,
            key: String,
            point: BatchPoint,
        }
        let mut acks = Vec::with_capacity(spec.points.len());
        let mut pending: Vec<PendingPoint> = Vec::new();
        for point in &spec.points {
            let (hash, key) = batch_point_key(&spec, point);
            match self.cache.get(hash, &key) {
                Some(hit) => {
                    let id = self.new_job(JobState::Done, Some(Arc::clone(&hit)));
                    acks.push((id, Some(hit)));
                }
                None => {
                    let id = self.new_job(JobState::Running, None);
                    acks.push((id, None));
                    pending.push(PendingPoint {
                        id,
                        hash,
                        key,
                        point: *point,
                    });
                }
            }
        }
        if pending.is_empty() {
            return Ok(acks);
        }
        // Contiguous slices, one per live worker (at least one slice
        // even with an empty fleet — the forward loop reports the
        // failure per job). Earlier slices get the rounding remainder.
        let slices = self.live_worker_count().max(1).min(pending.len());
        let base = pending.len() / slices;
        let extra = pending.len() % slices;
        self.begin_flights(slices as u64)?;
        let mut rest = pending;
        for i in 0..slices {
            let take = base + usize::from(i < extra);
            let slice: Vec<PendingPoint> = rest.drain(..take).collect();
            let sub = BatchSpec {
                points: slice.iter().map(|p| p.point).collect(),
                ..spec.clone()
            };
            let ids: Vec<u64> = slice.iter().map(|p| p.id).collect();
            let keys: Vec<(u64, String)> = slice.into_iter().map(|p| (p.hash, p.key)).collect();
            let core = Arc::clone(self);
            std::thread::spawn(move || {
                core.run_batch_slice(ids, keys, sub);
                core.end_flight();
            });
        }
        Ok(acks)
    }

    fn run_batch_slice(&self, ids: Vec<u64>, keys: Vec<(u64, String)>, spec: BatchSpec) {
        loop {
            let Some(worker) = self.pick_worker() else {
                for id in &ids {
                    self.fail_job(*id, "no live workers in the fleet".into());
                }
                return;
            };
            worker.in_flight.fetch_add(1, Ordering::Relaxed);
            let outcome = self.forward_batch(&worker, &spec);
            worker.in_flight.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(reports) => {
                    for ((id, (hash, key)), report) in ids.iter().zip(keys).zip(reports) {
                        let report = Arc::new(report);
                        self.cache.insert(hash, key, Arc::clone(&report));
                        self.finish_job(*id, report);
                    }
                    return;
                }
                Err(Forward::Down(_)) => {
                    worker.alive.store(false, Ordering::Relaxed);
                    self.requeued.fetch_add(1, Ordering::Relaxed);
                }
                Err(Forward::Fail(message)) => {
                    for id in &ids {
                        self.fail_job(*id, message.clone());
                    }
                    return;
                }
            }
        }
    }

    /// Forwards a raw request to the least-loaded live worker and
    /// returns the worker's response verbatim (used for `snapshot`).
    fn forward_raw(&self, op: &str, request: &Value) -> Value {
        let Some(worker) = self.pick_worker() else {
            return error_response(op, "no live workers in the fleet");
        };
        worker.in_flight.fetch_add(1, Ordering::Relaxed);
        let outcome = self
            .connect_worker(&worker)
            .and_then(|mut c| c.request(request).map_err(classify));
        worker.in_flight.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(doc) => doc,
            Err(Forward::Down(m)) => {
                worker.alive.store(false, Ordering::Relaxed);
                error_response(op, format!("worker lost mid-request: {m}"))
            }
            Err(Forward::Fail(m)) => error_response(op, m),
        }
    }

    /// Drains in-flight forwards, shuts every live worker down and
    /// returns `(submitted, executed, failed, requeued)`.
    pub fn drain(&self) -> (u64, u64, u64, u64) {
        {
            let mut f = self.flight.lock().expect("coordinator poisoned");
            f.draining = true;
            while f.active > 0 {
                f = self.idle.wait(f).expect("coordinator poisoned");
            }
        }
        self.stop_heartbeat.store(true, Ordering::Relaxed);
        for worker in self.live_workers() {
            if let Ok(mut client) = Client::connect(&worker.addr) {
                let _ = client.set_read_timeout(Some(Duration::from_millis(10_000)));
                let _ = client.shutdown();
            }
            worker.alive.store(false, Ordering::Relaxed);
        }
        (
            self.submitted.load(Ordering::Relaxed),
            self.executed.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            self.requeued.load(Ordering::Relaxed),
        )
    }

    /// Fleet metrics under stable `coordinator.*` names (plus the
    /// shared `serve.cache.*` cache counters).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let workers = self.workers.lock().expect("coordinator poisoned");
        reg.gauge("coordinator.workers", workers.len() as f64);
        reg.gauge(
            "coordinator.workers.live",
            workers
                .iter()
                .filter(|w| w.alive.load(Ordering::Relaxed))
                .count() as f64,
        );
        for (i, w) in workers.iter().enumerate() {
            reg.gauge(
                format!("coordinator.worker.{i}.in_flight"),
                w.in_flight.load(Ordering::Relaxed) as f64,
            );
            reg.gauge(
                format!("coordinator.worker.{i}.alive"),
                if w.alive.load(Ordering::Relaxed) {
                    1.0
                } else {
                    0.0
                },
            );
        }
        drop(workers);
        reg.counter("coordinator.frames", self.frames.load(Ordering::Relaxed));
        reg.counter(
            "coordinator.frames.malformed",
            self.malformed.load(Ordering::Relaxed),
        );
        reg.counter(
            "coordinator.jobs.submitted",
            self.submitted.load(Ordering::Relaxed),
        );
        reg.counter(
            "coordinator.jobs.executed",
            self.executed.load(Ordering::Relaxed),
        );
        reg.counter(
            "coordinator.jobs.failed",
            self.failed.load(Ordering::Relaxed),
        );
        reg.counter(
            "coordinator.jobs.requeued",
            self.requeued.load(Ordering::Relaxed),
        );
        reg.counter("serve.cache.entries", self.cache.len() as u64);
        reg.counter("serve.cache.hits", self.cache.hits());
        reg.counter("serve.cache.misses", self.cache.misses());
        reg.gauge("serve.cache.hit_rate", self.cache.hit_rate());
        reg
    }
}

/// A running coordinator. Stop it with a `shutdown` request, then
/// [`join`](Self::join).
pub struct CoordinatorHandle {
    addr: SocketAddr,
    core: Arc<CoordinatorCore>,
    accept: Option<JoinHandle<()>>,
    heartbeat: Option<JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared core, for in-process registration and inspection.
    pub fn core(&self) -> &Arc<CoordinatorCore> {
        &self.core
    }

    /// Waits for the accept loop and heartbeat to exit (useful only
    /// after a `shutdown` request was served).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(hb) = self.heartbeat.take() {
            let _ = hb.join();
        }
    }
}

/// Binds the coordinator's listener and starts its accept loop and
/// heartbeat thread. Workers register themselves afterwards (v3
/// `register_worker`, usually via `fgqos worker --connect`).
pub fn start_coordinator(cfg: CoordinatorConfig) -> io::Result<CoordinatorHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let cache = match &cfg.cache_dir {
        Some(dir) => ResultCache::persistent(dir)?,
        None => ResultCache::new(),
    };
    let core = Arc::new(CoordinatorCore::new(
        cache,
        Duration::from_millis(cfg.forward_read_timeout_ms.max(1)),
    ));
    let heartbeat = {
        let core = Arc::clone(&core);
        let interval = Duration::from_millis(cfg.heartbeat_ms.max(10));
        std::thread::spawn(move || {
            while !core.stop_heartbeat.load(Ordering::Relaxed) {
                for worker in core.live_workers() {
                    if !CoordinatorCore::probe(&worker.addr) {
                        worker.alive.store(false, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(interval);
            }
        })
    };
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        let max_frame = cfg.max_frame_bytes;
        std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                let core = Arc::clone(&core);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    handle_connection(core, stream, max_frame, stop, addr);
                });
            }
        })
    };
    Ok(CoordinatorHandle {
        addr,
        core,
        accept: Some(accept),
        heartbeat: Some(heartbeat),
    })
}

fn send(writer: &mut TcpStream, response: &Value) -> io::Result<()> {
    writer.write_all(response.to_compact().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_connection(
    core: Arc<CoordinatorCore>,
    stream: TcpStream,
    max_frame: usize,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match read_frame(&mut reader, max_frame) {
            Ok(None) | Err(FrameError::Io(_)) => return,
            Err(FrameError::TooLarge { limit }) => {
                core.frames.fetch_add(1, Ordering::Relaxed);
                let resp = error_response("error", format!("frame exceeds {limit} bytes"));
                if send(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            Ok(Some(line)) => line,
        };
        core.frames.fetch_add(1, Ordering::Relaxed);
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(message) => {
                core.malformed.fetch_add(1, Ordering::Relaxed);
                if send(&mut writer, &error_response("error", message)).is_err() {
                    return;
                }
                continue;
            }
        };
        let shutting_down = matches!(request, Request::Shutdown);
        let response = dispatch(&core, request);
        if send(&mut writer, &response).is_err() && !shutting_down {
            return;
        }
        if shutting_down {
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            return;
        }
    }
}

fn dispatch(core: &Arc<CoordinatorCore>, request: Request) -> Value {
    match request {
        Request::Ping => response_head("ping", true),
        Request::RegisterWorker { addr } => match core.register_worker(&addr) {
            Err(message) => error_response("register_worker", message),
            Ok(live) => {
                let mut resp = response_head("register_worker", true);
                resp.set("workers", Value::from(live as u64));
                resp
            }
        },
        Request::Submit { spec, .. } => match core.submit(spec) {
            Err(message) => error_response("submit", message),
            Ok((job, cached)) => {
                let mut resp = response_head("submit", true);
                resp.set("job", Value::from(job));
                resp.set("cached", Value::Bool(cached.is_some()));
                resp.set(
                    "state",
                    Value::str(if cached.is_some() { "done" } else { "running" }),
                );
                resp
            }
        },
        Request::SubmitBatch { spec, .. } => match core.submit_batch(spec) {
            Err(message) => error_response("submit_batch", message),
            Ok(acks) => {
                let mut resp = response_head("submit_batch", true);
                let mut jobs = Value::arr();
                let mut cached = Value::arr();
                for (id, hit) in &acks {
                    jobs.push(Value::from(*id));
                    cached.push(Value::Bool(hit.is_some()));
                }
                resp.set("jobs", jobs);
                resp.set("cached", cached);
                resp
            }
        },
        Request::Status { job } => match core.status(job) {
            None => error_response("status", format!("unknown job {job}")),
            Some(state) => {
                let mut resp = response_head("status", true);
                resp.set("job", Value::from(job));
                resp.set("state", Value::str(state.wire_name()));
                if let JobState::Failed(message) = state {
                    resp.set("error", Value::str(message));
                }
                resp
            }
        },
        Request::Result { job } => match core.result(job) {
            None => error_response("result", format!("unknown job {job}")),
            Some((state, report)) => match state {
                JobState::Done => {
                    let mut resp = response_head("result", true);
                    resp.set("job", Value::from(job));
                    resp.set("state", Value::str("done"));
                    let report = report.expect("done jobs carry a report");
                    resp.set("report", (*report).clone());
                    resp
                }
                JobState::Failed(message) => {
                    let mut resp = error_response("result", message);
                    resp.set("job", Value::from(job));
                    resp.set("state", Value::str("failed"));
                    resp
                }
                pending => {
                    let mut resp = response_head("result", true);
                    resp.set("job", Value::from(job));
                    resp.set("state", Value::str(pending.wire_name()));
                    resp
                }
            },
        },
        Request::Metrics { format } => {
            let registry = core.metrics();
            let mut resp = response_head("metrics", true);
            match format {
                MetricsFormat::Json => resp.set("metrics", registry.to_json()),
                MetricsFormat::Csv => resp.set("csv", Value::str(registry.to_csv())),
            };
            resp
        }
        Request::Snapshot { scenario, warmup } => {
            let mut req = Value::obj();
            req.set("op", Value::str("snapshot"));
            req.set("scenario", Value::str(scenario));
            req.set("warmup", Value::from(warmup));
            core.forward_raw("snapshot", &req)
        }
        // Live runs are bound to one executing process; a coordinator
        // only routes batch work, so the streaming plane is refused here
        // — point `subscribe`/`control` at a worker directly.
        Request::Subscribe { .. } => {
            error_response("subscribe", "coordinator does not host live runs")
        }
        Request::Control { .. } => error_response("control", "coordinator does not host live runs"),
        Request::Journal { .. } => error_response("journal", "coordinator does not host live runs"),
        Request::Shutdown => {
            let (submitted, executed, failed, requeued) = core.drain();
            let mut resp = response_head("shutdown", true);
            resp.set("submitted", Value::from(submitted));
            resp.set("executed", Value::from(executed));
            resp.set("failed", Value::from(failed));
            resp.set("requeued", Value::from(requeued));
            resp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{start, ServeConfig, ServerHandle};
    use crate::Executor;
    use fgqos_bench::report::Report;

    /// An executor tagging its report with the worker process identity
    /// (here: a label) so tests can see which worker served a job —
    /// while staying a pure function of the spec for cache purposes.
    fn stub_executor() -> Executor {
        Arc::new(|spec: &JobSpec| {
            let mut r = Report::new("stub");
            r.note(format!("cycles={}", spec.cycles));
            Ok(r)
        })
    }

    fn worker() -> ServerHandle {
        start(
            ServeConfig {
                threads: 2,
                ..ServeConfig::default()
            },
            stub_executor(),
        )
        .expect("bind worker")
    }

    fn coordinator() -> CoordinatorHandle {
        start_coordinator(CoordinatorConfig {
            heartbeat_ms: 50,
            forward_read_timeout_ms: 2_000,
            ..CoordinatorConfig::default()
        })
        .expect("bind coordinator")
    }

    #[test]
    fn register_forward_and_cache_roundtrip() {
        let w = worker();
        let c = coordinator();
        let mut client = Client::connect(c.addr()).expect("connect");
        client.ping().expect("coordinator answers ping");
        let live = c
            .core()
            .register_worker(&w.addr().to_string())
            .expect("registers");
        assert_eq!(live, 1);
        let (ack, report) = client
            .submit_and_wait("s", 123, &SubmitOptions::default(), Duration::from_secs(10))
            .expect("forwarded job completes");
        assert!(!ack.cached);
        let parsed = Report::from_json(&report).expect("valid report");
        assert!(parsed.render_text().contains("cycles=123"));
        // Resubmission is a coordinator-level cache hit, byte-identical.
        let (ack2, report2) = client
            .submit_and_wait("s", 123, &SubmitOptions::default(), Duration::from_secs(10))
            .expect("cached job resolves");
        assert!(ack2.cached);
        assert_eq!(report.to_compact(), report2.to_compact());
        let resp = client.shutdown().expect("drains");
        assert_eq!(resp.get("executed").and_then(Value::as_u64), Some(1));
        c.join();
        w.join();
    }

    #[test]
    fn register_refuses_unreachable_workers() {
        let c = coordinator();
        let err = c
            .core()
            .register_worker("127.0.0.1:1")
            .expect_err("nothing listens on port 1");
        assert!(err.contains("ping"));
        let mut client = Client::connect(c.addr()).expect("connect");
        // With no workers, submissions fail but the coordinator stays up.
        let ack = client
            .submit("s", 1, &SubmitOptions::default())
            .expect("submit is accepted");
        let doc = loop {
            let doc = client.result(ack.job).expect("result answers");
            if doc.get("state").and_then(Value::as_str) != Some("running") {
                break doc;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(doc.get("state").and_then(Value::as_str), Some("failed"));
        assert!(doc
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("no live workers"));
        client.shutdown().expect("shuts down");
        c.join();
    }

    #[test]
    fn killed_worker_jobs_requeue_onto_the_fleet() {
        let w1 = worker();
        let w2 = worker();
        let c = coordinator();
        c.core()
            .register_worker(&w1.addr().to_string())
            .expect("w1");
        c.core()
            .register_worker(&w2.addr().to_string())
            .expect("w2");
        // Kill one worker out from under the coordinator (an in-process
        // stand-in for kill -9: drain it behind the coordinator's back
        // so forwards to it start failing).
        let mut killer = Client::connect(w1.addr()).expect("connect w1");
        killer.shutdown().expect("w1 gone");
        w1.join();
        let mut client = Client::connect(c.addr()).expect("connect");
        // Submit enough distinct jobs that some would have landed on w1.
        let acks: Vec<_> = (0..6)
            .map(|i| {
                client
                    .submit("s", 1_000 + i, &SubmitOptions::default())
                    .expect("accepted")
            })
            .collect();
        for (i, ack) in acks.iter().enumerate() {
            let report = client
                .wait_report(ack.job, Duration::from_secs(20))
                .expect("job completed despite the dead worker");
            let parsed = Report::from_json(&report).expect("valid report");
            assert!(parsed
                .render_text()
                .contains(&format!("cycles={}", 1_000 + i)));
        }
        client.shutdown().expect("drains");
        c.join();
        w2.join();
    }

    #[test]
    fn batch_shards_across_workers_and_merges_in_point_order() {
        let w1 = worker();
        let w2 = worker();
        let c = coordinator();
        c.core()
            .register_worker(&w1.addr().to_string())
            .expect("w1");
        c.core()
            .register_worker(&w2.addr().to_string())
            .expect("w2");
        let mut client = Client::connect(c.addr()).expect("connect");
        let spec = BatchSpec {
            scenario: "s".into(),
            cycles: 1_000,
            until_done: None,
            warmup: 0,
            points: (1..=5)
                .map(|i| BatchPoint {
                    period: i * 100,
                    budget: i * 7,
                })
                .collect(),
            kind: BatchKind::Sweep,
        };
        // Workers have no batch executor: points fail deterministically,
        // but sharding and per-point id plumbing are fully exercised.
        let ack = client
            .submit_batch(&spec, &SubmitOptions::default())
            .expect("acknowledged");
        assert_eq!(ack.jobs.len(), 5);
        assert!(ack.cached.iter().all(|c| !c));
        for &job in &ack.jobs {
            let doc = loop {
                let doc = client.result(job).expect("answers");
                if doc.get("state").and_then(Value::as_str) != Some("running") {
                    break doc;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            assert_eq!(doc.get("state").and_then(Value::as_str), Some("failed"));
            assert!(doc
                .get("error")
                .and_then(Value::as_str)
                .unwrap()
                .contains("no batch executor"));
        }
        client.shutdown().expect("drains");
        c.join();
        w1.join();
        w2.join();
    }
}
