//! Content-addressed result cache, optionally persisted to disk.
//!
//! Jobs are addressed by a hash of their [`JobSpec`] — the scenario
//! text, cycle budget and options — so resubmitting the same job
//! returns the *same* [`Report`](fgqos_bench::report::Report) JSON
//! document without re-simulating. The cached value is the shared
//! `Arc<Value>` the worker produced: responses built from a hit
//! serialize byte-identically to the fresh run (pinned by the
//! integration tests).
//!
//! A cache opened with [`ResultCache::persistent`] additionally
//! write-throughs every insert to one file per entry
//! (`<hash:016x>.entry`, atomically via temp + rename) and falls back
//! to a lazy disk lookup on a memory miss — so a restarted server
//! answers repeat submissions from the previous process's results,
//! byte-identically. The on-disk record stores the full canonical key
//! (length-prefixed, since keys embed scenario text) next to the
//! compact report JSON; a key mismatch or unreadable file degrades to
//! an ordinary miss, never a wrong result.
//!
//! The cache never evicts; a long-running deployment is expected to
//! bound it operationally (restart, or a future LRU satellite). Entries
//! store the full canonical key alongside the hash, so a 64-bit
//! collision degrades to a miss instead of serving a wrong result.

use crate::protocol::{BatchPoint, BatchSpec, JobSpec};
use fgqos_sim::json::Value;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit hash, the workspace's content-address function.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical cache key of a job: a stable serialization of the spec
/// plus its FNV-1a hash.
pub fn job_key(spec: &JobSpec) -> (u64, String) {
    let key = format!(
        "cycles={}\u{0}until_done={}\u{0}{}",
        spec.cycles,
        spec.until_done.as_deref().unwrap_or(""),
        spec.scenario
    );
    (fnv64(key.as_bytes()), key)
}

/// The canonical cache key of one batch point: the operation family
/// (`kind=` — sweep points and hunt candidates never alias each other or
/// single submissions), the shared prefix identity (scenario, cycles,
/// options, warm-up) plus the point's overrides. Two batches of the same
/// kind sharing a prefix reuse each other's point results, and
/// resubmitting an identical batch is answered entirely from the cache.
pub fn batch_point_key(spec: &BatchSpec, point: &BatchPoint) -> (u64, String) {
    let key = format!(
        "batch\u{0}kind={}\u{0}cycles={}\u{0}until_done={}\u{0}warmup={}\u{0}period={}\u{0}budget={}\u{0}{}",
        spec.kind.as_str(),
        spec.cycles,
        spec.until_done.as_deref().unwrap_or(""),
        spec.warmup,
        point.period,
        point.budget,
        spec.scenario
    );
    (fnv64(key.as_bytes()), key)
}

struct Entry {
    key: String,
    report: Arc<Value>,
}

/// Thread-safe content-addressed store of finished job reports.
#[derive(Default)]
pub struct ResultCache {
    entries: Mutex<HashMap<u64, Entry>>,
    disk: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Creates an empty in-memory cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Creates a cache backed by one file per entry under `dir`
    /// (created if missing). Inserts write through; memory misses fall
    /// back to disk, so entries survive a process restart.
    pub fn persistent(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            disk: Some(dir),
            ..ResultCache::default()
        })
    }

    /// `true` when inserts are persisted to disk.
    pub fn is_persistent(&self) -> bool {
        self.disk.is_some()
    }

    fn entry_path(dir: &Path, hash: u64) -> PathBuf {
        dir.join(format!("{hash:016x}.entry"))
    }

    /// Reads a disk entry: `<key-len>\n<key bytes><compact report JSON>`.
    /// Any unreadable or mismatched file is a miss.
    fn disk_get(dir: &Path, hash: u64, key: &str) -> Option<Arc<Value>> {
        let bytes = std::fs::read(Self::entry_path(dir, hash)).ok()?;
        let newline = bytes.iter().position(|&b| b == b'\n')?;
        let len: usize = std::str::from_utf8(&bytes[..newline]).ok()?.parse().ok()?;
        let key_end = (newline + 1).checked_add(len)?;
        if key_end > bytes.len() || &bytes[newline + 1..key_end] != key.as_bytes() {
            return None;
        }
        let report = std::str::from_utf8(&bytes[key_end..]).ok()?;
        Some(Arc::new(Value::parse(report.trim_end()).ok()?))
    }

    fn disk_put(dir: &Path, hash: u64, key: &str, report: &Value) {
        let path = Self::entry_path(dir, hash);
        if path.exists() {
            return;
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(key.len().to_string().as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(key.as_bytes());
        bytes.extend_from_slice(report.to_compact().as_bytes());
        bytes.push(b'\n');
        // Atomic publish: a concurrent reader sees the old file or the
        // complete new one, never a torn write. Failure to persist is
        // tolerated — the in-memory entry still serves this process.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, &bytes).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Looks up a finished report, counting the hit or miss. Persistent
    /// caches consult disk on a memory miss (and promote the entry).
    pub fn get(&self, hash: u64, key: &str) -> Option<Arc<Value>> {
        let mut entries = self.entries.lock().expect("cache poisoned");
        match entries.get(&hash) {
            Some(e) if e.key == key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.report))
            }
            Some(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => match self
                .disk
                .as_deref()
                .and_then(|dir| Self::disk_get(dir, hash, key))
            {
                Some(report) => {
                    entries.insert(
                        hash,
                        Entry {
                            key: key.to_string(),
                            report: Arc::clone(&report),
                        },
                    );
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(report)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
        }
    }

    /// Stores a finished report under its content address
    /// (write-through to disk for persistent caches).
    pub fn insert(&self, hash: u64, key: String, report: Arc<Value>) {
        let mut entries = self.entries.lock().expect("cache poisoned");
        if let Some(dir) = self.disk.as_deref() {
            Self::disk_put(dir, hash, &key, &report);
        }
        entries.entry(hash).or_insert(Entry { key, report });
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits over total lookups (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BatchKind;

    fn spec(text: &str, cycles: u64) -> JobSpec {
        JobSpec {
            scenario: text.to_string(),
            cycles,
            until_done: None,
        }
    }

    #[test]
    fn key_separates_every_field() {
        let a = job_key(&spec("s", 100)).0;
        assert_ne!(a, job_key(&spec("s", 101)).0, "cycles must matter");
        assert_ne!(a, job_key(&spec("t", 100)).0, "scenario must matter");
        let mut with_done = spec("s", 100);
        with_done.until_done = Some("cpu".into());
        assert_ne!(a, job_key(&with_done).0, "until_done must matter");
        assert_eq!(a, job_key(&spec("s", 100)).0, "equal specs collide");
    }

    #[test]
    fn batch_point_key_separates_every_field() {
        let base = BatchSpec {
            scenario: "s".into(),
            cycles: 100,
            until_done: None,
            warmup: 50,
            points: Vec::new(),
            kind: BatchKind::Sweep,
        };
        let p = BatchPoint {
            period: 10,
            budget: 20,
        };
        let a = batch_point_key(&base, &p).0;
        let mut warm = base.clone();
        warm.warmup = 51;
        assert_ne!(a, batch_point_key(&warm, &p).0, "warmup must matter");
        let mut q = p;
        q.period = 11;
        assert_ne!(a, batch_point_key(&base, &q).0, "period must matter");
        q = p;
        q.budget = 21;
        assert_ne!(a, batch_point_key(&base, &q).0, "budget must matter");
        let mut hunt = base.clone();
        hunt.kind = BatchKind::Hunt;
        assert_ne!(a, batch_point_key(&hunt, &p).0, "kind must matter");
        // A single-job key over the same scenario never aliases a batch
        // point's key.
        assert_ne!(a, job_key(&spec("s", 100)).0);
        assert_eq!(a, batch_point_key(&base.clone(), &p).0);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ResultCache::new();
        let (hash, key) = job_key(&spec("s", 100));
        assert!(cache.get(hash, &key).is_none());
        cache.insert(hash, key.clone(), Arc::new(Value::from(1u64)));
        let hit = cache.get(hash, &key).expect("cached");
        assert_eq!(hit.as_u64(), Some(1));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hash_collision_degrades_to_miss() {
        let cache = ResultCache::new();
        cache.insert(42, "key-a".into(), Arc::new(Value::from(1u64)));
        assert!(
            cache.get(42, "key-b").is_none(),
            "same hash, different key must miss"
        );
    }

    #[test]
    fn persistent_cache_survives_a_restart() {
        let dir = std::env::temp_dir().join(format!("fgqos-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (hash, key) = job_key(&spec("multi\nline scenario", 42));
        let mut report = Value::obj();
        report.set("rows", Value::from(3u64));
        let compact = report.to_compact();
        {
            let cache = ResultCache::persistent(&dir).expect("opens");
            assert!(cache.is_persistent());
            cache.insert(hash, key.clone(), Arc::new(report));
        }
        // A fresh cache over the same directory — a restarted process.
        let cache = ResultCache::persistent(&dir).expect("reopens");
        let hit = cache.get(hash, &key).expect("disk entry restores");
        assert_eq!(
            hit.to_compact(),
            compact,
            "restored report serializes byte-identically"
        );
        assert_eq!(cache.hits(), 1);
        // The wrong key for the same hash must miss, not mis-serve.
        let cache2 = ResultCache::persistent(&dir).expect("reopens");
        assert!(cache2.get(hash, "some other key").is_none());
        // A corrupted entry degrades to a miss.
        let path = dir.join(format!("{hash:016x}.entry"));
        std::fs::write(&path, b"7\ngarbage{not json").expect("corrupt");
        let cache3 = ResultCache::persistent(&dir).expect("reopens");
        assert!(cache3.get(hash, &key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_value_is_shared_not_copied() {
        let cache = ResultCache::new();
        let report = Arc::new(Value::str("report"));
        cache.insert(7, "k".into(), Arc::clone(&report));
        let a = cache.get(7, "k").unwrap();
        assert!(Arc::ptr_eq(&a, &report), "hits return the stored Arc");
    }
}
