//! Job queue + worker pool.
//!
//! Same threading model as `fgqos_bench::sweep`: plain `std` threads
//! over a mutex-protected FIFO queue, no external dependencies. The
//! queue is strictly order-stable — with one worker
//! (`FGQOS_SERVE_THREADS=1`) jobs execute exactly in submission order —
//! and because a `Soc` is `!Send`, each worker builds its simulator
//! locally inside the injected [`Executor`], exactly as sweep workers
//! do.
//!
//! Lifecycle of a job: `queued → running → done | failed`, or
//! `queued → expired` when its deadline passes before a worker picks it
//! up. Shutdown is a *graceful drain*: no new submissions are accepted,
//! every already-queued job still executes, and
//! [`ServeCore::drain`] returns only when the queue is empty and all
//! workers are idle.
//!
//! Workers carry stable **lane** indices (`0..workers`). Ordinary jobs
//! are unpinned — any lane pops them — but a `submit_batch`'s uncached
//! points travel as one queue entry pinned to a single lane, so the
//! batch executor can capture the warm boundary snapshot once and fork
//! it per point without the `!Send` simulator ever crossing a thread.

use crate::admission::{AdmissionConfig, AdmissionControl};
use crate::cache::{batch_point_key, job_key, ResultCache};
use crate::live::LiveRegistry;
use crate::protocol::{BatchSpec, JobSpec};
use crate::{BatchExecutor, Executor};
use fgqos_sim::json::Value;
use fgqos_sim::metrics::MetricsRegistry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the FIFO queue.
    Queued,
    /// Currently executing on a worker.
    Running,
    /// Finished; the report is available.
    Done,
    /// The executor reported an error.
    Failed(String),
    /// The deadline passed before a worker picked the job up.
    Expired,
}

impl JobState {
    /// The protocol's wire name for this state.
    pub fn wire_name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Expired => "expired",
        }
    }
}

/// One uncached point of a queued batch: its job id, cache address and
/// overrides.
struct BatchPointJob {
    id: u64,
    hash: u64,
    key: String,
    point: crate::protocol::BatchPoint,
}

enum Work {
    Single {
        id: u64,
        spec: JobSpec,
        hash: u64,
        key: String,
    },
    Batch {
        spec: BatchSpec,
        points: Vec<BatchPointJob>,
    },
}

impl Work {
    /// Job ids this queue entry resolves (one for a single, one per
    /// uncached point for a batch).
    fn ids(&self) -> Vec<u64> {
        match self {
            Work::Single { id, .. } => vec![*id],
            Work::Batch { points, .. } => points.iter().map(|p| p.id).collect(),
        }
    }

    fn contains(&self, id: u64) -> bool {
        match self {
            Work::Single { id: own, .. } => *own == id,
            Work::Batch { points, .. } => points.iter().any(|p| p.id == id),
        }
    }
}

struct QueuedJob {
    work: Work,
    lane: Option<usize>,
    deadline: Option<Instant>,
}

struct JobEntry {
    state: JobState,
    report: Option<Arc<Value>>,
}

#[derive(Default)]
struct PoolState {
    queue: VecDeque<QueuedJob>,
    jobs: HashMap<u64, JobEntry>,
    next_job: u64,
    draining: bool,
    busy_workers: usize,
    live_workers: usize,
    submitted: u64,
    executed: u64,
    failed: u64,
    expired: u64,
    batches: u64,
    lane_executed: Vec<u64>,
}

/// Counters returned by [`ServeCore::drain`], embedded in the
/// `shutdown` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs accepted over the server's lifetime (cache hits included).
    pub submitted: u64,
    /// Jobs actually executed by a worker.
    pub executed: u64,
    /// Jobs whose executor returned an error.
    pub failed: u64,
    /// Jobs that expired in the queue.
    pub expired: u64,
}

/// Number of pool workers: `FGQOS_SERVE_THREADS` override, else the
/// machine's available parallelism.
pub fn worker_count() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    std::env::var("FGQOS_SERVE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw)
}

/// Shared state of a running service: queue, jobs, cache, admission and
/// telemetry. Connection handlers and workers all operate on an
/// `Arc<ServeCore>`.
pub struct ServeCore {
    state: Mutex<PoolState>,
    wakeup: Condvar,
    /// The content-addressed result cache.
    pub cache: ResultCache,
    /// The per-client ingress regulator bank.
    pub admission: AdmissionControl,
    /// The live-run table (v4 `subscribe`/`control`/`journal`).
    pub live: LiveRegistry,
    workers: usize,
    started: Instant,
    busy_nanos: AtomicU64,
    frames: AtomicU64,
    malformed: AtomicU64,
    oversized: AtomicU64,
}

impl ServeCore {
    /// Creates the shared state for a pool of `workers` threads with an
    /// in-memory result cache.
    pub fn new(workers: usize, admission: AdmissionConfig) -> Self {
        Self::with_cache(workers, admission, ResultCache::new())
    }

    /// [`ServeCore::new`] with a caller-supplied cache — how a server
    /// gets a [`ResultCache::persistent`] one that survives restarts.
    pub fn with_cache(workers: usize, admission: AdmissionConfig, cache: ResultCache) -> Self {
        ServeCore {
            state: Mutex::new(PoolState {
                lane_executed: vec![0; workers],
                ..PoolState::default()
            }),
            wakeup: Condvar::new(),
            cache,
            admission: AdmissionControl::new(admission),
            live: LiveRegistry::new(),
            workers,
            started: Instant::now(),
            busy_nanos: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
        }
    }

    /// Number of workers this core was sized for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Counts one received frame (any op).
    pub fn count_frame(&self) {
        self.frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one unparsable frame.
    pub fn count_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one over-limit frame.
    pub fn count_oversized(&self) {
        self.oversized.fetch_add(1, Ordering::Relaxed);
    }

    /// Accepts a job: returns its id plus the cached report when the
    /// spec is a cache hit (such jobs are born `Done` and never queue).
    /// `Err` when the server is draining.
    pub fn submit(
        &self,
        spec: JobSpec,
        deadline: Option<Instant>,
    ) -> Result<(u64, Option<Arc<Value>>), String> {
        let (hash, key) = job_key(&spec);
        let cached = self.cache.get(hash, &key);
        let mut st = self.state.lock().expect("pool poisoned");
        if st.draining {
            return Err("server is shutting down".into());
        }
        let id = st.next_job + 1;
        st.next_job = id;
        st.submitted += 1;
        match cached {
            Some(report) => {
                st.jobs.insert(
                    id,
                    JobEntry {
                        state: JobState::Done,
                        report: Some(Arc::clone(&report)),
                    },
                );
                Ok((id, Some(report)))
            }
            None => {
                st.jobs.insert(
                    id,
                    JobEntry {
                        state: JobState::Queued,
                        report: None,
                    },
                );
                st.queue.push_back(QueuedJob {
                    work: Work::Single {
                        id,
                        spec,
                        hash,
                        key,
                    },
                    lane: None,
                    deadline,
                });
                self.wakeup.notify_one();
                Ok((id, None))
            }
        }
    }

    /// Accepts a warm-start batch: one job id per point, in point order,
    /// with the cached points born `Done`. The uncached remainder is
    /// enqueued as a single entry pinned to the least-loaded lane
    /// (returned as the second element; `None` when the whole batch was
    /// answered from the cache). `Err` when the server is draining.
    #[allow(clippy::type_complexity)]
    pub fn submit_batch(
        &self,
        spec: BatchSpec,
        deadline: Option<Instant>,
    ) -> Result<(Vec<(u64, Option<Arc<Value>>)>, Option<usize>), String> {
        let addressed: Vec<(u64, String, Option<Arc<Value>>)> = spec
            .points
            .iter()
            .map(|p| {
                let (hash, key) = batch_point_key(&spec, p);
                let cached = self.cache.get(hash, &key);
                (hash, key, cached)
            })
            .collect();
        let mut st = self.state.lock().expect("pool poisoned");
        if st.draining {
            return Err("server is shutting down".into());
        }
        st.batches += 1;
        let mut acks = Vec::with_capacity(spec.points.len());
        let mut pending: Vec<BatchPointJob> = Vec::new();
        for (i, (hash, key, cached)) in addressed.into_iter().enumerate() {
            let id = st.next_job + 1;
            st.next_job = id;
            st.submitted += 1;
            match cached {
                Some(report) => {
                    st.jobs.insert(
                        id,
                        JobEntry {
                            state: JobState::Done,
                            report: Some(Arc::clone(&report)),
                        },
                    );
                    acks.push((id, Some(report)));
                }
                None => {
                    st.jobs.insert(
                        id,
                        JobEntry {
                            state: JobState::Queued,
                            report: None,
                        },
                    );
                    pending.push(BatchPointJob {
                        id,
                        hash,
                        key,
                        point: spec.points[i],
                    });
                    acks.push((id, None));
                }
            }
        }
        if pending.is_empty() {
            return Ok((acks, None));
        }
        // Pin to the lane with the fewest queued pinned entries —
        // deterministic given the queue state, lowest index on ties.
        let mut depth = vec![0usize; self.workers.max(1)];
        for j in &st.queue {
            if let Some(lane) = j.lane {
                depth[lane] += 1;
            }
        }
        let lane = (0..depth.len()).min_by_key(|&l| depth[l]).unwrap_or(0);
        st.queue.push_back(QueuedJob {
            work: Work::Batch {
                spec,
                points: pending,
            },
            lane: Some(lane),
            deadline,
        });
        // notify_all: only the pinned lane's worker can take this entry.
        self.wakeup.notify_all();
        Ok((acks, Some(lane)))
    }

    /// A job's state plus, while queued, its 0-based queue position.
    pub fn status(&self, id: u64) -> Option<(JobState, Option<usize>)> {
        let st = self.state.lock().expect("pool poisoned");
        let entry = st.jobs.get(&id)?;
        let position = match entry.state {
            JobState::Queued => st.queue.iter().position(|j| j.work.contains(id)),
            _ => None,
        };
        Some((entry.state.clone(), position))
    }

    /// A finished job's report (`None` until it is done).
    pub fn result(&self, id: u64) -> Option<(JobState, Option<Arc<Value>>)> {
        let st = self.state.lock().expect("pool poisoned");
        let entry = st.jobs.get(&id)?;
        Some((entry.state.clone(), entry.report.clone()))
    }

    /// Worker thread body for the worker on `lane`: pop the first queue
    /// entry this lane may take (unpinned, or pinned to it), check the
    /// deadline, execute, publish. Returns when the core is draining and
    /// no eligible work remains.
    pub fn worker_loop(&self, lane: usize, executor: Executor, batch_executor: BatchExecutor) {
        {
            let mut st = self.state.lock().expect("pool poisoned");
            st.live_workers += 1;
        }
        loop {
            let job = {
                let mut st = self.state.lock().expect("pool poisoned");
                loop {
                    let eligible = st
                        .queue
                        .iter()
                        .position(|j| j.lane.is_none_or(|l| l == lane));
                    if let Some(pos) = eligible {
                        let job = st.queue.remove(pos).expect("position just found");
                        st.busy_workers += 1;
                        break Some(job);
                    }
                    if st.draining {
                        break None;
                    }
                    st = self.wakeup.wait(st).expect("pool poisoned");
                }
            };
            let Some(job) = job else {
                let mut st = self.state.lock().expect("pool poisoned");
                st.live_workers -= 1;
                self.wakeup.notify_all();
                return;
            };
            if job.deadline.is_some_and(|d| Instant::now() > d) {
                let mut st = self.state.lock().expect("pool poisoned");
                for id in job.work.ids() {
                    if let Some(entry) = st.jobs.get_mut(&id) {
                        entry.state = JobState::Expired;
                    }
                    st.expired += 1;
                }
                st.busy_workers -= 1;
                self.wakeup.notify_all();
                continue;
            }
            {
                let mut st = self.state.lock().expect("pool poisoned");
                for id in job.work.ids() {
                    if let Some(entry) = st.jobs.get_mut(&id) {
                        entry.state = JobState::Running;
                    }
                }
            }
            let t0 = Instant::now();
            match job.work {
                Work::Single {
                    id,
                    spec,
                    hash,
                    key,
                } => {
                    let outcome = executor(&spec);
                    self.busy_nanos
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let mut st = self.state.lock().expect("pool poisoned");
                    st.lane_executed[lane] += 1;
                    match outcome {
                        Ok(report) => {
                            let report = Arc::new(report.to_json());
                            self.cache.insert(hash, key, Arc::clone(&report));
                            if let Some(entry) = st.jobs.get_mut(&id) {
                                entry.state = JobState::Done;
                                entry.report = Some(report);
                            }
                            st.executed += 1;
                        }
                        Err(e) => {
                            if let Some(entry) = st.jobs.get_mut(&id) {
                                entry.state = JobState::Failed(e);
                            }
                            st.failed += 1;
                        }
                    }
                }
                Work::Batch { spec, points } => {
                    // Hand the executor only the uncached points, in
                    // their original order.
                    let run = BatchSpec {
                        points: points.iter().map(|p| p.point).collect(),
                        ..spec
                    };
                    let outcome = batch_executor(&run).and_then(|reports| {
                        if reports.len() == points.len() {
                            Ok(reports)
                        } else {
                            Err(format!(
                                "batch executor returned {} reports for {} points",
                                reports.len(),
                                points.len()
                            ))
                        }
                    });
                    self.busy_nanos
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let mut st = self.state.lock().expect("pool poisoned");
                    st.lane_executed[lane] += 1;
                    match outcome {
                        Ok(reports) => {
                            for (p, report) in points.into_iter().zip(reports) {
                                let report = Arc::new(report.to_json());
                                self.cache.insert(p.hash, p.key, Arc::clone(&report));
                                if let Some(entry) = st.jobs.get_mut(&p.id) {
                                    entry.state = JobState::Done;
                                    entry.report = Some(report);
                                }
                                st.executed += 1;
                            }
                        }
                        Err(e) => {
                            for p in points {
                                if let Some(entry) = st.jobs.get_mut(&p.id) {
                                    entry.state = JobState::Failed(e.clone());
                                }
                                st.failed += 1;
                            }
                        }
                    }
                }
            }
            let mut st = self.state.lock().expect("pool poisoned");
            st.busy_workers -= 1;
            self.wakeup.notify_all();
        }
    }

    /// Graceful drain: refuse new submissions, execute everything
    /// already queued, and return once every worker is idle or exited.
    /// Idempotent; concurrent callers all block until the drain ends.
    pub fn drain(&self) -> DrainSummary {
        // Live runs first: tell each to finish at its next window
        // boundary and wait for the executors to let go. A live run
        // reacts within one window (plus its pacing sleep), so the
        // bound below is generous.
        self.live.drain(std::time::Duration::from_secs(60));
        let mut st = self.state.lock().expect("pool poisoned");
        st.draining = true;
        self.wakeup.notify_all();
        while !st.queue.is_empty() || st.busy_workers > 0 || st.live_workers > 0 {
            st = self.wakeup.wait(st).expect("pool poisoned");
        }
        DrainSummary {
            submitted: st.submitted,
            executed: st.executed,
            failed: st.failed,
            expired: st.expired,
        }
    }

    /// `true` once [`drain`](Self::drain) has started.
    pub fn draining(&self) -> bool {
        self.state.lock().expect("pool poisoned").draining
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().expect("pool poisoned").queue.len()
    }

    /// Snapshot of the service's metrics under stable `serve.*` names,
    /// exportable through the standard
    /// [`MetricsRegistry`] JSON/CSV exporters.
    pub fn metrics(&self) -> MetricsRegistry {
        let (queue_depth, submitted, executed, failed, expired, busy, batches, lanes) = {
            let st = self.state.lock().expect("pool poisoned");
            let mut lanes: Vec<(u64, u64)> = st
                .lane_executed
                .iter()
                .map(|&executed| (0u64, executed))
                .collect();
            for j in &st.queue {
                if let Some(lane) = j.lane {
                    if let Some(entry) = lanes.get_mut(lane) {
                        entry.0 += 1;
                    }
                }
            }
            (
                st.queue.len(),
                st.submitted,
                st.executed,
                st.failed,
                st.expired,
                st.busy_workers,
                st.batches,
                lanes,
            )
        };
        let mut reg = MetricsRegistry::new();
        reg.counter("serve.frames", self.frames.load(Ordering::Relaxed));
        reg.counter(
            "serve.frames.malformed",
            self.malformed.load(Ordering::Relaxed),
        );
        reg.counter(
            "serve.frames.oversized",
            self.oversized.load(Ordering::Relaxed),
        );
        reg.gauge("serve.queue_depth", queue_depth as f64);
        reg.counter("serve.jobs.submitted", submitted);
        reg.counter("serve.jobs.executed", executed);
        reg.counter("serve.jobs.failed", failed);
        reg.counter("serve.jobs.expired", expired);
        reg.counter("serve.cache.entries", self.cache.len() as u64);
        reg.counter("serve.cache.hits", self.cache.hits());
        reg.counter("serve.cache.misses", self.cache.misses());
        reg.gauge("serve.cache.hit_rate", self.cache.hit_rate());
        reg.counter("serve.jobs.batches", batches);
        reg.gauge("serve.workers", self.workers as f64);
        reg.gauge("serve.workers.busy", busy as f64);
        let live = self.live.metrics();
        reg.counter("serve.live.sessions", live.sessions);
        reg.gauge("serve.live.active", live.active as f64);
        reg.counter("serve.live.frames", live.frames);
        reg.counter("serve.live.controls", live.controls);
        reg.counter("serve.live.dropped", live.dropped);
        for (lane, (pinned_depth, executed)) in lanes.iter().enumerate() {
            reg.gauge(
                format!("serve.lane.{lane}.queue_depth"),
                *pinned_depth as f64,
            );
            reg.counter(format!("serve.lane.{lane}.executed"), *executed);
        }
        let elapsed = self.started.elapsed().as_nanos() as f64;
        let busy_ratio = if elapsed > 0.0 {
            self.busy_nanos.load(Ordering::Relaxed) as f64 / (elapsed * self.workers.max(1) as f64)
        } else {
            0.0
        };
        reg.gauge("serve.workers.busy_ratio", busy_ratio);
        for (client, accepted, denied) in self.admission.snapshot() {
            reg.counter(format!("serve.client.{client}.accepted"), accepted);
            reg.counter(format!("serve.client.{client}.denied"), denied);
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_bench::report::Report;
    use std::time::Duration;

    fn spec(tag: &str) -> JobSpec {
        JobSpec {
            scenario: format!("# {tag}\n[master a]\nkind cpu\n"),
            cycles: 1_000,
            until_done: None,
        }
    }

    /// An executor that renders the spec's scenario into a one-row
    /// report after an optional sleep.
    fn stub(delay: Duration) -> Executor {
        Arc::new(move |spec: &JobSpec| {
            std::thread::sleep(delay);
            let mut r = Report::new("stub");
            r.note(format!(
                "cycles={} len={}",
                spec.cycles,
                spec.scenario.len()
            ));
            Ok(r)
        })
    }

    fn start(core: &Arc<ServeCore>, n: usize, exec: Executor) -> Vec<std::thread::JoinHandle<()>> {
        start_batch(core, n, exec, crate::unsupported_batch_executor())
    }

    fn start_batch(
        core: &Arc<ServeCore>,
        n: usize,
        exec: Executor,
        batch: crate::BatchExecutor,
    ) -> Vec<std::thread::JoinHandle<()>> {
        (0..n)
            .map(|lane| {
                let core = Arc::clone(core);
                let exec = Arc::clone(&exec);
                let batch = Arc::clone(&batch);
                std::thread::spawn(move || core.worker_loop(lane, exec, batch))
            })
            .collect()
    }

    fn wait_done(core: &ServeCore, id: u64) -> (JobState, Option<Arc<Value>>) {
        for _ in 0..2_000 {
            let (state, report) = core.result(id).expect("job exists");
            if !matches!(state, JobState::Queued | JobState::Running) {
                return (state, report);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn executes_and_caches() {
        let core = Arc::new(ServeCore::new(2, AdmissionConfig::default()));
        let workers = start(&core, 2, stub(Duration::ZERO));
        let (id, cached) = core.submit(spec("a"), None).unwrap();
        assert!(cached.is_none(), "first submission is a miss");
        let (state, fresh) = wait_done(&core, id);
        assert_eq!(state, JobState::Done);
        let fresh = fresh.expect("report present");
        // Resubmission: born done, byte-identical shared report.
        let (id2, hit) = core.submit(spec("a"), None).unwrap();
        let hit = hit.expect("second submission hits the cache");
        assert!(Arc::ptr_eq(&hit, &fresh));
        assert_eq!(core.result(id2).unwrap().0, JobState::Done);
        assert_eq!(core.cache.hits(), 1);
        let summary = core.drain();
        assert_eq!(summary.submitted, 2);
        assert_eq!(summary.executed, 1, "the cache hit did not re-execute");
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn single_worker_executes_in_submission_order() {
        let core = Arc::new(ServeCore::new(1, AdmissionConfig::default()));
        let order: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&order);
        let exec: Executor = Arc::new(move |spec: &JobSpec| {
            seen.lock().unwrap().push(spec.cycles);
            Ok(Report::new("stub"))
        });
        let workers = start(&core, 1, exec);
        for cycles in [10, 20, 30, 40] {
            let mut s = spec("order");
            s.cycles = cycles; // distinct specs: no cache interference
            core.submit(s, None).unwrap();
        }
        core.drain();
        assert_eq!(*order.lock().unwrap(), vec![10, 20, 30, 40]);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn deadline_expires_queued_jobs_unexecuted() {
        let core = Arc::new(ServeCore::new(1, AdmissionConfig::default()));
        let workers = start(&core, 1, stub(Duration::from_millis(60)));
        // Job 1 occupies the single worker for 60 ms; job 2's deadline
        // passes while it waits in the queue.
        let (slow, _) = core.submit(spec("slow"), None).unwrap();
        let deadline = Instant::now() + Duration::from_millis(5);
        let (doomed, _) = core.submit(spec("doomed"), Some(deadline)).unwrap();
        assert_eq!(wait_done(&core, slow).0, JobState::Done);
        assert_eq!(wait_done(&core, doomed).0, JobState::Expired);
        let summary = core.drain();
        assert_eq!(summary.expired, 1);
        assert_eq!(summary.executed, 1);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn drain_finishes_the_whole_queue_first() {
        let core = Arc::new(ServeCore::new(1, AdmissionConfig::default()));
        let workers = start(&core, 1, stub(Duration::from_millis(10)));
        let ids: Vec<u64> = (0..5)
            .map(|i| {
                let mut s = spec("drain");
                s.cycles = 1_000 + i;
                core.submit(s, None).unwrap().0
            })
            .collect();
        let summary = core.drain();
        assert_eq!(summary.executed, 5, "drain ran every queued job");
        for id in ids {
            assert_eq!(core.result(id).unwrap().0, JobState::Done);
        }
        assert!(
            core.submit(spec("late"), None).is_err(),
            "submissions after drain are refused"
        );
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn failed_jobs_report_the_error() {
        let core = Arc::new(ServeCore::new(1, AdmissionConfig::default()));
        let exec: Executor = Arc::new(|_spec: &JobSpec| Err("boom".to_string()));
        let workers = start(&core, 1, exec);
        let (id, _) = core.submit(spec("fail"), None).unwrap();
        let (state, report) = wait_done(&core, id);
        assert_eq!(state, JobState::Failed("boom".into()));
        assert!(report.is_none());
        assert_eq!(core.drain().failed, 1);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn metrics_snapshot_has_the_documented_names() {
        let core = Arc::new(ServeCore::new(3, AdmissionConfig::default()));
        core.admission.admit("alice", 128);
        core.count_frame();
        core.count_malformed();
        let reg = core.metrics();
        for name in [
            "serve.frames",
            "serve.frames.malformed",
            "serve.frames.oversized",
            "serve.queue_depth",
            "serve.jobs.submitted",
            "serve.jobs.executed",
            "serve.jobs.failed",
            "serve.jobs.expired",
            "serve.cache.entries",
            "serve.cache.hits",
            "serve.cache.misses",
            "serve.cache.hit_rate",
            "serve.jobs.batches",
            "serve.workers",
            "serve.workers.busy",
            "serve.workers.busy_ratio",
            "serve.lane.0.queue_depth",
            "serve.lane.0.executed",
            "serve.lane.2.queue_depth",
            "serve.lane.2.executed",
            "serve.client.alice.accepted",
            "serve.client.alice.denied",
        ] {
            assert!(reg.get(name).is_some(), "missing metric {name}");
        }
    }

    fn batch(tag: &str, points: &[(u64, u64)]) -> BatchSpec {
        BatchSpec {
            scenario: format!("# {tag}\n[master a]\nkind cpu\n"),
            cycles: 1_000,
            until_done: None,
            warmup: 500,
            points: points
                .iter()
                .map(|&(period, budget)| crate::protocol::BatchPoint { period, budget })
                .collect(),
            kind: crate::protocol::BatchKind::Sweep,
        }
    }

    /// A batch executor that renders one row per point, tagged with the
    /// point's knobs, and records which thread ran it.
    fn batch_stub(ran_on: Arc<Mutex<Vec<std::thread::ThreadId>>>) -> crate::BatchExecutor {
        Arc::new(move |spec: &BatchSpec| {
            ran_on.lock().unwrap().push(std::thread::current().id());
            Ok(spec
                .points
                .iter()
                .map(|p| {
                    let mut r = Report::new("batch-stub");
                    r.note(format!("period={} budget={}", p.period, p.budget));
                    r
                })
                .collect())
        })
    }

    #[test]
    fn batch_points_get_individual_jobs_and_cache_entries() {
        let core = Arc::new(ServeCore::new(2, AdmissionConfig::default()));
        let ran_on = Arc::new(Mutex::new(Vec::new()));
        let workers = start_batch(
            &core,
            2,
            stub(Duration::ZERO),
            batch_stub(Arc::clone(&ran_on)),
        );
        let (acks, lane) = core
            .submit_batch(batch("b", &[(100, 1), (200, 2)]), None)
            .unwrap();
        assert_eq!(acks.len(), 2);
        assert!(lane.is_some(), "uncached batch is pinned to a lane");
        for &(id, ref cached) in &acks {
            assert!(cached.is_none(), "first submission misses");
            let (state, report) = wait_done(&core, id);
            assert_eq!(state, JobState::Done);
            assert!(report.is_some());
        }
        // The whole batch executed in one executor call, on one thread.
        assert_eq!(ran_on.lock().unwrap().len(), 1);
        // Resubmission: every point is born done from the per-point cache.
        let (acks2, lane2) = core
            .submit_batch(batch("b", &[(100, 1), (200, 2)]), None)
            .unwrap();
        assert_eq!(lane2, None, "fully cached batch never queues");
        for (id, cached) in acks2 {
            assert!(cached.is_some());
            assert_eq!(core.result(id).unwrap().0, JobState::Done);
        }
        // Partial overlap: only the new point misses and executes.
        let (acks3, lane3) = core
            .submit_batch(batch("b", &[(100, 1), (300, 3)]), None)
            .unwrap();
        assert!(lane3.is_some());
        assert!(acks3[0].1.is_some(), "shared point is a hit");
        assert!(acks3[1].1.is_none(), "new point is a miss");
        assert_eq!(wait_done(&core, acks3[1].0).0, JobState::Done);
        let summary = core.drain();
        assert_eq!(summary.submitted, 6, "every point counts as a job");
        assert_eq!(summary.executed, 3, "only misses executed");
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn batch_stays_on_its_pinned_lane() {
        let core = Arc::new(ServeCore::new(2, AdmissionConfig::default()));
        // No workers yet: submissions queue up so lane choice is visible.
        let (_, lane_a) = core.submit_batch(batch("a", &[(1, 1)]), None).unwrap();
        let (_, lane_b) = core.submit_batch(batch("b", &[(2, 2)]), None).unwrap();
        let (la, lb) = (lane_a.unwrap(), lane_b.unwrap());
        assert_ne!(la, lb, "least-loaded placement spreads batches");
        let reg = core.metrics();
        use fgqos_sim::metrics::MetricValue;
        for lane in [la, lb] {
            assert_eq!(
                reg.get(&format!("serve.lane.{lane}.queue_depth")),
                Some(&MetricValue::Gauge(1.0))
            );
        }
        let ran_on = Arc::new(Mutex::new(Vec::new()));
        let workers = start_batch(
            &core,
            2,
            stub(Duration::ZERO),
            batch_stub(Arc::clone(&ran_on)),
        );
        core.drain();
        assert_eq!(ran_on.lock().unwrap().len(), 2);
        let reg = core.metrics();
        for lane in 0..2 {
            assert_eq!(
                reg.get(&format!("serve.lane.{lane}.executed")),
                Some(&MetricValue::Counter(1)),
                "each lane executed its own batch"
            );
        }
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn batch_executor_failure_fails_every_point() {
        let core = Arc::new(ServeCore::new(1, AdmissionConfig::default()));
        let failing: crate::BatchExecutor = Arc::new(|_spec| Err("snapshot refused".into()));
        let workers = start_batch(&core, 1, stub(Duration::ZERO), failing);
        let (acks, _) = core
            .submit_batch(batch("f", &[(1, 1), (2, 2)]), None)
            .unwrap();
        for (id, _) in acks {
            assert_eq!(
                wait_done(&core, id).0,
                JobState::Failed("snapshot refused".into())
            );
        }
        assert_eq!(core.drain().failed, 2);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn status_reports_queue_position() {
        let core = Arc::new(ServeCore::new(1, AdmissionConfig::default()));
        // No workers: everything stays queued.
        let (a, _) = core.submit(spec("a"), None).unwrap();
        let mut s = spec("b");
        s.cycles = 2_000;
        let (b, _) = core.submit(s, None).unwrap();
        assert_eq!(core.status(a).unwrap(), (JobState::Queued, Some(0)));
        assert_eq!(core.status(b).unwrap(), (JobState::Queued, Some(1)));
        assert!(core.status(999).is_none());
    }
}
