//! The TCP server: accept loop, per-connection protocol handlers, and
//! lifecycle plumbing around [`ServeCore`].
//!
//! One thread accepts connections, one detached thread serves each
//! connection, and [`worker_count`]-many pool workers execute jobs. A
//! `shutdown` request drains the pool (every queued job still runs),
//! answers with the drain summary, and only then stops the accept loop —
//! so a client that observes the shutdown response knows the server is
//! quiescent.

use crate::admission::AdmissionConfig;
use crate::cache::ResultCache;
use crate::live::{ControlWrite, LiveSession, NextFrame};
use crate::pool::{worker_count, JobState, ServeCore};
use crate::protocol::{
    error_response, parse_request, read_frame, response_head, to_hex, FrameError, LiveSpec,
    MetricsFormat, Request, DEFAULT_MAX_FRAME_BYTES,
};
use crate::{
    unsupported_batch_executor, unsupported_live_executor, unsupported_snapshot_executor,
    BatchExecutor, Executor, LiveExecutor, SnapshotExecutor,
};
use fgqos_sim::json::Value;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration; every field has a usable default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address. Port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads; 0 means [`worker_count`] (env override included).
    pub threads: usize,
    /// Per-frame byte cap on the wire.
    pub max_frame_bytes: usize,
    /// Ingress regulation applied per client.
    pub admission: AdmissionConfig,
    /// Queue deadline applied to jobs that don't set their own.
    pub default_deadline_ms: Option<u64>,
    /// Directory for a persistent result cache; `None` keeps the cache
    /// in memory only (lost on restart).
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            admission: AdmissionConfig::default(),
            default_deadline_ms: None,
            cache_dir: None,
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// send a `shutdown` request (or use
/// [`Client::shutdown`](crate::client::Client::shutdown)) and then
/// [`join`](Self::join).
pub struct ServerHandle {
    addr: SocketAddr,
    core: Arc<ServeCore>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (with the real port when 0 was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared core, for in-process inspection (tests, benches).
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// Waits for the accept loop and every worker to exit. Returns
    /// immediately useful only after a `shutdown` request was served.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds the listener, starts the worker pool and the accept loop.
/// `submit_batch` requests are refused with a stable error; use
/// [`start_with`] to install a real batch executor.
pub fn start(cfg: ServeConfig, executor: Executor) -> io::Result<ServerHandle> {
    start_with(cfg, executor, unsupported_batch_executor())
}

/// [`start`], with a [`BatchExecutor`] serving `submit_batch` requests.
pub fn start_with(
    cfg: ServeConfig,
    executor: Executor,
    batch_executor: BatchExecutor,
) -> io::Result<ServerHandle> {
    start_full(
        cfg,
        executor,
        batch_executor,
        unsupported_snapshot_executor(),
    )
}

/// [`start_with`], plus a [`SnapshotExecutor`] serving the v3
/// `snapshot` op (warm-boundary blobs over the wire). New-run
/// `subscribe` requests are refused; use [`start_live`] to install a
/// [`LiveExecutor`].
pub fn start_full(
    cfg: ServeConfig,
    executor: Executor,
    batch_executor: BatchExecutor,
    snapshot_executor: SnapshotExecutor,
) -> io::Result<ServerHandle> {
    start_live(
        cfg,
        executor,
        batch_executor,
        snapshot_executor,
        unsupported_live_executor(),
    )
}

/// [`start_full`], plus a [`LiveExecutor`] serving the v4 live plane:
/// `subscribe` starts a windowed run on a dedicated thread and streams
/// its frames, `control` queues register writes against it, `journal`
/// fetches the recorded control journal and replay scenario.
pub fn start_live(
    cfg: ServeConfig,
    executor: Executor,
    batch_executor: BatchExecutor,
    snapshot_executor: SnapshotExecutor,
    live_executor: LiveExecutor,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let threads = if cfg.threads > 0 {
        cfg.threads
    } else {
        worker_count()
    };
    let cache = match &cfg.cache_dir {
        Some(dir) => ResultCache::persistent(dir)?,
        None => ResultCache::new(),
    };
    let core = Arc::new(ServeCore::with_cache(threads, cfg.admission, cache));
    let workers = (0..threads)
        .map(|lane| {
            let core = Arc::clone(&core);
            let executor = Arc::clone(&executor);
            let batch_executor = Arc::clone(&batch_executor);
            std::thread::spawn(move || core.worker_loop(lane, executor, batch_executor))
        })
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        let max_frame = cfg.max_frame_bytes;
        let default_deadline_ms = cfg.default_deadline_ms;
        std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                let core = Arc::clone(&core);
                let stop = Arc::clone(&stop);
                let snapshot_executor = Arc::clone(&snapshot_executor);
                let live_executor = Arc::clone(&live_executor);
                std::thread::spawn(move || {
                    handle_connection(
                        core,
                        snapshot_executor,
                        live_executor,
                        stream,
                        max_frame,
                        default_deadline_ms,
                        stop,
                        addr,
                    );
                });
            }
        })
    };
    Ok(ServerHandle {
        addr,
        core,
        accept: Some(accept),
        workers,
    })
}

fn send(writer: &mut TcpStream, response: &Value) -> io::Result<()> {
    writer.write_all(response.to_compact().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    core: Arc<ServeCore>,
    snapshot_executor: SnapshotExecutor,
    live_executor: LiveExecutor,
    stream: TcpStream,
    max_frame: usize,
    default_deadline_ms: Option<u64>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let _ = stream.set_nodelay(true);
    let peer = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match read_frame(&mut reader, max_frame) {
            Ok(None) | Err(FrameError::Io(_)) => return,
            Err(FrameError::TooLarge { limit }) => {
                core.count_frame();
                core.count_oversized();
                let resp = error_response("error", format!("frame exceeds {limit} bytes"));
                if send(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            Ok(Some(line)) => line,
        };
        core.count_frame();
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(message) => {
                core.count_malformed();
                if send(&mut writer, &error_response("error", message)).is_err() {
                    return;
                }
                continue;
            }
        };
        // `subscribe` breaks the one-response-per-request shape: after
        // the acknowledgement the connection streams frames until the
        // end-of-stream object, then reverts to request/response. It is
        // the only op handled outside `dispatch`.
        if let Request::Subscribe { spec, run, client } = request {
            match serve_subscription(
                &core,
                &live_executor,
                &mut writer,
                spec,
                run,
                client,
                &line,
                &peer,
            ) {
                Ok(()) => continue,
                Err(_) => return,
            }
        }
        let shutting_down = matches!(request, Request::Shutdown);
        let response = dispatch(
            &core,
            &snapshot_executor,
            request,
            &line,
            &peer,
            default_deadline_ms,
        );
        if send(&mut writer, &response).is_err() && !shutting_down {
            return;
        }
        if shutting_down {
            // The drain already completed inside dispatch; now stop the
            // accept loop. A self-connection unblocks its accept() call.
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            return;
        }
    }
}

/// Serves one `subscribe` request end to end: acknowledge, stream
/// frames until the end-of-stream object, then hand the connection back
/// to the request loop. `Ok` means the connection stays usable (even
/// after a refused subscription); `Err` means the peer went away.
#[allow(clippy::too_many_arguments)]
fn serve_subscription(
    core: &ServeCore,
    live_executor: &LiveExecutor,
    writer: &mut TcpStream,
    spec: Option<LiveSpec>,
    run: Option<u64>,
    client: Option<String>,
    line: &str,
    peer: &str,
) -> io::Result<()> {
    let (session, presub): (Arc<LiveSession>, Option<u64>) = match (spec, run) {
        (Some(spec), None) => {
            // Starting a run is charged like a submit: the whole frame
            // (scenario text included) against the client's bucket.
            let principal = client.unwrap_or_else(|| format!("peer:{peer}"));
            if !core.admission.admit(&principal, line.len() as u64 + 1) {
                let mut resp = error_response(
                    "subscribe",
                    format!("admission denied: client {principal:?} is over its ingress budget"),
                );
                resp.set("denied", Value::Bool(true));
                return send(writer, &resp);
            }
            let session = match core.live.create() {
                Ok(session) => session,
                Err(message) => return send(writer, &error_response("subscribe", message)),
            };
            // Register the creating subscriber *before* the executor
            // thread exists: with zero pacing the run can publish its
            // first frames immediately, and the creator must see every
            // one of them (an attaching subscriber, by contrast, only
            // sees frames from its attach point on).
            let sub = session.subscribe();
            let executor = Arc::clone(live_executor);
            let run_session = Arc::clone(&session);
            std::thread::spawn(move || {
                // Scenario errors surface through the session (a failed
                // end-of-stream object), not the subscribe ack: by the
                // time the executor parses anything the ack is long
                // gone.
                if let Err(message) = executor(&spec, Arc::clone(&run_session)) {
                    if !run_session.finished() {
                        run_session.finish(None, None, Some(message));
                    }
                }
            });
            (session, Some(sub))
        }
        (None, Some(run)) => match core.live.get(run) {
            Some(session) => (session, None),
            None => {
                return send(
                    writer,
                    &error_response("subscribe", format!("unknown live run {run}")),
                )
            }
        },
        // parse_request guarantees exactly one of spec/run.
        _ => return send(writer, &error_response("subscribe", "malformed subscribe")),
    };
    // Register (if attaching) before acknowledging so no frame can slip
    // between the ack and the stream.
    let sub = presub.unwrap_or_else(|| session.subscribe());
    let mut ack = response_head("subscribe", true);
    ack.set("run", Value::from(session.id()));
    if send(writer, &ack).is_err() {
        session.unsubscribe(sub);
        return Err(io::Error::other("peer gone"));
    }
    loop {
        match session.next_frame(sub, Duration::from_millis(500)) {
            NextFrame::TimedOut => continue,
            NextFrame::Frame(frame) => {
                if send(writer, &frame).is_err() {
                    session.unsubscribe(sub);
                    return Err(io::Error::other("peer gone"));
                }
            }
            NextFrame::End(end) => {
                session.unsubscribe(sub);
                return send(writer, &end);
            }
        }
    }
}

fn dispatch(
    core: &ServeCore,
    snapshot_executor: &SnapshotExecutor,
    request: Request,
    line: &str,
    peer: &str,
    default_deadline_ms: Option<u64>,
) -> Value {
    match request {
        Request::Ping => response_head("ping", true),
        Request::RegisterWorker { .. } => {
            error_response("register_worker", "this server is not a coordinator")
        }
        Request::Snapshot { scenario, warmup } => {
            // Warming runs inline on the connection thread: the op is
            // synchronous by design (its caller is usually another
            // server's warm-boundary store, not an interactive client).
            match snapshot_executor(&scenario, warmup) {
                Err(message) => error_response("snapshot", message),
                Ok(None) => error_response(
                    "snapshot",
                    "scenario has no quiesced boundary within the slack window",
                ),
                Ok(Some(encoded)) => {
                    let mut resp = response_head("snapshot", true);
                    resp.set("bytes", Value::from(encoded.len() as u64));
                    resp.set("blob_hex", Value::str(to_hex(&encoded)));
                    resp
                }
            }
        }
        Request::Submit {
            spec,
            client,
            deadline_ms,
        } => {
            let principal = client.unwrap_or_else(|| format!("peer:{peer}"));
            // Charge the frame (newline included) to the client's bucket.
            if !core.admission.admit(&principal, line.len() as u64 + 1) {
                let mut resp = error_response(
                    "submit",
                    format!("admission denied: client {principal:?} is over its ingress budget"),
                );
                resp.set("denied", Value::Bool(true));
                return resp;
            }
            let deadline = deadline_ms
                .or(default_deadline_ms)
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            match core.submit(spec, deadline) {
                Err(message) => error_response("submit", message),
                Ok((job, cached)) => {
                    let mut resp = response_head("submit", true);
                    resp.set("job", Value::from(job));
                    resp.set("cached", Value::Bool(cached.is_some()));
                    resp.set(
                        "state",
                        Value::str(if cached.is_some() { "done" } else { "queued" }),
                    );
                    resp
                }
            }
        }
        Request::SubmitBatch {
            spec,
            client,
            deadline_ms,
        } => {
            let principal = client.unwrap_or_else(|| format!("peer:{peer}"));
            // The whole frame — base scenario plus every point — is
            // charged to the client's bucket in one admission decision:
            // a sweep slice competes for ingress like the equivalent
            // sequence of single submissions would.
            if !core.admission.admit(&principal, line.len() as u64 + 1) {
                let mut resp = error_response(
                    "submit_batch",
                    format!("admission denied: client {principal:?} is over its ingress budget"),
                );
                resp.set("denied", Value::Bool(true));
                return resp;
            }
            let deadline = deadline_ms
                .or(default_deadline_ms)
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            match core.submit_batch(spec, deadline) {
                Err(message) => error_response("submit_batch", message),
                Ok((acks, lane)) => {
                    let mut resp = response_head("submit_batch", true);
                    let mut jobs = Value::arr();
                    let mut cached = Value::arr();
                    for (id, hit) in &acks {
                        jobs.push(Value::from(*id));
                        cached.push(Value::Bool(hit.is_some()));
                    }
                    resp.set("jobs", jobs);
                    resp.set("cached", cached);
                    if let Some(lane) = lane {
                        resp.set("lane", Value::from(lane as u64));
                    }
                    resp
                }
            }
        }
        Request::Status { job } => match core.status(job) {
            None => error_response("status", format!("unknown job {job}")),
            Some((state, position)) => {
                let mut resp = response_head("status", true);
                resp.set("job", Value::from(job));
                resp.set("state", Value::str(state.wire_name()));
                if let Some(pos) = position {
                    resp.set("position", Value::from(pos as u64));
                }
                if let JobState::Failed(message) = state {
                    resp.set("error", Value::str(message));
                }
                resp
            }
        },
        Request::Result { job } => match core.result(job) {
            None => error_response("result", format!("unknown job {job}")),
            Some((state, report)) => match state {
                JobState::Done => {
                    let mut resp = response_head("result", true);
                    resp.set("job", Value::from(job));
                    resp.set("state", Value::str("done"));
                    // The report is embedded verbatim: a cached job's
                    // response is byte-identical to the fresh run's.
                    let report = report.expect("done jobs carry a report");
                    resp.set("report", (*report).clone());
                    resp
                }
                JobState::Failed(message) => {
                    let mut resp = error_response("result", message);
                    resp.set("job", Value::from(job));
                    resp.set("state", Value::str("failed"));
                    resp
                }
                JobState::Expired => {
                    let mut resp = error_response("result", "deadline expired before execution");
                    resp.set("job", Value::from(job));
                    resp.set("state", Value::str("expired"));
                    resp
                }
                pending => {
                    let mut resp = response_head("result", true);
                    resp.set("job", Value::from(job));
                    resp.set("state", Value::str(pending.wire_name()));
                    resp
                }
            },
        },
        Request::Metrics { format } => {
            let registry = core.metrics();
            let mut resp = response_head("metrics", true);
            match format {
                MetricsFormat::Json => resp.set("metrics", registry.to_json()),
                MetricsFormat::Csv => resp.set("csv", Value::str(registry.to_csv())),
            };
            resp
        }
        // `subscribe` is intercepted in `handle_connection` (it turns
        // the connection into a stream); reaching here is impossible.
        Request::Subscribe { .. } => error_response("subscribe", "internal: unrouted subscribe"),
        Request::Control { run, target, set } => match core.live.get(run) {
            None => error_response("control", format!("unknown live run {run}")),
            Some(session) => match session.control(ControlWrite { target, set }) {
                Err(message) => error_response("control", message),
                Ok(position) => {
                    let mut resp = response_head("control", true);
                    resp.set("run", Value::from(run));
                    resp.set("queued", Value::from(position));
                    resp
                }
            },
        },
        Request::Journal { run } => match core.live.get(run) {
            None => error_response("journal", format!("unknown live run {run}")),
            Some(session) => {
                let mut resp = response_head("journal", true);
                if let Some(pairs) = session.journal_doc().as_obj() {
                    for (key, value) in pairs {
                        resp.set(key.clone(), value.clone());
                    }
                }
                resp
            }
        },
        Request::Shutdown => {
            let summary = core.drain();
            let mut resp = response_head("shutdown", true);
            resp.set("submitted", Value::from(summary.submitted));
            resp.set("executed", Value::from(summary.executed));
            resp.set("failed", Value::from(summary.failed));
            resp.set("expired", Value::from(summary.expired));
            resp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobSpec;
    use fgqos_bench::report::Report;
    use std::io::BufRead;

    fn stub_executor() -> Executor {
        Arc::new(|spec: &JobSpec| {
            let mut r = Report::new("stub");
            r.note(format!("cycles={}", spec.cycles));
            Ok(r)
        })
    }

    fn test_server() -> ServerHandle {
        start(
            ServeConfig {
                threads: 2,
                ..ServeConfig::default()
            },
            stub_executor(),
        )
        .expect("bind loopback")
    }

    struct Wire {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Wire {
        fn connect(addr: SocketAddr) -> Wire {
            let writer = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(writer.try_clone().expect("clone"));
            Wire { reader, writer }
        }

        fn roundtrip(&mut self, frame: &str) -> Value {
            self.writer
                .write_all(format!("{frame}\n").as_bytes())
                .expect("write");
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read");
            Value::parse(line.trim_end()).expect("response parses")
        }
    }

    fn shutdown(wire: &mut Wire, server: ServerHandle) {
        let resp = wire.roundtrip(r#"{"op":"shutdown"}"#);
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
        server.join();
    }

    #[test]
    fn submit_then_result_roundtrip() {
        let server = test_server();
        let mut wire = Wire::connect(server.addr());
        let ack = wire.roundtrip(r#"{"op":"submit","scenario":"s","cycles":123}"#);
        assert_eq!(ack.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(ack.get("cached"), Some(&Value::Bool(false)));
        let job = ack.get("job").unwrap().as_u64().unwrap();
        let report = loop {
            let resp = wire.roundtrip(&format!(r#"{{"op":"result","job":{job}}}"#));
            assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
            if resp.get("state").unwrap().as_str() == Some("done") {
                break resp.get("report").unwrap().clone();
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let report = Report::from_json(&report).expect("valid report document");
        assert!(report.render_text().contains("cycles=123"));
        shutdown(&mut wire, server);
    }

    #[test]
    fn malformed_and_unknown_frames_keep_the_connection_alive() {
        let server = test_server();
        let mut wire = Wire::connect(server.addr());
        let resp = wire.roundtrip("this is not json");
        assert_eq!(resp.get("ok"), Some(&Value::Bool(false)));
        let resp = wire.roundtrip(r#"{"op":"frobnicate"}"#);
        assert_eq!(resp.get("ok"), Some(&Value::Bool(false)));
        let resp = wire.roundtrip(r#"{"op":"status","job":99}"#);
        assert!(resp
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown job"));
        // The connection still works for real traffic afterwards.
        let ack = wire.roundtrip(r#"{"op":"submit","scenario":"s"}"#);
        assert_eq!(ack.get("ok"), Some(&Value::Bool(true)));
        shutdown(&mut wire, server);
    }

    #[test]
    fn metrics_export_has_both_formats() {
        let server = test_server();
        let mut wire = Wire::connect(server.addr());
        wire.roundtrip(r#"{"op":"submit","scenario":"s"}"#);
        let json = wire.roundtrip(r#"{"op":"metrics"}"#);
        let metrics = json.get("metrics").expect("metrics document");
        assert!(metrics
            .get("metrics")
            .unwrap()
            .get("serve.jobs.submitted")
            .is_some());
        let csv = wire.roundtrip(r#"{"op":"metrics","format":"csv"}"#);
        assert!(csv
            .get("csv")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("serve.frames"));
        shutdown(&mut wire, server);
    }

    #[test]
    fn shutdown_drains_and_reports_counters() {
        let server = test_server();
        let mut wire = Wire::connect(server.addr());
        for i in 0..4 {
            let ack = wire.roundtrip(&format!(r#"{{"op":"submit","scenario":"s","cycles":{i}}}"#));
            assert_eq!(ack.get("ok"), Some(&Value::Bool(true)));
        }
        let addr = server.addr();
        let resp = wire.roundtrip(r#"{"op":"shutdown"}"#);
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(resp.get("submitted").unwrap().as_u64(), Some(4));
        assert_eq!(resp.get("executed").unwrap().as_u64(), Some(4));
        server.join();
        // New connections are refused once the listener is down.
        assert!(TcpStream::connect(addr).is_err());
    }
}
