//! Live run sessions: telemetry fan-out and the runtime control plane.
//!
//! A *live run* is a windowed simulation (`Soc::run_windowed` under the
//! hood) executing on its own thread while clients interact with it over
//! the v4 wire ops:
//!
//! * `subscribe` attaches a telemetry stream: one `fgqos.live` frame per
//!   window, fanned out to every subscriber through a **bounded
//!   per-subscriber queue**. A slow subscriber never stalls the
//!   simulation or its peers — once its queue holds
//!   [`SUBSCRIBER_QUEUE_CAP`] frames the oldest frame is dropped and the
//!   subscriber's drop counter advances (drops are visible as gaps in
//!   the `window` sequence and as the `dropped` count in the end-of-stream
//!   message).
//! * `control` queues a register write ([`ControlWrite`]). The run
//!   applies queued writes at its next window boundary, through the very
//!   code path a `[phase]` directive uses, and records each accepted
//!   write in the session's **control journal** stamped with the sim
//!   cycle it took effect.
//!
//! The journal ([`JournalEntry`], serialized by [`journal_json`]) is the
//! determinism contract: replaying it into the original scenario as
//! synthesized `[phase]` entries reproduces the live run's final report
//! and fingerprint byte-for-byte. The session layer only stores what the
//! executor hands it; the replay synthesis itself lives with the
//! scenario engine (`fgqos::runner`).
//!
//! Everything here is transport-agnostic plumbing — no sockets, no
//! protocol framing — so the engine side can be driven directly by
//! tests.

use crate::protocol::ControlSet;
use fgqos_sim::json::Value;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Schema identifier carried by every streamed frame.
pub const LIVE_SCHEMA: &str = "fgqos.live";
/// Frame schema version.
pub const LIVE_VERSION: u64 = 1;
/// Schema identifier of the serialized control journal.
pub const JOURNAL_SCHEMA: &str = "fgqos.control-journal";
/// Control journal format version.
pub const JOURNAL_VERSION: u64 = 1;
/// Per-subscriber frame queue bound. When a subscriber falls this many
/// frames behind, its oldest queued frame is dropped (and counted).
pub const SUBSCRIBER_QUEUE_CAP: usize = 256;

/// One queued register write awaiting the run's next window boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlWrite {
    /// Best-effort master whose regulator is written.
    pub target: String,
    /// The register write.
    pub set: ControlSet,
}

/// One accepted control write, stamped with when it took effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Sim cycle the write was applied at (a window boundary).
    pub at: u64,
    /// Index of the window boundary that absorbed the write.
    pub window: u64,
    /// Best-effort master whose regulator was written.
    pub target: String,
    /// The register write.
    pub set: ControlSet,
}

impl JournalEntry {
    /// The entry as a journal/frame JSON object.
    pub fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set("at", Value::from(self.at));
        v.set("window", Value::from(self.window));
        v.set("target", Value::str(self.target.clone()));
        v.set("set", Value::str(self.set.key()));
        v.set("value", self.set.value());
        v
    }
}

/// Serializes a control journal: `{"schema":"fgqos.control-journal",
/// "version":1,"entries":[...]}`.
pub fn journal_json(entries: &[JournalEntry]) -> Value {
    let mut doc = Value::obj();
    doc.set("schema", Value::str(JOURNAL_SCHEMA));
    doc.set("version", Value::from(JOURNAL_VERSION));
    let mut arr = Value::arr();
    for e in entries {
        arr.push(e.to_json());
    }
    doc.set("entries", arr);
    doc
}

/// What the executor finds at a window boundary after draining the
/// session's control queue.
#[derive(Debug, Default)]
pub struct BoundaryCmd {
    /// Queued writes, in arrival order.
    pub writes: Vec<ControlWrite>,
    /// The server is shutting down: finish early at this boundary.
    pub abort: bool,
}

/// The result of waiting for the next streamed frame.
#[derive(Debug)]
pub enum NextFrame {
    /// A telemetry frame to forward.
    Frame(Value),
    /// The run finished; this is the end-of-stream object (already
    /// carrying the subscriber's drop count and the final state).
    End(Value),
    /// Nothing arrived within the wait bound; poll again.
    TimedOut,
}

struct SubQueue {
    frames: VecDeque<Value>,
    dropped: u64,
}

struct SessionInner {
    pending: VecDeque<ControlWrite>,
    subscribers: HashMap<u64, SubQueue>,
    next_sub: u64,
    journal: Vec<JournalEntry>,
    /// Valid control targets; `None` until the executor calls `begin`.
    targets: Option<Vec<String>>,
    frames: u64,
    dropped: u64,
    controls_queued: u64,
    finished: bool,
    error: Option<String>,
    report: Option<Value>,
    replay_scenario: Option<String>,
    abort: bool,
}

/// One live run's shared state: the meeting point of the executor
/// thread (publishing frames, draining controls, appending the journal)
/// and any number of subscriber/control connections.
pub struct LiveSession {
    id: u64,
    inner: Mutex<SessionInner>,
    wake: Condvar,
}

impl LiveSession {
    fn new(id: u64) -> Self {
        LiveSession {
            id,
            inner: Mutex::new(SessionInner {
                pending: VecDeque::new(),
                subscribers: HashMap::new(),
                next_sub: 0,
                journal: Vec::new(),
                targets: None,
                frames: 0,
                dropped: 0,
                controls_queued: 0,
                finished: false,
                error: None,
                report: None,
                replay_scenario: None,
                abort: false,
            }),
            wake: Condvar::new(),
        }
    }

    /// The run id clients address this session by.
    pub fn id(&self) -> u64 {
        self.id
    }

    // ---- executor side ---------------------------------------------------

    /// Declares the run started and which masters accept control writes
    /// (the scenario's best-effort masters). Writes queued before this
    /// point are validated late, at the first boundary.
    pub fn begin(&self, targets: Vec<String>) {
        let mut inner = self.inner.lock().unwrap();
        inner.targets = Some(targets);
    }

    /// Drains every queued control write (arrival order) and reports
    /// whether the run should abort at this boundary.
    pub fn drain_controls(&self) -> BoundaryCmd {
        let mut inner = self.inner.lock().unwrap();
        BoundaryCmd {
            writes: inner.pending.drain(..).collect(),
            abort: inner.abort,
        }
    }

    /// Records one accepted control write in the journal.
    pub fn record(&self, entry: JournalEntry) {
        let mut inner = self.inner.lock().unwrap();
        inner.journal.push(entry);
    }

    /// Fans a telemetry frame out to every subscriber, dropping the
    /// oldest queued frame of any subscriber at its queue cap.
    pub fn publish(&self, frame: Value) {
        let mut inner = self.inner.lock().unwrap();
        inner.frames += 1;
        let mut dropped = 0;
        for sub in inner.subscribers.values_mut() {
            if sub.frames.len() >= SUBSCRIBER_QUEUE_CAP {
                sub.frames.pop_front();
                sub.dropped += 1;
                dropped += 1;
            }
            sub.frames.push_back(frame.clone());
        }
        inner.dropped += dropped;
        drop(inner);
        self.wake.notify_all();
    }

    /// Marks the run finished. On success `report` is the final report
    /// document and `replay_scenario` the synthesized replay text; on
    /// failure `error` says what went wrong. Subscribers drain their
    /// queues, then receive the end-of-stream object.
    pub fn finish(
        &self,
        report: Option<Value>,
        replay_scenario: Option<String>,
        error: Option<String>,
    ) {
        let mut inner = self.inner.lock().unwrap();
        inner.finished = true;
        inner.report = report;
        inner.replay_scenario = replay_scenario;
        inner.error = error;
        drop(inner);
        self.wake.notify_all();
    }

    /// Sleeps up to `dur` (frame pacing), returning early — without
    /// finishing the wait — if the session is told to abort.
    pub fn pause(&self, dur: Duration) {
        let deadline = Instant::now() + dur;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.abort {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (next, _) = self.wake.wait_timeout(inner, deadline - now).unwrap();
            inner = next;
        }
    }

    // ---- client side -----------------------------------------------------

    /// Registers a subscriber; returns its id for [`LiveSession::next_frame`].
    pub fn subscribe(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let sub = inner.next_sub;
        inner.next_sub += 1;
        inner.subscribers.insert(
            sub,
            SubQueue {
                frames: VecDeque::new(),
                dropped: 0,
            },
        );
        sub
    }

    /// Deregisters a subscriber (a disconnected client stops consuming
    /// queue memory).
    pub fn unsubscribe(&self, sub: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.subscribers.remove(&sub);
    }

    /// Pops the subscriber's next frame, waiting up to `timeout`.
    ///
    /// Queued frames drain before the end-of-stream object, so a
    /// finished run still delivers everything that was published.
    pub fn next_frame(&self, sub: u64, timeout: Duration) -> NextFrame {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(q) = inner.subscribers.get_mut(&sub) {
                if let Some(frame) = q.frames.pop_front() {
                    return NextFrame::Frame(frame);
                }
            } else {
                // Unknown subscriber: treat as an already-ended stream.
                return NextFrame::End(self.end_object(&inner, 0));
            }
            if inner.finished {
                let dropped = inner.subscribers.get(&sub).map_or(0, |q| q.dropped);
                return NextFrame::End(self.end_object(&inner, dropped));
            }
            let now = Instant::now();
            if now >= deadline {
                return NextFrame::TimedOut;
            }
            let (next, _) = self.wake.wait_timeout(inner, deadline - now).unwrap();
            inner = next;
        }
    }

    fn end_object(&self, inner: &SessionInner, dropped: u64) -> Value {
        let mut v = Value::obj();
        v.set("schema", Value::str(LIVE_SCHEMA));
        v.set("version", Value::from(LIVE_VERSION));
        v.set("stream", Value::str("end"));
        v.set("run", Value::from(self.id));
        v.set("frames", Value::from(inner.frames));
        v.set("controls", Value::from(inner.journal.len()));
        v.set("dropped", Value::from(dropped));
        match &inner.error {
            None => {
                v.set("state", Value::str("done"));
            }
            Some(e) => {
                v.set("state", Value::str("failed"));
                v.set("error", Value::str(e.clone()));
            }
        }
        v
    }

    /// Queues a control write; returns its position in the pending
    /// queue. Rejected once the run finished, or when the target is not
    /// a best-effort master of the running scenario.
    pub fn control(&self, write: ControlWrite) -> Result<u64, String> {
        let mut inner = self.inner.lock().unwrap();
        if inner.finished {
            return Err(format!("live run {} already finished", self.id));
        }
        if let Some(targets) = &inner.targets {
            if !targets.iter().any(|t| t == &write.target) {
                return Err(format!(
                    "unknown control target '{}' (best-effort masters: {})",
                    write.target,
                    targets.join(", ")
                ));
            }
        }
        inner.pending.push_back(write);
        inner.controls_queued += 1;
        Ok(inner.pending.len() as u64 - 1)
    }

    /// The run's journal document: control journal, lifecycle state,
    /// and — once finished — the synthesized replay scenario plus the
    /// final report.
    pub fn journal_doc(&self) -> Value {
        let inner = self.inner.lock().unwrap();
        let mut v = Value::obj();
        v.set("run", Value::from(self.id));
        v.set(
            "state",
            Value::str(match (inner.finished, &inner.error) {
                (false, _) => "running",
                (true, None) => "done",
                (true, Some(_)) => "failed",
            }),
        );
        if let Some(e) = &inner.error {
            v.set("error", Value::str(e.clone()));
        }
        v.set("journal", journal_json(&inner.journal));
        if let Some(replay) = &inner.replay_scenario {
            v.set("replay_scenario", Value::str(replay.clone()));
        }
        if let Some(report) = &inner.report {
            v.set("report", report.clone());
        }
        v
    }

    /// Whether the run has finished (successfully or not).
    pub fn finished(&self) -> bool {
        self.inner.lock().unwrap().finished
    }

    /// Blocks until the run finishes, up to `timeout`; returns whether
    /// it did.
    pub fn wait_finished(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        while !inner.finished {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self.wake.wait_timeout(inner, deadline - now).unwrap();
            inner = next;
        }
        true
    }

    fn request_abort(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.abort = true;
        drop(inner);
        self.wake.notify_all();
    }

    fn counters(&self) -> (u64, u64, u64, bool) {
        let inner = self.inner.lock().unwrap();
        (
            inner.frames,
            inner.controls_queued,
            inner.dropped,
            inner.finished,
        )
    }
}

/// Aggregated live-plane counters for the server's metrics export.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LiveMetrics {
    /// Live runs ever started.
    pub sessions: u64,
    /// Live runs still executing.
    pub active: u64,
    /// Telemetry frames published across all runs.
    pub frames: u64,
    /// Control writes accepted into pending queues.
    pub controls: u64,
    /// Frames dropped by subscriber queue backpressure.
    pub dropped: u64,
}

/// The server's table of live runs, addressed by run id.
#[derive(Default)]
pub struct LiveRegistry {
    sessions: Mutex<HashMap<u64, Arc<LiveSession>>>,
    next: AtomicU64,
    closed: AtomicBool,
}

impl LiveRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new session. Refused while the server is draining.
    pub fn create(&self) -> Result<Arc<LiveSession>, String> {
        if self.closed.load(Ordering::SeqCst) {
            return Err("server is shutting down".into());
        }
        let id = self.next.fetch_add(1, Ordering::SeqCst) + 1;
        let session = Arc::new(LiveSession::new(id));
        self.sessions.lock().unwrap().insert(id, session.clone());
        Ok(session)
    }

    /// Looks a session up by run id (finished sessions stay queryable
    /// for `journal`).
    pub fn get(&self, run: u64) -> Option<Arc<LiveSession>> {
        self.sessions.lock().unwrap().get(&run).cloned()
    }

    /// Starts the drain: refuses new sessions, tells running ones to
    /// finish at their next window boundary, then waits (up to
    /// `timeout`) for each to do so.
    pub fn drain(&self, timeout: Duration) {
        self.closed.store(true, Ordering::SeqCst);
        let sessions: Vec<Arc<LiveSession>> =
            self.sessions.lock().unwrap().values().cloned().collect();
        for s in &sessions {
            s.request_abort();
        }
        for s in &sessions {
            s.wait_finished(timeout);
        }
    }

    /// Aggregated counters across every session, for `metrics`.
    pub fn metrics(&self) -> LiveMetrics {
        let sessions = self.sessions.lock().unwrap();
        let mut m = LiveMetrics {
            sessions: sessions.len() as u64,
            ..LiveMetrics::default()
        };
        for s in sessions.values() {
            let (frames, controls, dropped, finished) = s.counters();
            m.frames += frames;
            m.controls += controls;
            m.dropped += dropped;
            if !finished {
                m.active += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(target: &str, set: ControlSet) -> ControlWrite {
        ControlWrite {
            target: target.into(),
            set,
        }
    }

    #[test]
    fn controls_queue_and_drain_in_arrival_order() {
        let reg = LiveRegistry::new();
        let s = reg.create().unwrap();
        s.begin(vec!["dma".into()]);
        s.control(write("dma", ControlSet::Budget(1))).unwrap();
        s.control(write("dma", ControlSet::Budget(2))).unwrap();
        let cmd = s.drain_controls();
        assert!(!cmd.abort);
        assert_eq!(
            cmd.writes.iter().map(|w| w.set).collect::<Vec<_>>(),
            vec![ControlSet::Budget(1), ControlSet::Budget(2)]
        );
        assert!(
            s.drain_controls().writes.is_empty(),
            "drained queue stays empty"
        );
    }

    #[test]
    fn control_rejects_unknown_targets_and_finished_runs() {
        let reg = LiveRegistry::new();
        let s = reg.create().unwrap();
        s.begin(vec!["dma".into()]);
        let err = s
            .control(write("ghost", ControlSet::Budget(1)))
            .unwrap_err();
        assert!(err.contains("unknown control target"), "{err}");
        s.finish(None, None, None);
        let err = s.control(write("dma", ControlSet::Budget(1))).unwrap_err();
        assert!(err.contains("already finished"), "{err}");
    }

    #[test]
    fn slow_subscriber_drops_oldest_and_counts() {
        let reg = LiveRegistry::new();
        let s = reg.create().unwrap();
        let sub = s.subscribe();
        for i in 0..(SUBSCRIBER_QUEUE_CAP as u64 + 3) {
            let mut f = Value::obj();
            f.set("window", Value::from(i));
            s.publish(f);
        }
        s.finish(None, None, None);
        // The three oldest frames were dropped; the survivors start at 3.
        match s.next_frame(sub, Duration::from_secs(1)) {
            NextFrame::Frame(f) => assert_eq!(f.get("window").unwrap().as_u64(), Some(3)),
            other => panic!("expected a frame, got {other:?}"),
        }
        let mut seen = 1;
        loop {
            match s.next_frame(sub, Duration::from_secs(1)) {
                NextFrame::Frame(_) => seen += 1,
                NextFrame::End(end) => {
                    assert_eq!(end.get("dropped").unwrap().as_u64(), Some(3));
                    assert_eq!(end.get("state").unwrap().as_str(), Some("done"));
                    break;
                }
                NextFrame::TimedOut => panic!("finished stream must not time out"),
            }
        }
        assert_eq!(seen, SUBSCRIBER_QUEUE_CAP as u64);
        assert_eq!(reg.metrics().dropped, 3);
    }

    #[test]
    fn fan_out_is_independent_per_subscriber() {
        let reg = LiveRegistry::new();
        let s = reg.create().unwrap();
        let a = s.subscribe();
        let b = s.subscribe();
        s.publish(Value::obj());
        match s.next_frame(a, Duration::from_secs(1)) {
            NextFrame::Frame(_) => {}
            other => panic!("subscriber a: {other:?}"),
        }
        // a consumed its copy; b's queue is untouched.
        match s.next_frame(b, Duration::from_secs(1)) {
            NextFrame::Frame(_) => {}
            other => panic!("subscriber b: {other:?}"),
        }
    }

    #[test]
    fn drain_aborts_running_sessions() {
        let reg = LiveRegistry::new();
        let s = reg.create().unwrap();
        let exec = {
            let s = s.clone();
            std::thread::spawn(move || {
                // A stub executor: loop "windows" until told to abort.
                loop {
                    if s.drain_controls().abort {
                        s.finish(None, None, Some("aborted".into()));
                        return;
                    }
                    s.pause(Duration::from_millis(5));
                }
            })
        };
        reg.drain(Duration::from_secs(5));
        exec.join().unwrap();
        assert!(s.finished());
        assert!(reg.create().is_err(), "drained registry refuses new runs");
    }

    #[test]
    fn journal_doc_shape() {
        let reg = LiveRegistry::new();
        let s = reg.create().unwrap();
        s.begin(vec!["dma".into()]);
        s.record(JournalEntry {
            at: 10_000,
            window: 0,
            target: "dma".into(),
            set: ControlSet::Enable(false),
        });
        s.finish(Some(Value::obj()), Some("scenario text".into()), None);
        let doc = s.journal_doc();
        assert_eq!(doc.get("state").unwrap().as_str(), Some("done"));
        let j = doc.get("journal").unwrap();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(JOURNAL_SCHEMA));
        assert_eq!(j.get("version").unwrap().as_u64(), Some(JOURNAL_VERSION));
        let entries = j.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("at").unwrap().as_u64(), Some(10_000));
        assert_eq!(entries[0].get("set").unwrap().as_str(), Some("enable"));
        assert_eq!(entries[0].get("value"), Some(&Value::Bool(false)));
        assert_eq!(
            doc.get("replay_scenario").unwrap().as_str(),
            Some("scenario text")
        );
        assert!(doc.get("report").is_some());
    }
}
