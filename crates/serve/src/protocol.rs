//! The `fgqos.serve v4` wire protocol.
//!
//! Frames are newline-delimited JSON: one request object per line, one
//! response object per line, in order. Both sides reuse
//! [`fgqos_sim::json`] for parsing and serialization — no external
//! dependencies, and responses are byte-deterministic (insertion-order
//! keys, compact layout).
//!
//! # Requests
//!
//! ```json
//! {"op":"submit","scenario":"<text>","cycles":200000,"until_done":"cpu",
//!  "client":"alice","deadline_ms":5000}
//! {"op":"submit_batch","scenario":"<text>","cycles":200000,
//!  "warmup":1000000,"points":[{"period":1000,"budget":2048}],
//!  "client":"alice","deadline_ms":5000}
//! {"op":"status","job":1}
//! {"op":"result","job":1}
//! {"op":"metrics","format":"json"}
//! {"op":"ping"}
//! {"op":"register_worker","addr":"127.0.0.1:34567"}
//! {"op":"snapshot","scenario":"<text>","warmup":1000000}
//! {"op":"subscribe","scenario":"<text>","cycles":200000,"window":10000,
//!  "client":"alice"}
//! {"op":"subscribe","run":1}
//! {"op":"control","run":1,"target":"dma","set":"budget","value":4096}
//! {"op":"journal","run":1}
//! {"op":"shutdown"}
//! ```
//!
//! Only `op` (and `scenario` / `job` / `points` where shown) is
//! required; the other fields default. `client` names the
//! admission-control principal (defaulting to the peer address),
//! `deadline_ms` bounds how long the job may sit in the queue before it
//! expires unexecuted.
//!
//! Protocol v3 adds the fleet ops: `ping` is a liveness probe (used as
//! the coordinator's heartbeat), `register_worker` announces a worker's
//! serve address to a coordinator, and `snapshot` warms a scenario to a
//! quiesced boundary and returns it as a hex-encoded, fingerprint-checked
//! snapshot blob (the same container a `BlobStore` files on disk). All
//! v2 requests are unchanged.
//!
//! Protocol v4 adds the live ops (see [`crate::live`]): `subscribe`
//! starts a windowed live run (or attaches to a running one by id) and
//! — uniquely in this protocol — turns the connection into a stream:
//! after the acknowledgement, one `fgqos.live` frame object per window
//! is pushed per line until an `"stream":"end"` object, after which the
//! connection reverts to request/response. `control` queues a
//! budget/period/enable register write against a live run (applied at
//! the next window boundary and journaled with the cycle it took
//! effect), and `journal` fetches a run's control journal, replay
//! scenario and — once finished — its final report. All v3 requests are
//! unchanged.
//!
//! `submit_batch` (v2) is a warm-start sweep slice: one scenario warmed
//! for `warmup` cycles to a quiesced boundary, then one divergent run
//! per point with that point's best-effort `period`/`budget` programmed
//! at the boundary. Every point gets its own job id (individually
//! `status`-/`result`-addressable and result-cached); the uncached
//! points execute together on a single worker lane so the boundary
//! `SocSnapshot` is captured once and forked per point.
//!
//! # Responses
//!
//! Every response carries `{"schema":"fgqos.serve","version":2,
//! "ok":<bool>,"op":"<request op>"}` plus op-specific fields. A `result`
//! response for a finished job embeds the full
//! [`fgqos_bench::report::Report`] JSON document under `"report"` — the
//! same schema the `exp_*` binaries write to `results/`. A
//! `submit_batch` acknowledgement carries `"jobs"` (one id per point, in
//! point order), `"cached"` (parallel booleans) and `"lane"` (the worker
//! lane the uncached remainder was pinned to, absent when everything was
//! answered from the cache).

use fgqos_sim::json::Value;
use std::io::BufRead;

/// Schema identifier carried by every response.
pub const SERVE_SCHEMA: &str = "fgqos.serve";
/// Protocol version carried by every response. Version 2 added
/// `submit_batch` and the per-lane metrics; version 3 added the fleet
/// ops (`ping`, `register_worker`, `snapshot`); version 4 added the
/// live ops (`subscribe`, `control`, `journal`). All earlier requests
/// are unchanged.
pub const SERVE_VERSION: u64 = 4;
/// Default cap on a single request frame, in bytes (newline included).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 256 * 1024;
/// Default telemetry window of a live run, in cycles (`subscribe`
/// requests omitting `window`).
pub const DEFAULT_LIVE_WINDOW: u64 = 10_000;

/// What to execute: the cacheable identity of a job.
///
/// Two submissions with equal `JobSpec`s are the same job as far as the
/// result cache is concerned.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Scenario file text (the same format `fgqos <file>` reads).
    pub scenario: String,
    /// Cycle budget for the run.
    pub cycles: u64,
    /// Optional `--until-done` master name.
    pub until_done: Option<String>,
}

/// One grid point of a batch: the regulator knobs programmed at the
/// warm boundary before the point's divergent run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchPoint {
    /// Replenishment period (cycles) programmed into every best-effort
    /// regulator.
    pub period: u64,
    /// Per-window budget (bytes) programmed into every best-effort
    /// regulator.
    pub budget: u64,
}

/// The operation family a batch belongs to. Tagging the batch identity
/// keeps cache namespaces disjoint: a hunt candidate and a sweep point
/// with identical `(scenario, cycles, warmup, period, budget)` must
/// never answer each other from the result cache, because the two
/// operations carry different downstream guarantees (a sweep point is a
/// published grid result; a hunt point is a search probe whose report
/// feeds the refinement loop and may be re-evaluated under different
/// engine settings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BatchKind {
    /// A warm-start sweep slice (protocol v2 `submit_batch` default).
    #[default]
    Sweep,
    /// A hunt candidate batch (`fgqos hunt` evaluation lanes).
    Hunt,
}

impl BatchKind {
    /// Wire and cache-key tag. Lower-case, stable — cache keys embed it.
    pub fn as_str(self) -> &'static str {
        match self {
            BatchKind::Sweep => "sweep",
            BatchKind::Hunt => "hunt",
        }
    }

    /// Parses a wire tag; `Err` names the unknown tag.
    pub fn parse(tag: &str) -> Result<Self, String> {
        match tag {
            "sweep" => Ok(BatchKind::Sweep),
            "hunt" => Ok(BatchKind::Hunt),
            other => Err(format!("unknown batch kind '{other}'")),
        }
    }
}

/// A warm-start sweep slice: one shared scenario prefix, many divergent
/// points.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchSpec {
    /// Scenario file text (the same format `fgqos <file>` reads).
    pub scenario: String,
    /// Cycle budget of each point's divergent run, measured from the
    /// warm boundary.
    pub cycles: u64,
    /// Optional `--until-done` master name for the divergent runs.
    pub until_done: Option<String>,
    /// Shared warm-up cycles run before the boundary is captured.
    pub warmup: u64,
    /// The grid points, in submission order.
    pub points: Vec<BatchPoint>,
    /// Operation family, namespacing the per-point cache keys.
    pub kind: BatchKind,
}

/// A live run to start: the `subscribe` op's new-run identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LiveSpec {
    /// Scenario file text (the same format `fgqos <file>` reads).
    pub scenario: String,
    /// Cycle budget for the run.
    pub cycles: u64,
    /// Telemetry window in cycles: one frame per window, and the
    /// granularity at which queued control writes take effect.
    pub window: u64,
    /// Host milliseconds slept after each emitted frame, pacing the run
    /// for interactive consumers (0 = run at full simulation speed).
    /// Purely host-side: sim semantics, journal and replay are
    /// unaffected.
    pub pace_ms: u64,
}

/// One live register write: which regulator knob to program.
///
/// The integer variants carry `u32` because that is the regulator's
/// register width; the wire accepts any JSON integer and rejects
/// out-of-range values at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlSet {
    /// Program the per-window byte budget.
    Budget(u32),
    /// Program the window length in cycles (must be > 0).
    Period(u32),
    /// Enable or disable the regulator.
    Enable(bool),
}

impl ControlSet {
    /// The wire/journal `set` tag.
    pub fn key(self) -> &'static str {
        match self {
            ControlSet::Budget(_) => "budget",
            ControlSet::Period(_) => "period",
            ControlSet::Enable(_) => "enable",
        }
    }

    /// The wire/journal `value` field (an integer or a boolean).
    pub fn value(self) -> Value {
        match self {
            ControlSet::Budget(b) => Value::from(u64::from(b)),
            ControlSet::Period(p) => Value::from(u64::from(p)),
            ControlSet::Enable(e) => Value::from(e),
        }
    }

    /// Parses the `set`/`value` field pair of a `control` request (or a
    /// journal entry). The error string is protocol-ready.
    pub fn parse(set: &str, value: Option<&Value>) -> Result<Self, String> {
        let value = value.ok_or("control needs a 'value'")?;
        match set {
            "budget" => {
                let b = value.as_u64().ok_or("budget value must be an integer")?;
                u32::try_from(b)
                    .map(ControlSet::Budget)
                    .map_err(|_| format!("budget {b} exceeds the register width (u32)"))
            }
            "period" => {
                let p = value.as_u64().ok_or("period value must be an integer")?;
                if p == 0 {
                    return Err("period must be at least 1 cycle".into());
                }
                u32::try_from(p)
                    .map(ControlSet::Period)
                    .map_err(|_| format!("period {p} exceeds the register width (u32)"))
            }
            "enable" => match value {
                Value::Bool(e) => Ok(ControlSet::Enable(*e)),
                Value::Str(s) if s == "on" => Ok(ControlSet::Enable(true)),
                Value::Str(s) if s == "off" => Ok(ControlSet::Enable(false)),
                _ => Err("enable value must be true/false or \"on\"/\"off\"".into()),
            },
            other => Err(format!(
                "unknown control set {other:?} (budget, period or enable)"
            )),
        }
    }
}

/// Requested metrics export format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// `fgqos.metrics` JSON document (the default).
    Json,
    /// Flattened CSV, as a string field.
    Csv,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a scenario-execution job.
    Submit {
        /// The job identity (scenario text, cycles, options).
        spec: JobSpec,
        /// Admission-control principal; defaults to the peer address.
        client: Option<String>,
        /// Queue deadline in milliseconds from submission.
        deadline_ms: Option<u64>,
    },
    /// Enqueue a warm-start sweep slice (protocol v2).
    SubmitBatch {
        /// The batch identity: shared prefix plus per-point overrides.
        spec: BatchSpec,
        /// Admission-control principal; defaults to the peer address.
        client: Option<String>,
        /// Queue deadline in milliseconds from submission.
        deadline_ms: Option<u64>,
    },
    /// Query a job's lifecycle state.
    Status {
        /// Job id returned by `submit`.
        job: u64,
    },
    /// Fetch a job's result (the embedded `Report`) once done.
    Result {
        /// Job id returned by `submit`.
        job: u64,
    },
    /// Export the server's metrics registry.
    Metrics {
        /// Export format.
        format: MetricsFormat,
    },
    /// Liveness probe (protocol v3); answered immediately, used as the
    /// coordinator's worker heartbeat.
    Ping,
    /// Announce a worker's serve address to a coordinator (protocol
    /// v3). Plain servers refuse it.
    RegisterWorker {
        /// The worker's own listen address, reachable by the receiver.
        addr: String,
    },
    /// Warm a scenario to a quiesced boundary and return it as a
    /// hex-encoded snapshot blob (protocol v3).
    Snapshot {
        /// Scenario file text.
        scenario: String,
        /// Warm-up cycles before the boundary search.
        warmup: u64,
    },
    /// Start a live run and stream its telemetry frames, or attach to a
    /// running one (protocol v4). Exactly one of `spec` and `run` is
    /// set.
    Subscribe {
        /// New-run mode: the live run to start.
        spec: Option<LiveSpec>,
        /// Attach mode: id of an already-running live run.
        run: Option<u64>,
        /// Admission-control principal; defaults to the peer address.
        client: Option<String>,
    },
    /// Queue a register write against a live run (protocol v4); it
    /// applies at the run's next window boundary.
    Control {
        /// Live run id from the `subscribe` acknowledgement.
        run: u64,
        /// Best-effort master whose regulator is written.
        target: String,
        /// The register write.
        set: ControlSet,
    },
    /// Fetch a live run's control journal, replay scenario and — once
    /// the run finished — its final report (protocol v4).
    Journal {
        /// Live run id from the `subscribe` acknowledgement.
        run: u64,
    },
    /// Stop accepting work, drain the queue, reply, then exit.
    Shutdown,
}

/// Lower-case hex encoding of arbitrary bytes (the wire form of
/// snapshot blobs, which are binary but must ride a JSON protocol).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes [`to_hex`] output; the error string is protocol-ready.
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex payload has odd length".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(s.get(i..i + 2).ok_or("hex payload is not ascii")?, 16)
                .map_err(|_| format!("invalid hex byte at offset {i}"))
        })
        .collect()
}

/// Error from [`read_frame`].
#[derive(Debug)]
pub enum FrameError {
    /// The line exceeded the frame cap. The oversized line has been
    /// consumed from the stream; the connection may continue.
    TooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { limit } => {
                write!(f, "frame exceeds {limit} bytes")
            }
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one newline-terminated frame, enforcing the byte cap.
///
/// Returns `Ok(None)` on a clean end of stream. An oversized line is
/// consumed in full (up to the next newline or EOF) before
/// [`FrameError::TooLarge`] is returned, so the caller can report the
/// error and keep serving the connection.
pub fn read_frame<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
) -> Result<Option<String>, FrameError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let available = reader.fill_buf().map_err(FrameError::Io)?;
        if available.is_empty() {
            return match (overflowed, buf.is_empty()) {
                (true, _) => Err(FrameError::TooLarge { limit: max_bytes }),
                (false, true) => Ok(None),
                (false, false) => Ok(Some(String::from_utf8_lossy(&buf).into_owned())),
            };
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(available.len());
        if !overflowed {
            if buf.len() + take > max_bytes {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&available[..take]);
            }
        }
        let consumed = match newline {
            Some(pos) => pos + 1,
            None => available.len(),
        };
        reader.consume(consumed);
        if newline.is_some() {
            return if overflowed {
                Err(FrameError::TooLarge { limit: max_bytes })
            } else {
                Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
            };
        }
    }
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("'{key}' must be a non-negative integer"))
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("'{key}' must be a string")),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(other) => other
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
    }
}

/// Parses one request frame.
///
/// The error string is ready to embed in an `ok:false` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Value::parse(line).map_err(|e| format!("malformed frame: {e}"))?;
    if doc.as_obj().is_none() {
        return Err("malformed frame: request must be a JSON object".into());
    }
    let op = doc
        .get("op")
        .and_then(Value::as_str)
        .ok_or("malformed frame: missing string 'op'")?;
    match op {
        "submit" => {
            let scenario = doc
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or("submit needs a string 'scenario'")?
                .to_string();
            let cycles = opt_u64(&doc, "cycles")?.unwrap_or(1_000_000);
            Ok(Request::Submit {
                spec: JobSpec {
                    scenario,
                    cycles,
                    until_done: opt_str(&doc, "until_done")?,
                },
                client: opt_str(&doc, "client")?,
                deadline_ms: opt_u64(&doc, "deadline_ms")?,
            })
        }
        "submit_batch" => {
            let scenario = doc
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or("submit_batch needs a string 'scenario'")?
                .to_string();
            let points = doc
                .get("points")
                .and_then(Value::as_arr)
                .ok_or("submit_batch needs an array 'points'")?
                .iter()
                .map(|p| {
                    Ok(BatchPoint {
                        period: req_u64(p, "period")?,
                        budget: req_u64(p, "budget")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            if points.is_empty() {
                return Err("submit_batch needs at least one point".into());
            }
            let kind = match doc.get("kind").and_then(Value::as_str) {
                Some(tag) => BatchKind::parse(tag)?,
                None => BatchKind::Sweep,
            };
            Ok(Request::SubmitBatch {
                spec: BatchSpec {
                    scenario,
                    cycles: opt_u64(&doc, "cycles")?.unwrap_or(1_000_000),
                    until_done: opt_str(&doc, "until_done")?,
                    warmup: opt_u64(&doc, "warmup")?.unwrap_or(0),
                    points,
                    kind,
                },
                client: opt_str(&doc, "client")?,
                deadline_ms: opt_u64(&doc, "deadline_ms")?,
            })
        }
        "status" => Ok(Request::Status {
            job: req_u64(&doc, "job")?,
        }),
        "result" => Ok(Request::Result {
            job: req_u64(&doc, "job")?,
        }),
        "metrics" => {
            let format = match doc.get("format").and_then(Value::as_str) {
                None | Some("json") => MetricsFormat::Json,
                Some("csv") => MetricsFormat::Csv,
                Some(other) => return Err(format!("unknown metrics format {other:?}")),
            };
            Ok(Request::Metrics { format })
        }
        "ping" => Ok(Request::Ping),
        "register_worker" => Ok(Request::RegisterWorker {
            addr: doc
                .get("addr")
                .and_then(Value::as_str)
                .ok_or("register_worker needs a string 'addr'")?
                .to_string(),
        }),
        "snapshot" => Ok(Request::Snapshot {
            scenario: doc
                .get("scenario")
                .and_then(Value::as_str)
                .ok_or("snapshot needs a string 'scenario'")?
                .to_string(),
            warmup: opt_u64(&doc, "warmup")?.unwrap_or(0),
        }),
        "subscribe" => {
            let run = opt_u64(&doc, "run")?;
            let scenario = opt_str(&doc, "scenario")?;
            let spec = match (&scenario, run) {
                (Some(_), Some(_)) => {
                    return Err("subscribe takes either 'scenario' or 'run', not both".into())
                }
                (None, None) => {
                    return Err("subscribe needs a string 'scenario' or a 'run' id".into())
                }
                (Some(s), None) => {
                    let window = opt_u64(&doc, "window")?.unwrap_or(DEFAULT_LIVE_WINDOW);
                    if window == 0 {
                        return Err("subscribe window must be at least 1 cycle".into());
                    }
                    Some(LiveSpec {
                        scenario: s.clone(),
                        cycles: opt_u64(&doc, "cycles")?.unwrap_or(1_000_000),
                        window,
                        pace_ms: opt_u64(&doc, "pace_ms")?.unwrap_or(0),
                    })
                }
                (None, Some(_)) => None,
            };
            Ok(Request::Subscribe {
                spec,
                run,
                client: opt_str(&doc, "client")?,
            })
        }
        "control" => {
            let set = doc
                .get("set")
                .and_then(Value::as_str)
                .ok_or("control needs a string 'set' (budget, period or enable)")?;
            Ok(Request::Control {
                run: req_u64(&doc, "run")?,
                target: doc
                    .get("target")
                    .and_then(Value::as_str)
                    .ok_or("control needs a string 'target'")?
                    .to_string(),
                set: ControlSet::parse(set, doc.get("value"))?,
            })
        }
        "journal" => Ok(Request::Journal {
            run: req_u64(&doc, "run")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Starts a response object: schema, version, `ok`, and the request op.
pub fn response_head(op: &str, ok: bool) -> Value {
    let mut v = Value::obj();
    v.set("schema", Value::str(SERVE_SCHEMA));
    v.set("version", Value::from(SERVE_VERSION));
    v.set("ok", Value::from(ok));
    v.set("op", Value::str(op));
    v
}

/// Builds an `ok:false` response with an error message.
pub fn error_response(op: &str, error: impl Into<String>) -> Value {
    let mut v = response_head(op, false);
    v.set("error", Value::str(error.into()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_submit_with_defaults() {
        let r = parse_request(r#"{"op":"submit","scenario":"[master a]\nkind cpu\n"}"#).unwrap();
        let Request::Submit {
            spec,
            client,
            deadline_ms,
        } = r
        else {
            panic!("expected submit");
        };
        assert_eq!(spec.cycles, 1_000_000);
        assert!(spec.until_done.is_none());
        assert!(client.is_none());
        assert!(deadline_ms.is_none());
        assert!(spec.scenario.contains("[master a]"));
    }

    #[test]
    fn parses_submit_with_all_fields() {
        let r = parse_request(
            r#"{"op":"submit","scenario":"s","cycles":5000,"until_done":"cpu","client":"alice","deadline_ms":250}"#,
        )
        .unwrap();
        let Request::Submit {
            spec,
            client,
            deadline_ms,
        } = r
        else {
            panic!("expected submit");
        };
        assert_eq!(spec.cycles, 5_000);
        assert_eq!(spec.until_done.as_deref(), Some("cpu"));
        assert_eq!(client.as_deref(), Some("alice"));
        assert_eq!(deadline_ms, Some(250));
    }

    #[test]
    fn parses_submit_batch() {
        let r = parse_request(
            r#"{"op":"submit_batch","scenario":"s","cycles":9000,"warmup":50000,"until_done":"cpu","points":[{"period":1000,"budget":2048},{"period":100000,"budget":204800}]}"#,
        )
        .unwrap();
        let Request::SubmitBatch { spec, .. } = r else {
            panic!("expected submit_batch");
        };
        assert_eq!(spec.cycles, 9_000);
        assert_eq!(spec.warmup, 50_000);
        assert_eq!(spec.until_done.as_deref(), Some("cpu"));
        assert_eq!(
            spec.points,
            vec![
                BatchPoint {
                    period: 1_000,
                    budget: 2_048
                },
                BatchPoint {
                    period: 100_000,
                    budget: 204_800
                },
            ]
        );
        assert_eq!(spec.kind, BatchKind::Sweep, "kind defaults to sweep");
    }

    #[test]
    fn parses_submit_batch_kind_tag() {
        let r = parse_request(
            r#"{"op":"submit_batch","scenario":"s","kind":"hunt","points":[{"period":1000,"budget":2048}]}"#,
        )
        .unwrap();
        let Request::SubmitBatch { spec, .. } = r else {
            panic!("expected submit_batch");
        };
        assert_eq!(spec.kind, BatchKind::Hunt);
        let err = parse_request(
            r#"{"op":"submit_batch","scenario":"s","kind":"mystery","points":[{"period":1,"budget":1}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown batch kind"), "{err}");
    }

    #[test]
    fn submit_batch_rejects_bad_points() {
        assert!(parse_request(r#"{"op":"submit_batch","scenario":"s"}"#)
            .unwrap_err()
            .contains("points"));
        assert!(
            parse_request(r#"{"op":"submit_batch","scenario":"s","points":[]}"#)
                .unwrap_err()
                .contains("at least one point")
        );
        assert!(
            parse_request(r#"{"op":"submit_batch","scenario":"s","points":[{"period":5}]}"#)
                .unwrap_err()
                .contains("budget")
        );
    }

    #[test]
    fn parses_control_ops() {
        assert_eq!(
            parse_request(r#"{"op":"status","job":7}"#).unwrap(),
            Request::Status { job: 7 }
        );
        assert_eq!(
            parse_request(r#"{"op":"result","job":7}"#).unwrap(),
            Request::Result { job: 7 }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics {
                format: MetricsFormat::Json
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"csv"}"#).unwrap(),
            Request::Metrics {
                format: MetricsFormat::Csv
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn parses_fleet_ops() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"register_worker","addr":"127.0.0.1:9"}"#).unwrap(),
            Request::RegisterWorker {
                addr: "127.0.0.1:9".into()
            }
        );
        assert!(parse_request(r#"{"op":"register_worker"}"#)
            .unwrap_err()
            .contains("addr"));
        assert_eq!(
            parse_request(r#"{"op":"snapshot","scenario":"s","warmup":500}"#).unwrap(),
            Request::Snapshot {
                scenario: "s".into(),
                warmup: 500
            }
        );
        assert!(parse_request(r#"{"op":"snapshot"}"#)
            .unwrap_err()
            .contains("scenario"));
    }

    #[test]
    fn parses_live_ops() {
        let r = parse_request(r#"{"op":"subscribe","scenario":"s","cycles":9000,"window":500}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Subscribe {
                spec: Some(LiveSpec {
                    scenario: "s".into(),
                    cycles: 9_000,
                    window: 500,
                    pace_ms: 0,
                }),
                run: None,
                client: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"subscribe","run":3}"#).unwrap(),
            Request::Subscribe {
                spec: None,
                run: Some(3),
                client: None,
            }
        );
        assert!(parse_request(r#"{"op":"subscribe"}"#)
            .unwrap_err()
            .contains("'scenario' or a 'run'"));
        assert!(
            parse_request(r#"{"op":"subscribe","scenario":"s","run":1}"#)
                .unwrap_err()
                .contains("not both")
        );
        assert!(
            parse_request(r#"{"op":"subscribe","scenario":"s","window":0}"#)
                .unwrap_err()
                .contains("window")
        );
        assert_eq!(
            parse_request(r#"{"op":"control","run":1,"target":"dma","set":"budget","value":4096}"#)
                .unwrap(),
            Request::Control {
                run: 1,
                target: "dma".into(),
                set: ControlSet::Budget(4_096),
            }
        );
        assert_eq!(
            parse_request(
                r#"{"op":"control","run":1,"target":"dma","set":"enable","value":"off"}"#
            )
            .unwrap(),
            Request::Control {
                run: 1,
                target: "dma".into(),
                set: ControlSet::Enable(false),
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"journal","run":2}"#).unwrap(),
            Request::Journal { run: 2 }
        );
    }

    #[test]
    fn control_set_screens_register_writes() {
        assert!(ControlSet::parse("period", Some(&Value::from(0u64)))
            .unwrap_err()
            .contains("at least 1"));
        assert!(
            ControlSet::parse("budget", Some(&Value::from(5_000_000_000u64)))
                .unwrap_err()
                .contains("register width")
        );
        assert!(ControlSet::parse("gain", Some(&Value::from(1u64)))
            .unwrap_err()
            .contains("unknown control set"));
        assert!(ControlSet::parse("budget", None)
            .unwrap_err()
            .contains("value"));
        assert_eq!(
            ControlSet::parse("enable", Some(&Value::Bool(true))).unwrap(),
            ControlSet::Enable(true)
        );
        let s = ControlSet::Period(250);
        assert_eq!(s.key(), "period");
        assert_eq!(s.value().as_u64(), Some(250));
    }

    #[test]
    fn hex_roundtrip_and_rejection() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert!(from_hex("abc").unwrap_err().contains("odd"));
        assert!(from_hex("zz").unwrap_err().contains("invalid hex"));
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rejects_malformed_frames() {
        assert!(parse_request("not json").unwrap_err().contains("malformed"));
        assert!(parse_request("[1,2]").unwrap_err().contains("object"));
        assert!(parse_request("{}").unwrap_err().contains("op"));
        assert!(parse_request(r#"{"op":"frobnicate"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(parse_request(r#"{"op":"submit"}"#)
            .unwrap_err()
            .contains("scenario"));
        assert!(parse_request(r#"{"op":"result"}"#)
            .unwrap_err()
            .contains("job"));
        assert!(
            parse_request(r#"{"op":"submit","scenario":"s","cycles":"x"}"#)
                .unwrap_err()
                .contains("cycles")
        );
    }

    #[test]
    fn read_frame_splits_lines_and_handles_eof() {
        let mut r = BufReader::new("{\"a\":1}\n{\"b\":2}\nlast".as_bytes());
        assert_eq!(
            read_frame(&mut r, 64).unwrap().as_deref(),
            Some("{\"a\":1}")
        );
        assert_eq!(
            read_frame(&mut r, 64).unwrap().as_deref(),
            Some("{\"b\":2}")
        );
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some("last"));
        assert!(read_frame(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn read_frame_rejects_oversized_but_resynchronizes() {
        let big = "x".repeat(100);
        let input = format!("{big}\nok\n");
        let mut r = BufReader::with_capacity(8, input.as_bytes());
        match read_frame(&mut r, 32) {
            Err(FrameError::TooLarge { limit: 32 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The oversized line was consumed; the next frame parses fine.
        assert_eq!(read_frame(&mut r, 32).unwrap().as_deref(), Some("ok"));
    }

    #[test]
    fn response_head_is_schema_versioned() {
        let v = response_head("submit", true);
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SERVE_SCHEMA));
        assert_eq!(v.get("version").unwrap().as_u64(), Some(SERVE_VERSION));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let e = error_response("status", "nope");
        assert_eq!(e.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(e.get("error").unwrap().as_str(), Some("nope"));
    }
}
