//! Periodic steady-state detection and algebraic leaping.
//!
//! A saturated regulated run executes millions of byte-identical window
//! periods: the machine returns to the *same architectural state, one
//! period later*. This module detects that recurrence at quiesced
//! boundaries (zero transactions in flight — the same boundaries
//! `fgqos-snap` snapshots at) and then advances the clock by `k` whole
//! periods in one step, applying every per-period counter delta `×k`
//! instead of simulating the cycles.
//!
//! # How a leap is proven legal
//!
//! 1. At an eligible boundary the full snapshot stream is captured
//!    through [`StateHasher::typed_recording`] and keyed by its
//!    [`TypedSnapshot::rebased_key`] — a fingerprint invariant under
//!    time translation (cycle stamps rebased to the boundary, counter
//!    values excluded) plus the per-component pending-wake structure.
//! 2. A key hit against an earlier boundary proposes a period `P`;
//!    [`TypedSnapshot::lockstep_deltas`] then verifies the two records
//!    differ *only* as a time translation — byte-identical plain state,
//!    every cycle stamp frozen or advanced by exactly `P` — and yields
//!    the per-period delta of every counter.
//! 3. Deterministic evolution is a function of `(state, absolute
//!    time)`. The state part repeats by (2); the absolute-time part is
//!    bounded by the [`LeapSupport`] constraints each component
//!    declares: one-shot calendar events (phase writes, fault
//!    boundaries, refresh storms) bound the landing via `until`,
//!    modular behaviors (burst shaping) force `P` to a multiple of
//!    their modulus, and finite sources bound `k` so no source
//!    exhausts mid-leap. Anything the engine cannot reason about
//!    (traces, window series, custom components) denies leaping
//!    outright — the default.
//! 4. `k` is clamped so the landing stays at or before the run
//!    deadline and strictly before every `until` horizon, then the
//!    merged stream from [`TypedSnapshot::leap`] is loaded back — the
//!    exact bytes a cycle-by-cycle run would reach at `c + k·P`.
//!
//! `FGQOS_NO_LEAP=1` disables the engine; `FGQOS_NAIVE=1` always wins
//! over `FGQOS_LEAP=1` (the naive core never leaps). Bit-identity
//! against the plain calendar core is pinned by proptests in
//! `tests/fast_forward.rs` and `tests/scenario_v2.rs`.

use crate::calendar::NEVER;
use crate::system::Soc;
use crate::time::Cycle;
use fgqos_snap::{StateHasher, TypedSnapshot};

/// Minimum cycles between fingerprinted boundaries: throttles hashing
/// so short quiesce/wake oscillations cost nothing.
const MIN_STRIDE: u64 = 64;

/// Backoff ceiling for the fingerprint stride. A fingerprint walks the
/// whole snapshot stream (FNV is a serial per-byte fold — tens of
/// microseconds per boundary, the cost of simulating thousands of
/// cycles), so on workloads that never settle into a period every
/// fingerprint is a pure tax on the fast run loop. The stride doubles
/// from [`MIN_STRIDE`] after each boundary that matches nothing and
/// resets as soon as a recurrence is detected, bounding the tax at
/// O(log horizon) walks per aperiodic run. The cost is detection
/// latency for machines that only settle into a period late: by then
/// samples are sparse, and a match must wait for two samples to land
/// on the same phase (`FGQOS_LEAP_DEBUG=1` shows the sampling).
const MAX_STRIDE: u64 = 1 << 22;

/// Recurrence table capacity (boundary records kept, FIFO-evicted).
const TABLE_CAP: usize = 32;

/// A component's answer to "may the clock leap over you?".
///
/// Constraints combine with [`merge`](LeapSupport::merge): denial is
/// absorbing, budgets and horizons take the tightest value, moduli take
/// the least common multiple. [`LeapSupport::deny`] is the default on
/// every seam — components opt *in* by describing exactly how their
/// behavior depends on absolute time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeapSupport {
    /// Leaping is never legal over this component (traces, window
    /// series, or state the engine cannot reason about).
    pub deny: bool,
    /// Remaining requests this component can produce before its
    /// behavior changes (`is_done` flips); `None` = unbounded. The leap
    /// lands with at least one left, so done-flips stay on simulated
    /// cycles.
    pub budget: Option<u64>,
    /// Absolute cycle of the component's next one-shot behavior change
    /// (phase write, fault boundary, storm edge); the leap lands at or
    /// before it.
    pub until: Option<Cycle>,
    /// The component's behavior depends on `now % modulus` (burst
    /// shaping); the period must be a multiple of it. `1` = no
    /// constraint.
    pub modulus: u64,
}

impl LeapSupport {
    /// Refuses leaping outright — the safe default.
    pub fn deny() -> Self {
        LeapSupport {
            deny: true,
            budget: None,
            until: None,
            modulus: 1,
        }
    }

    /// No constraint: the component's future depends only on its
    /// snapshotted state, never on absolute time.
    pub fn clear() -> Self {
        LeapSupport {
            deny: false,
            budget: None,
            until: None,
            modulus: 1,
        }
    }

    /// At most `remaining` further requests before behavior changes.
    pub fn budget(remaining: u64) -> Self {
        LeapSupport {
            budget: Some(remaining),
            ..Self::clear()
        }
    }

    /// One-shot behavior change at absolute cycle `cycle`.
    pub fn until(cycle: Cycle) -> Self {
        LeapSupport {
            until: Some(cycle),
            ..Self::clear()
        }
    }

    /// Behavior depends on `now % modulus` (must be non-zero).
    pub fn modulus(modulus: u64) -> Self {
        LeapSupport {
            modulus: modulus.max(1),
            ..Self::clear()
        }
    }

    /// Combines two constraint sets (see the type-level docs).
    pub fn merge(self, other: LeapSupport) -> Self {
        LeapSupport {
            deny: self.deny || other.deny,
            budget: match (self.budget, other.budget) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            until: match (self.until, other.until) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            modulus: lcm(self.modulus.max(1), other.modulus.max(1)),
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn lcm(a: u64, b: u64) -> u64 {
    if a == b {
        return a;
    }
    (a / gcd(a, b)).saturating_mul(b)
}

/// Point-in-time snapshot of the leap engine's telemetry (see
/// [`Soc::leap_telemetry`](crate::system::Soc::leap_telemetry)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeapTelemetry {
    /// Whether the engine is still armed (off under the naive core,
    /// `FGQOS_NO_LEAP=1`, or after a component denied support).
    pub enabled: bool,
    /// Periodic pairs proven by lockstep verification.
    pub periods_detected: u64,
    /// Total cycles skipped algebraically instead of simulated.
    pub cycles_skipped: u64,
    /// Leaps applied.
    pub leaps: u64,
}

/// One remembered boundary: its translation-invariant key, the typed
/// record, and each master's remaining-request headroom at capture
/// (`u64::MAX` = unbounded), used to bound `k` so no source exhausts
/// inside a leaped span.
struct BoundaryRecord {
    key: u64,
    cycle: u64,
    record: TypedSnapshot,
    headrooms: Vec<u64>,
}

/// Per-`Soc` leap engine state and telemetry. Not part of the snapshot
/// stream: leaping is an execution strategy, not architectural state.
pub(crate) struct LeapState {
    /// Off when the naive core runs, `FGQOS_NO_LEAP=1` is set, or a
    /// component denied support (denials are structural, so one denial
    /// disables the engine for the rest of the run).
    pub(crate) enabled: bool,
    table: Vec<BoundaryRecord>,
    /// Brent-style probe for periods beyond the FIFO table's span: one
    /// anchor record compared against every boundary inside a window of
    /// `brent_power` boundaries, then re-anchored and doubled. Detects
    /// any period up to the run length with O(1) extra memory (refresh
    /// intervals make real steady-state periods run to the lcm of every
    /// component period — easily millions of cycles).
    brent: Option<BoundaryRecord>,
    /// Current Brent window length in boundaries.
    brent_power: u64,
    /// Boundaries seen since the Brent anchor was (re)planted.
    brent_count: u64,
    /// Last boundary fingerprinted or landed on (throttle anchor).
    last_boundary: u64,
    /// Current fingerprint throttle in cycles: [`MIN_STRIDE`] while the
    /// engine is finding (or riding) a period, doubling toward
    /// [`MAX_STRIDE`] while boundaries keep matching nothing.
    stride: u64,
    /// Periodic pairs proven by lockstep verification.
    pub(crate) periods_detected: u64,
    /// Total cycles skipped algebraically.
    pub(crate) cycles_skipped: u64,
    /// Leaps applied (`k ≥ 1`).
    pub(crate) leaps: u64,
}

impl LeapState {
    pub(crate) fn new(enabled: bool) -> Self {
        LeapState {
            enabled,
            table: Vec::new(),
            brent: None,
            brent_power: TABLE_CAP as u64,
            brent_count: 0,
            last_boundary: 0,
            stride: MIN_STRIDE,
            periods_detected: 0,
            cycles_skipped: 0,
            leaps: 0,
        }
    }
}

impl std::fmt::Debug for LeapState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeapState")
            .field("enabled", &self.enabled)
            .field("table", &self.table.len())
            .field("periods_detected", &self.periods_detected)
            .field("cycles_skipped", &self.cycles_skipped)
            .field("leaps", &self.leaps)
            .finish()
    }
}

impl Soc {
    /// Collects the merged [`LeapSupport`] of every component plus each
    /// master's request headroom, or `None` if any component denies.
    fn collect_leap_support(&self, now: Cycle) -> Option<(LeapSupport, Vec<u64>)> {
        let mut merged = LeapSupport::clear();
        let mut headrooms = Vec::with_capacity(self.masters.len());
        for m in &self.masters {
            let s = m.leap_support(now);
            if s.deny {
                return None;
            }
            headrooms.push(s.budget.unwrap_or(u64::MAX));
            merged = merged.merge(LeapSupport { budget: None, ..s });
        }
        merged = merged.merge(self.dram.leap_support(now));
        for c in &self.controllers {
            merged = merged.merge(c.leap_support(now));
        }
        if merged.deny {
            return None;
        }
        Some((merged, headrooms))
    }

    /// Pending-wake structure at `now`: each component's
    /// `next_activity − now` horizon (`u64::MAX` = never). Folded into
    /// the recurrence key so two different phases of the same window
    /// with coincidentally equal rebased state stay distinct.
    fn wake_offsets(&self, now: Cycle) -> Vec<u64> {
        let off = |c: Option<Cycle>| c.map_or(u64::MAX, |c| c.get().saturating_sub(now.get()));
        let mut v: Vec<u64> = self
            .masters
            .iter()
            .map(|m| off(m.next_activity(now)))
            .collect();
        v.push(off(self.dram.next_activity(now)));
        for c in &self.controllers {
            v.push(off(c.next_activity(now)));
        }
        v
    }

    /// The leap hook, called by the fast run loop at a quiesced
    /// boundary. Fingerprints the state, probes the recurrence table,
    /// and on a verified period leaps as far as the constraints allow
    /// (landing at or before `deadline`). Returns `true` when the clock
    /// moved — the caller must rebuild its event calendar.
    pub(crate) fn maybe_leap(&mut self, deadline: Cycle) -> bool {
        let now = self.cycle;
        if !self.leap.enabled
            || now.get() < self.leap.last_boundary + self.leap.stride
            || deadline <= now
        {
            return false;
        }
        let Some((support, headrooms)) = self.collect_leap_support(now) else {
            // Denials are structural (traces, window series, unsupported
            // components): stop probing for the rest of the run.
            self.leap.enabled = false;
            self.leap.table.clear();
            self.leap.brent = None;
            return false;
        };
        let mut h = StateHasher::typed_recording();
        self.snap(&mut h);
        let record = h.take_typed();
        let key = record.rebased_key(now.get(), &self.wake_offsets(now));
        self.leap.last_boundary = now.get();
        if std::env::var_os("FGQOS_LEAP_DEBUG").is_some() {
            let hits = self.leap.table.iter().filter(|e| e.key == key).count();
            eprintln!(
                "leap-debug: boundary at {} key {:016x} table {} hits {}",
                now.get(),
                key,
                self.leap.table.len(),
                hits
            );
        }

        // Probe: recent boundaries (FIFO table, catches short periods
        // within a few windows) then the Brent anchor (catches periods
        // of any length once its doubling window spans one).
        let mut detected = 0u64;
        let mut proposal = None;
        for entry in self.leap.table.iter().rev().chain(self.leap.brent.iter()) {
            if entry.key != key || entry.cycle >= now.get() {
                continue;
            }
            let period = now.get() - entry.cycle;
            if !period.is_multiple_of(support.modulus) {
                continue;
            }
            let Some(deltas) = record.lockstep_deltas(&entry.record, period) else {
                continue;
            };
            detected += 1;
            let Some(k) = leap_count(
                now.get(),
                period,
                deadline,
                &support,
                &headrooms,
                &entry.headrooms,
            ) else {
                continue;
            };
            proposal = Some((period, k, deltas));
            break;
        }
        self.leap.periods_detected += detected;

        if let Some((period, k, deltas)) = proposal {
            let merged = record.leap(&deltas, k);
            self.load_state(&merged)
                .expect("leaped snapshot stream must load: same machine, same structure");
            self.leap.cycles_skipped += k * period;
            self.leap.leaps += 1;
            self.leap.last_boundary = self.cycle.get();
            self.leap.stride = MIN_STRIDE;
            return true;
        }

        // No landing: remember this boundary. A detected-but-unleapable
        // period (constraints bounded k below 1) keeps the stride dense;
        // a boundary matching nothing backs the stride off so aperiodic
        // workloads stop paying the fingerprint tax.
        self.leap.stride = if detected > 0 {
            MIN_STRIDE
        } else {
            (self.leap.stride * 2).min(MAX_STRIDE)
        };
        // The Brent probe re-anchors (and doubles its window) once
        // `brent_power` boundaries have passed the current anchor.
        self.leap.brent_count += 1;
        match &self.leap.brent {
            None => {
                self.leap.brent = Some(BoundaryRecord {
                    key,
                    cycle: now.get(),
                    record: record.clone(),
                    headrooms: headrooms.clone(),
                });
                self.leap.brent_count = 0;
            }
            Some(_) if self.leap.brent_count >= self.leap.brent_power => {
                self.leap.brent = Some(BoundaryRecord {
                    key,
                    cycle: now.get(),
                    record: record.clone(),
                    headrooms: headrooms.clone(),
                });
                self.leap.brent_power *= 2;
                self.leap.brent_count = 0;
            }
            Some(_) => {}
        }
        if self.leap.table.len() == TABLE_CAP {
            self.leap.table.remove(0);
        }
        self.leap.table.push(BoundaryRecord {
            key,
            cycle: now.get(),
            record,
            headrooms,
        });
        false
    }
}

/// Largest legal `k ≥ 1` for a leap from `now` by `period`-cycle steps,
/// or `None` when no constraint bounds the leap or the bound is < 1.
fn leap_count(
    now: u64,
    period: u64,
    deadline: Cycle,
    support: &LeapSupport,
    headrooms: &[u64],
    earlier_headrooms: &[u64],
) -> Option<u64> {
    let mut k: Option<u64> = None;
    let mut bound = |limit: u64| k = Some(k.map_or(limit, |k| k.min(limit)));
    if deadline.get() != NEVER {
        bound((deadline.get() - now) / period);
    }
    if let Some(until) = support.until {
        bound(until.get().saturating_sub(now) / period);
    }
    if headrooms.len() != earlier_headrooms.len() {
        return None;
    }
    for (&h2, &h1) in headrooms.iter().zip(earlier_headrooms) {
        if h2 == u64::MAX && h1 == u64::MAX {
            continue; // unbounded source
        }
        // Headroom shrinks by the per-period issue count; land with at
        // least one request left so `is_done` can only flip on a
        // simulated cycle.
        let spent = h1.checked_sub(h2)?;
        if spent > 0 {
            bound(h2.checked_sub(1)?.checked_div(spent)?);
        }
    }
    k.filter(|&k| k >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_merge_combines_constraints() {
        let a = LeapSupport::budget(10).merge(LeapSupport::until(Cycle::new(500)));
        assert_eq!(a.budget, Some(10));
        assert_eq!(a.until, Some(Cycle::new(500)));
        let b = a.merge(LeapSupport::budget(3).merge(LeapSupport::until(Cycle::new(900))));
        assert_eq!(b.budget, Some(3));
        assert_eq!(b.until, Some(Cycle::new(500)));
        assert!(!b.deny);
        assert!(b.merge(LeapSupport::deny()).deny);
        let m = LeapSupport::modulus(6).merge(LeapSupport::modulus(4));
        assert_eq!(m.modulus, 12);
        assert_eq!(LeapSupport::clear().merge(LeapSupport::clear()).modulus, 1);
    }

    #[test]
    fn leap_count_respects_every_bound() {
        let clear = LeapSupport::clear();
        // Deadline alone: land at or before it.
        assert_eq!(
            leap_count(1_000, 100, Cycle::new(2_050), &clear, &[], &[]),
            Some(10)
        );
        // Until horizon tightens it.
        let sup = LeapSupport::until(Cycle::new(1_350));
        assert_eq!(
            leap_count(1_000, 100, Cycle::new(2_050), &sup, &[], &[]),
            Some(3)
        );
        // Headroom: 7 left, 2 spent per period -> land with >= 1 left.
        assert_eq!(
            leap_count(1_000, 100, Cycle::new(u64::MAX - 1), &clear, &[7], &[9]),
            Some(3)
        );
        // Unbounded everything: no legal k.
        assert_eq!(
            leap_count(
                1_000,
                100,
                Cycle::new(NEVER),
                &clear,
                &[u64::MAX],
                &[u64::MAX]
            ),
            None
        );
        // Bound below one period: no leap.
        assert_eq!(
            leap_count(1_000, 100, Cycle::new(1_099), &clear, &[], &[]),
            None
        );
        // Headroom grew (source restarted?): reject the pair.
        assert_eq!(
            leap_count(1_000, 100, Cycle::new(2_000), &clear, &[9], &[7]),
            None
        );
    }
}
