//! SoC top level: wiring, builder and the cycle loop.
//!
//! Two interchangeable execution cores drive the same component models:
//!
//! * **Naive stepping** ([`Soc::step`] in a loop): every component ticks
//!   every cycle. This is the reference semantics — simple, obviously
//!   correct, O(masters × cycles).
//! * **Event-calendar scheduling** (the default): a hierarchical
//!   [`EventCalendar`] holds one wake token per master (folding gate
//!   window edges and source issue points), one for the DRAM controller
//!   (bank timings, completions, refresh), one for crossbar backlog and
//!   one per software controller. Only cycles where some component can
//!   change state are executed, and within an executed cycle only the
//!   due components tick (in the naive phase order). Per-cycle stall
//!   accounting over skipped spans is replicated lazily, so both cores
//!   produce bit-identical statistics. `FGQOS_NAIVE=1` (or
//!   [`Soc::set_naive`]) selects naive stepping for A/B verification.

use crate::arena::TxnArena;
use crate::axi::MasterId;
use crate::calendar::{EventCalendar, NEVER};
use crate::dram::{DramConfig, DramController, DramStats};
use crate::gate::{OpenGate, PortGate};
use crate::interconnect::{Crossbar, XbarConfig};
use crate::leap::{LeapState, LeapSupport, LeapTelemetry};
use crate::master::{Master, MasterKind, MasterStats, TrafficSource};
use crate::metrics::MetricsRegistry;
use crate::time::{Bandwidth, Cycle, Freq};
use crate::trace::{ChromeTraceBuilder, Trace};
use fgqos_snap::{ForkCtx, SnapDecodeError, SnapReader, StateHasher};

/// Top-level SoC parameters.
#[derive(Debug, Clone, Default)]
pub struct SocConfig {
    /// Single clock domain of the model.
    pub freq: Freq,
    /// DRAM controller parameters.
    pub dram: DramConfig,
    /// Crossbar parameters.
    pub xbar: XbarConfig,
}

/// Software-side agent ticked by the simulation loop.
///
/// Controllers model the host-CPU software of the paper's stack (drivers,
/// QoS managers, MemGuard tick handlers). They run "beside" the hardware:
/// the SoC calls [`Controller::on_cycle`] every cycle and the controller
/// decides internally when to act (e.g. every OS tick).
pub trait Controller {
    /// Called once per simulated cycle.
    ///
    /// Under fast-forward this is only invoked at *executed* cycles, so
    /// periodic work must catch up over gaps (the stock controllers all
    /// schedule themselves with a `next_at` deadline, which is naturally
    /// gap-safe).
    fn on_cycle(&mut self, now: Cycle);

    /// Earliest cycle `>= now` at which this controller can act, `None`
    /// for never again. The conservative default `Some(now)` declares
    /// "call me every cycle" and disables fast-forwarding for the whole
    /// SoC — always safe, never wrong, just slow.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Declares whether (and under what constraints) the clock may leap
    /// over a detected steady-state period while this controller runs.
    /// The default denies: a controller opts in only when its behavior
    /// depends on nothing but its snapshotted state plus the one-shot
    /// horizons it reports here (see [`LeapSupport`]).
    fn leap_support(&self, _now: Cycle) -> LeapSupport {
        LeapSupport::deny()
    }

    /// Short label for reports.
    fn label(&self) -> &'static str {
        "controller"
    }

    /// Deep-copies this controller for a forked run, remapping shared
    /// handles (driver register files) through `ctx`. Returning `None` —
    /// the default — declares the controller unforkable and makes
    /// [`Soc::snapshot`] fail.
    fn fork_ctrl(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn Controller>> {
        None
    }

    /// Feeds this controller's architectural state into a snapshot
    /// fingerprint; the default writes only the label.
    fn snap_state(&self, h: &mut StateHasher) {
        h.section(self.label());
    }

    /// Restores this controller's state from a serialized snapshot
    /// stream (the decode mirror of [`Controller::snap_state`]). The
    /// default refuses with a diagnostic
    /// [`SnapDecodeError::Unsupported`].
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`] aborts the whole load.
    fn snap_load(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        Err(SnapDecodeError::unsupported(self.label()))
    }
}

/// Builder for a [`Soc`].
///
/// Masters are assigned dense [`MasterId`]s in registration order.
///
/// ```
/// use fgqos_sim::prelude::*;
///
/// let soc = SocBuilder::new(SocConfig::default())
///     .master("dma0", SequentialSource::reads(0, 1024, 100), MasterKind::Accelerator)
///     .build();
/// assert_eq!(soc.master_count(), 1);
/// ```
pub struct SocBuilder {
    cfg: SocConfig,
    masters: Vec<Master>,
    controllers: Vec<Box<dyn Controller>>,
    window_cycles: Option<u64>,
    window_latency: bool,
}

impl SocBuilder {
    /// Starts a builder with the given configuration.
    pub fn new(cfg: SocConfig) -> Self {
        SocBuilder {
            cfg,
            masters: Vec::new(),
            controllers: Vec::new(),
            window_cycles: None,
            window_latency: false,
        }
    }

    /// The id the *next* registered master will receive.
    pub fn next_id(&self) -> MasterId {
        MasterId::new(self.masters.len())
    }

    /// Adds an ungated master with the kind's default outstanding limit.
    pub fn master(
        self,
        name: impl Into<String>,
        source: impl TrafficSource + 'static,
        kind: MasterKind,
    ) -> Self {
        let outstanding = kind.default_outstanding();
        self.master_full(name, source, kind, OpenGate, outstanding)
    }

    /// Adds a master with an explicit [`PortGate`] (QoS regulator seam).
    pub fn gated_master(
        self,
        name: impl Into<String>,
        source: impl TrafficSource + 'static,
        kind: MasterKind,
        gate: impl PortGate + 'static,
    ) -> Self {
        let outstanding = kind.default_outstanding();
        self.master_full(name, source, kind, gate, outstanding)
    }

    /// Adds a master with full control over gate and outstanding limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero.
    pub fn master_full(
        mut self,
        name: impl Into<String>,
        source: impl TrafficSource + 'static,
        kind: MasterKind,
        gate: impl PortGate + 'static,
        max_outstanding: usize,
    ) -> Self {
        let id = MasterId::new(self.masters.len());
        self.masters.push(Master::new(
            id,
            name,
            kind,
            Box::new(source),
            Box::new(gate),
            max_outstanding,
        ));
        self
    }

    /// Registers a software-side controller (QoS manager, MemGuard tick).
    pub fn controller(mut self, controller: impl Controller + 'static) -> Self {
        self.controllers.push(Box::new(controller));
        self
    }

    /// Enables per-window byte recording on every master.
    pub fn record_windows(mut self, window_cycles: u64) -> Self {
        self.window_cycles = Some(window_cycles);
        self
    }

    /// Enables per-window byte *and* latency (p50/p99) recording on every
    /// master — the per-window schema exported by
    /// [`Soc::window_series_csv`].
    pub fn record_windows_with_latency(mut self, window_cycles: u64) -> Self {
        self.window_cycles = Some(window_cycles);
        self.window_latency = true;
        self
    }

    /// Finalizes the SoC.
    ///
    /// # Panics
    ///
    /// Panics if no master was registered or the configuration is invalid.
    pub fn build(self) -> Soc {
        assert!(!self.masters.is_empty(), "SoC needs at least one master");
        let mut masters = self.masters;
        if let Some(w) = self.window_cycles {
            for m in &mut masters {
                if self.window_latency {
                    m.record_windows_with_latency(w);
                } else {
                    m.record_windows(w);
                }
            }
        }
        let xbar = Crossbar::new(self.cfg.xbar.clone(), masters.len());
        let dram = DramController::new(self.cfg.dram.clone());
        // FGQOS_NAIVE=1 forces cycle-by-cycle stepping (A/B debugging,
        // speedup measurement); any other value keeps fast-forward on.
        let env_on = |name: &str| std::env::var_os(name).is_some_and(|v| v != "0" && !v.is_empty());
        let naive = env_on("FGQOS_NAIVE");
        // Steady-state leaping defaults on in fast mode. FGQOS_NO_LEAP=1
        // is the escape hatch; FGQOS_LEAP=1 states intent explicitly
        // (e.g. CI equivalence loops) but cannot override the naive core
        // or the escape hatch — a conflict gets one clear diagnostic.
        let no_leap = env_on("FGQOS_NO_LEAP");
        if env_on("FGQOS_LEAP") && (naive || no_leap) {
            static CONFLICT: std::sync::Once = std::sync::Once::new();
            let loser = if naive {
                "FGQOS_NAIVE=1 (the naive reference core never leaps)"
            } else {
                "FGQOS_NO_LEAP=1"
            };
            CONFLICT.call_once(|| {
                eprintln!("fgqos: FGQOS_LEAP=1 conflicts with {loser}; steady-state leaping stays disabled");
            });
        }
        Soc {
            freq: self.cfg.freq,
            cycle: Cycle::ZERO,
            masters,
            xbar,
            dram,
            controllers: self.controllers,
            arena: TxnArena::new(),
            naive,
            leap: LeapState::new(!naive && !no_leap),
        }
    }
}

/// Which condition ends an event-driven run early (mirrors the early
/// returns of the naive loops exactly).
enum StopWhen {
    /// Run to the deadline unconditionally.
    Never,
    /// Stop when one master drains ([`Soc::run_until_done`]).
    MasterDone(MasterId),
    /// Stop when every master drains ([`Soc::run_until_all_done`]).
    AllDone,
    /// Stop at the first quiesced boundary ([`Soc::quiesce_point`]).
    Quiesced,
}

/// One window boundary of a [`Soc::run_windowed`] run, handed to the
/// boundary callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowBoundary {
    /// Zero-based index of the window that just finished.
    pub index: u64,
    /// First cycle of the window.
    pub start: Cycle,
    /// Boundary cycle (exclusive end of the window; the SoC's current
    /// cycle when the callback runs).
    pub end: Cycle,
    /// Whether this is the run's final boundary. The callback must not
    /// mutate regulator state here (see [`Soc::run_windowed`]).
    pub last: bool,
}

/// The simulated SoC: masters, crossbar, DRAM and software controllers.
// Fields are crate-visible for the snapshot/fork module (snapshot.rs),
// which reassembles a Soc field by field.
pub struct Soc {
    pub(crate) freq: Freq,
    pub(crate) cycle: Cycle,
    pub(crate) masters: Vec<Master>,
    pub(crate) xbar: Crossbar,
    pub(crate) dram: DramController,
    pub(crate) controllers: Vec<Box<dyn Controller>>,
    pub(crate) arena: TxnArena,
    pub(crate) naive: bool,
    pub(crate) leap: LeapState,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("cycle", &self.cycle)
            .field("masters", &self.masters.len())
            .field("controllers", &self.controllers.len())
            .finish_non_exhaustive()
    }
}

impl Soc {
    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// The SoC clock.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// Number of master ports.
    pub fn master_count(&self) -> usize {
        self.masters.len()
    }

    /// Statistics of one master.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn master_stats(&self, id: MasterId) -> &MasterStats {
        self.masters[id.index()].stats()
    }

    /// Looks up a master id by its registration name.
    pub fn master_id(&self, name: &str) -> Option<MasterId> {
        self.masters
            .iter()
            .find(|m| m.name() == name)
            .map(|m| m.id())
    }

    /// DRAM-side aggregate statistics.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Average throughput achieved by `id` over the whole run so far.
    pub fn master_bandwidth(&self, id: MasterId) -> Bandwidth {
        self.master_stats(id).meter.bandwidth(self.cycle, self.freq)
    }

    /// Aggregate DRAM throughput over the whole run so far.
    pub fn total_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_over(
            self.dram.stats().bytes_completed,
            self.cycle.get(),
            self.freq,
        )
    }

    /// `true` when master `id` has exhausted its source and drained.
    pub fn master_done(&self, id: MasterId) -> bool {
        self.masters[id.index()].is_done()
    }

    /// Forces cycle-by-cycle stepping (`true`) or re-enables next-event
    /// fast-forward (`false`). Also settable via the `FGQOS_NAIVE`
    /// environment variable at build time. Both modes produce
    /// bit-identical statistics; naive mode exists for A/B verification
    /// and speedup measurement.
    pub fn set_naive(&mut self, naive: bool) {
        self.naive = naive;
    }

    /// Whether the naive reference core is selected (see
    /// [`Soc::set_naive`]). The flag is part of the snapshot stream, so
    /// warm-boundary caches must key on it.
    pub fn is_naive(&self) -> bool {
        self.naive
    }

    /// Enables or disables steady-state leaping (see
    /// [`crate::leap`]). Defaults to enabled under the event-calendar
    /// core; `FGQOS_NO_LEAP=1` disables it at build time. Disabling
    /// drops the recurrence table; re-enabling starts detection fresh.
    /// The naive core ignores the flag — it never leaps.
    pub fn set_leap(&mut self, enabled: bool) {
        self.leap = LeapState::new(enabled);
    }

    /// Steady-state leap telemetry accumulated so far.
    pub fn leap_telemetry(&self) -> LeapTelemetry {
        LeapTelemetry {
            enabled: self.leap.enabled,
            periods_detected: self.leap.periods_detected,
            cycles_skipped: self.leap.cycles_skipped,
            leaps: self.leap.leaps,
        }
    }

    /// Advances the simulation by one cycle (the naive reference core:
    /// every component ticks, in the canonical phase order).
    pub fn step(&mut self) {
        let now = self.cycle;
        for c in &mut self.controllers {
            c.on_cycle(now);
        }
        for m in &mut self.masters {
            m.tick(now, &mut self.xbar, &mut self.arena);
        }
        self.xbar.tick(now, &mut self.dram, &self.arena);
        let responses = self.dram.tick(now, &mut self.arena);
        for response in responses {
            let idx = response.request.master.index();
            self.masters[idx].on_response(response, now);
        }
        self.cycle += 1;
    }

    /// Earliest cycle `>= now` at which any component can change state:
    /// the minimum over every master (source schedule, staged request,
    /// gate window), the crossbar, the DRAM controller and every
    /// software controller. `None` when the whole SoC is quiescent.
    pub fn next_event(&self) -> Option<Cycle> {
        let now = self.cycle;
        let mut wake: Option<Cycle> = None;
        let mut merge = |c: Option<Cycle>| {
            wake = match (wake, c) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        for m in &self.masters {
            merge(m.next_activity(now));
        }
        merge(self.xbar.next_activity(now));
        merge(self.dram.next_activity(now));
        for c in &self.controllers {
            merge(c.next_activity(now));
        }
        wake
    }

    /// Builds a fresh event calendar from the current component states.
    ///
    /// Token layout: masters `0..n`, DRAM `n`, crossbar backlog `n + 1`,
    /// controllers `n + 2 ..`. Rebuilt at every run entry so external
    /// pokes between runs ([`Soc::master_mut`], [`Soc::set_naive`]) can
    /// never leave a stale schedule behind.
    fn build_calendar(&self) -> EventCalendar {
        let n = self.masters.len();
        let now = self.cycle;
        let mut cal = EventCalendar::new(n + 2 + self.controllers.len(), now.get());
        for (i, m) in self.masters.iter().enumerate() {
            cal.set(i as u32, m.next_activity(now).map_or(NEVER, |c| c.get()));
        }
        cal.set(
            n as u32,
            self.dram.next_activity(now).map_or(NEVER, |c| c.get()),
        );
        if self.xbar.queued() > 0 && self.dram.has_space() {
            cal.set(n as u32 + 1, now.get());
        }
        for (i, c) in self.controllers.iter().enumerate() {
            cal.set(
                (n + 2 + i) as u32,
                c.next_activity(now).map_or(NEVER, |cy| cy.get()),
            );
        }
        cal
    }

    /// Executes simulation cycle `now` in the canonical phase order
    /// (controllers → masters → crossbar → DRAM → response delivery),
    /// ticking only the components in `due` plus any woken mid-cycle,
    /// then re-arms the calendar. Every component's `next_activity`
    /// contract guarantees that ticking a non-due component would be a
    /// state no-op, so this is cycle-exact with naive stepping.
    fn execute_cycle(&mut self, now: Cycle, cal: &mut EventCalendar, due: &[u32]) {
        let n = self.masters.len();
        let dram_tok = n as u32;
        let ctrl_base = n as u32 + 2;
        let next = now + 1;

        // Phase 1: controllers. A controller acting this cycle may read
        // gate telemetry and poke any master's gate live, so (a) lazy
        // stall accounting must be flushed for every master first, and
        // (b) every master is then ticked this cycle.
        let ctrl_acted = due.iter().any(|&t| t >= ctrl_base);
        if ctrl_acted {
            for m in &mut self.masters {
                m.catch_up(now);
            }
            for &t in due {
                if t >= ctrl_base {
                    self.controllers[(t - ctrl_base) as usize].on_cycle(now);
                }
            }
        }

        // Phase 2: masters, in index order (the naive order).
        if ctrl_acted {
            for i in 0..n {
                self.masters[i].tick(now, &mut self.xbar, &mut self.arena);
                let wake = self.masters[i]
                    .next_activity(next)
                    .map_or(NEVER, |c| c.get());
                cal.set(i as u32, wake);
            }
        } else {
            for &t in due {
                if (t as usize) < n {
                    let m = &mut self.masters[t as usize];
                    m.catch_up(now);
                    m.tick(now, &mut self.xbar, &mut self.arena);
                    let wake = m.next_activity(next).map_or(NEVER, |c| c.get());
                    cal.set(t, wake);
                }
            }
        }

        // Phase 3: crossbar arbitration. Ticked whenever backlogged (the
        // tick is a pure no-op when the DRAM queue is full, exactly as in
        // naive stepping). A pop frees FIFO space the owning master can
        // use from the next cycle on.
        let mut popped = None;
        if self.xbar.queued() > 0 {
            popped = self.xbar.tick(now, &mut self.dram, &self.arena);
            if let Some(p) = popped {
                cal.set_min(p as u32, next.get());
            }
        }

        // Phase 4: DRAM + response delivery. Ticked when scheduled (bank
        // timing, completion, refresh) or when the crossbar just enqueued
        // (naive would consider the new request this very cycle).
        if popped.is_some() || due.contains(&dram_tok) {
            let responses = self.dram.tick(now, &mut self.arena);
            for response in responses {
                let idx = response.request.master.index();
                self.masters[idx].on_response(response, now);
                cal.set_min(idx as u32, next.get());
            }
            let wake = self.dram.next_activity(next).map_or(NEVER, |c| c.get());
            cal.set(dram_tok, wake);
        }

        // Re-arm the crossbar backlog token: a pending pop forces the
        // next cycle to execute. Evaluated after the DRAM phase so queue
        // space freed this cycle is visible.
        if self.xbar.queued() > 0 && self.dram.has_space() {
            cal.set(dram_tok + 1, next.get());
        } else {
            cal.set(dram_tok + 1, NEVER);
        }

        // Re-query every controller: a controller's wake may move as a
        // consequence of this cycle's gate/master activity (e.g. a
        // level-triggered IRQ asserting), not only of its own tick.
        for (i, c) in self.controllers.iter().enumerate() {
            cal.set(
                ctrl_base + i as u32,
                c.next_activity(next).map_or(NEVER, |cy| cy.get()),
            );
        }
    }

    /// Flushes lazy skipped-cycle stall accounting on every master, as if
    /// each had ticked through `final_cycle - 1`.
    fn flush_fast_stats(&mut self, final_cycle: Cycle) {
        for m in &mut self.masters {
            m.finish_fast_run(final_cycle);
        }
    }

    /// Event-driven core: advances to `deadline`, executing only cycles
    /// where some component is due. Returns `Some(stop cycle)` when
    /// `stop` is satisfied after an executed cycle (`guard_post` demands
    /// the stop cycle lie strictly before the deadline, matching
    /// [`Soc::run_until_all_done`]'s naive loop); `None` at the deadline.
    fn run_fast(&mut self, deadline: Cycle, stop: StopWhen, guard_post: bool) -> Option<Cycle> {
        let mut cal = self.build_calendar();
        let mut due = Vec::new();
        while self.cycle < deadline {
            let next_exec = cal.next_due(self.cycle.get()).unwrap_or(NEVER);
            if next_exec >= deadline.get() {
                break;
            }
            let now = Cycle::new(next_exec);
            cal.take_due(next_exec, &mut due);
            self.execute_cycle(now, &mut cal, &due);
            self.cycle = now + 1;
            let stopped = match stop {
                StopWhen::Never => false,
                StopWhen::MasterDone(id) => self.master_done(id),
                StopWhen::AllDone => self.masters.iter().all(Master::is_done),
                StopWhen::Quiesced => self.arena.live() == 0,
            };
            if stopped && (!guard_post || self.cycle < deadline) {
                self.flush_fast_stats(self.cycle);
                return Some(self.cycle);
            }
            // Steady-state leap: at a quiesced boundary (the only point
            // the full state is snapshotable), probe for a recurring
            // period and skip ahead algebraically. A landed leap moved
            // every component's schedule, so the calendar is rebuilt.
            if self.leap.enabled && self.arena.live() == 0 && self.maybe_leap(deadline) {
                cal = self.build_calendar();
            }
        }
        self.flush_fast_stats(deadline);
        self.cycle = deadline;
        None
    }

    /// Runs for `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        let deadline = self.cycle + cycles;
        if self.naive {
            while self.cycle < deadline {
                self.step();
            }
            return;
        }
        self.run_fast(deadline, StopWhen::Never, false);
    }

    /// Runs for `cycles` cycles in `window`-sized segments, yielding to
    /// `at_boundary` at every window boundary. This is the live
    /// subsystem's entry point: boundaries are where telemetry frames
    /// are read out and queued control writes take effect.
    ///
    /// At an **interior** boundary `B` (every boundary except the last)
    /// the SoC is *settled* first: every controller's `on_cycle(B)` runs
    /// in index order, with masters already flushed through `B - 1` by
    /// the segment run — exactly the phase-1 state the naive core
    /// reaches at cycle `B`. Any scheduled op with `at <= B` has
    /// therefore fired before the callback observes the machine, so an
    /// external register write applied inside the callback lands *after*
    /// same-cycle `[phase]` ops, matching the declaration order a replay
    /// that appends synthesized phases produces. Controllers must
    /// tolerate a repeated `on_cycle` at the same cycle (the naive core
    /// calls `on_cycle` every cycle, so every controller is
    /// self-scheduled and the re-poll is a state no-op).
    ///
    /// At the **final** boundary (`boundary.last`) the SoC is *not*
    /// settled and the callback must not mutate regulator state: a
    /// monolithic run of the same schedule never executes the deadline
    /// cycle, so an op firing there would diverge from replay.
    ///
    /// Segment deadlines bound the steady-state leap engine: `run`
    /// never leaps past its own deadline, so an armed subscription (or a
    /// pending control write, which applies at the next boundary)
    /// structurally constrains leaping — a leap can never skip a frame
    /// or a control application point.
    ///
    /// With no writes applied at any boundary, a windowed run is
    /// bit-identical to `run(cycles)`: settling only re-polls
    /// controllers at cycles the naive core polls anyway, and skipped
    /// ticks of non-due components are state no-ops by contract.
    ///
    /// The callback's return value asks for continuation: returning
    /// `false` stops the run at that boundary (an aborted live run);
    /// the return value of the final boundary is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0.
    pub fn run_windowed(
        &mut self,
        cycles: u64,
        window: u64,
        mut at_boundary: impl FnMut(&mut Soc, WindowBoundary) -> bool,
    ) {
        assert!(window > 0, "window must be at least one cycle");
        let mut remaining = cycles;
        let mut index = 0u64;
        loop {
            let seg = remaining.min(window);
            let start = self.cycle;
            self.run(seg);
            remaining -= seg;
            let last = remaining == 0;
            if !last {
                self.settle_controllers();
            }
            let keep_going = at_boundary(
                self,
                WindowBoundary {
                    index,
                    start,
                    end: self.cycle,
                    last,
                },
            );
            if last || !keep_going {
                return;
            }
            index += 1;
        }
    }

    /// Runs every controller's `on_cycle` at the current cycle, in index
    /// order — the naive core's phase-1 at this cycle. Masters must
    /// already be flushed through the previous cycle (both cores
    /// guarantee this at every `run` exit).
    fn settle_controllers(&mut self) {
        let now = self.cycle;
        for c in &mut self.controllers {
            c.on_cycle(now);
        }
    }

    /// Runs until master `id` finishes its workload, up to `max_cycles`.
    ///
    /// Returns the completion time, or `None` on timeout.
    pub fn run_until_done(&mut self, id: MasterId, max_cycles: u64) -> Option<Cycle> {
        let deadline = self.cycle + max_cycles;
        if self.naive {
            while self.cycle < deadline {
                if self.master_done(id) {
                    return Some(self.cycle);
                }
                self.step();
                if self.master_done(id) {
                    return Some(self.cycle);
                }
            }
            return if self.master_done(id) {
                Some(self.cycle)
            } else {
                None
            };
        }
        // Completion state only changes at executed cycles, so checking
        // at entry and after each executed cycle matches naive stepping's
        // per-cycle checks exactly.
        if self.master_done(id) {
            return Some(self.cycle);
        }
        match self.run_fast(deadline, StopWhen::MasterDone(id), false) {
            Some(c) => Some(c),
            None if self.master_done(id) => Some(self.cycle),
            None => None,
        }
    }

    /// Runs until every master finishes, up to `max_cycles`.
    ///
    /// Returns the completion time, or `None` on timeout.
    pub fn run_until_all_done(&mut self, max_cycles: u64) -> Option<Cycle> {
        let deadline = self.cycle + max_cycles;
        if self.naive {
            while self.cycle < deadline {
                if self.masters.iter().all(Master::is_done) {
                    return Some(self.cycle);
                }
                self.step();
                if self.cycle < deadline && self.masters.iter().all(Master::is_done) {
                    return Some(self.cycle);
                }
            }
            return None;
        }
        if self.cycle < deadline && self.masters.iter().all(Master::is_done) {
            return Some(self.cycle);
        }
        self.run_fast(deadline, StopWhen::AllDone, true)
    }

    /// `true` when the SoC is at a quiesced boundary: no transaction is
    /// in flight anywhere on the memory path (staged-but-unissued
    /// requests are master-local state and are captured by a snapshot).
    ///
    /// Every in-flight transaction — crossbar FIFO entry, DRAM queue
    /// entry or in-service access — holds a live arena slot, so an empty
    /// arena implies the whole pipeline is drained.
    pub fn is_quiesced(&self) -> bool {
        self.arena.live() == 0
    }

    /// Advances the simulation to the next quiesced boundary, up to
    /// `max_cycles` from now.
    ///
    /// Returns the boundary cycle (which may be the current cycle if the
    /// SoC is already quiesced), or `None` when no quiesced boundary was
    /// reached within the budget — e.g. under unregulated saturation,
    /// where the pipeline never empties. Both execution cores stop at
    /// the identical boundary: the arena can only drain at an executed
    /// cycle, and executed cycles coincide by construction.
    pub fn quiesce_point(&mut self, max_cycles: u64) -> Option<Cycle> {
        let deadline = self.cycle + max_cycles;
        if self.naive {
            while self.cycle < deadline {
                if self.is_quiesced() {
                    return Some(self.cycle);
                }
                self.step();
            }
            return if self.is_quiesced() {
                Some(self.cycle)
            } else {
                None
            };
        }
        if self.is_quiesced() {
            return Some(self.cycle);
        }
        match self.run_fast(deadline, StopWhen::Quiesced, false) {
            Some(c) => Some(c),
            None if self.is_quiesced() => Some(self.cycle),
            None => None,
        }
    }

    /// Mutable access to one master (tests, ablation hooks).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn master_mut(&mut self, id: MasterId) -> &mut Master {
        &mut self.masters[id.index()]
    }

    /// Registration name of one master.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn master_name(&self, id: MasterId) -> &str {
        self.masters[id.index()].name()
    }

    /// Pulls a point-in-time [`MetricsRegistry`] snapshot of every
    /// component: per-master counters/histograms, each port gate's
    /// telemetry (via [`PortGate::collect_metrics`]), crossbar
    /// configuration and DRAM counters.
    ///
    /// Collection is pull-based: the simulation loop never touches the
    /// registry, so *not* calling this method costs nothing (the
    /// zero-cost-when-disabled invariant, see [`crate::metrics`]).
    pub fn collect_metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("soc.cycle", self.cycle.get());
        reg.gauge("soc.freq_hz", self.freq.hz() as f64);
        for m in &self.masters {
            let p = format!("soc.master.{}", m.name());
            let st = m.stats();
            reg.counter(format!("{p}.issued_txns"), st.issued_txns);
            reg.counter(format!("{p}.completed_txns"), st.completed_txns);
            reg.counter(format!("{p}.bytes_completed"), st.bytes_completed);
            reg.counter(format!("{p}.gate_stall_cycles"), st.gate_stall_cycles);
            reg.counter(format!("{p}.fifo_stall_cycles"), st.fifo_stall_cycles);
            reg.gauge(
                format!("{p}.bandwidth_bytes_per_s"),
                st.meter.bandwidth(self.cycle, self.freq).bytes_per_s(),
            );
            reg.histogram(format!("{p}.latency"), &st.latency);
            reg.histogram(format!("{p}.service_latency"), &st.service_latency);
            let gp = format!("{p}.gate");
            reg.text(format!("{gp}.kind"), m.gate().label());
            m.gate().collect_metrics(&gp, &mut reg);
        }
        reg.gauge("soc.xbar.ports", self.xbar.port_count() as f64);
        reg.gauge(
            "soc.xbar.port_fifo_depth",
            self.xbar.config().port_fifo_depth as f64,
        );
        reg.text(
            "soc.xbar.arbitration",
            self.xbar.config().arbitration.label(),
        );
        reg.counter("soc.leap.periods_detected", self.leap.periods_detected);
        reg.counter("soc.leap.cycles_skipped", self.leap.cycles_skipped);
        reg.counter("soc.leap.leaps", self.leap.leaps);
        let d = self.dram.stats();
        reg.counter("soc.dram.bytes_completed", d.bytes_completed);
        reg.counter("soc.dram.reads", d.reads);
        reg.counter("soc.dram.writes", d.writes);
        reg.counter("soc.dram.row_hits", d.row_hits);
        reg.counter("soc.dram.row_misses", d.row_misses);
        reg.counter("soc.dram.bus_busy_cycles", d.bus_busy_cycles);
        reg.counter("soc.dram.refreshes", d.refreshes);
        reg.gauge("soc.dram.row_hit_ratio", d.row_hit_ratio());
        reg.histogram("soc.dram.queue_wait", &d.queue_wait);
        reg
    }

    /// Exports every master's per-window series as CSV with a
    /// schema-version comment line (`fgqos.window-series` v1).
    ///
    /// Columns: `master,window,start_cycle,bytes,lat_count,p50_lat,p99_lat`;
    /// the three latency columns are empty unless the run used
    /// [`SocBuilder::record_windows_with_latency`]. Masters without window
    /// recording contribute no rows.
    pub fn window_series_csv(&self) -> String {
        let mut out = String::from(
            "# fgqos.window-series v1\nmaster,window,start_cycle,bytes,lat_count,p50_lat,p99_lat\n",
        );
        use std::fmt::Write as _;
        for m in &self.masters {
            let Some(w) = m.stats().window.as_ref() else {
                continue;
            };
            let lat = w.latency_windows();
            for (i, &bytes) in w.windows().iter().enumerate() {
                let start = i as u64 * w.window_cycles();
                match lat.get(i) {
                    Some(l) => {
                        let _ = writeln!(
                            out,
                            "{},{},{},{},{},{},{}",
                            m.name(),
                            i,
                            start,
                            bytes,
                            l.count,
                            l.p50,
                            l.p99
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{},{},{},{},,,", m.name(), i, start, bytes);
                    }
                }
            }
        }
        out
    }

    /// Renders a captured [`Trace`] plus this SoC's window series as a
    /// Chrome trace-event JSON document (see [`ChromeTraceBuilder`]):
    /// master names become thread names, transactions become duration
    /// slices, gate decisions instant events and per-window byte series
    /// counter tracks.
    pub fn chrome_trace(&self, trace: &Trace) -> String {
        let mut b = ChromeTraceBuilder::new(self.freq);
        for m in &self.masters {
            b.thread_name(m.id().index(), m.name());
        }
        b.add_trace(trace);
        for m in &self.masters {
            if let Some(w) = m.stats().window.as_ref() {
                b.add_counter_track(
                    &format!("window_bytes/{}", m.name()),
                    w.window_cycles(),
                    w.windows(),
                );
            }
        }
        b.finish().to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::SequentialSource;

    fn no_refresh() -> SocConfig {
        SocConfig {
            dram: DramConfig {
                t_refi: 0,
                ..DramConfig::default()
            },
            ..SocConfig::default()
        }
    }

    #[test]
    fn single_master_runs_to_completion() {
        let mut soc = SocBuilder::new(no_refresh())
            .master(
                "dma",
                SequentialSource::reads(0, 1024, 50),
                MasterKind::Accelerator,
            )
            .build();
        let done = soc.run_until_done(MasterId::new(0), 1_000_000);
        assert!(done.is_some());
        let st = soc.master_stats(MasterId::new(0));
        assert_eq!(st.completed_txns, 50);
        assert_eq!(st.bytes_completed, 50 * 1024);
    }

    #[test]
    fn conservation_master_bytes_equal_dram_bytes() {
        let mut soc = SocBuilder::new(no_refresh())
            .master(
                "a",
                SequentialSource::reads(0, 512, 40),
                MasterKind::Accelerator,
            )
            .master(
                "b",
                SequentialSource::writes(1 << 24, 256, 60),
                MasterKind::Accelerator,
            )
            .build();
        soc.run_until_all_done(1_000_000).expect("workloads drain");
        let total: u64 = (0..soc.master_count())
            .map(|i| soc.master_stats(MasterId::new(i)).bytes_completed)
            .sum();
        assert_eq!(total, soc.dram_stats().bytes_completed);
        assert_eq!(total, 40 * 512 + 60 * 256);
    }

    #[test]
    fn interference_slows_latency_sensitive_master() {
        // Critical master alone.
        let critical = || {
            SequentialSource::reads(0, 256, 500)
                .with_think_time(50)
                .with_footprint(1 << 20)
        };
        let mut solo = SocBuilder::new(no_refresh())
            .master_full("crit", critical(), MasterKind::Cpu, OpenGate, 1)
            .build();
        let t_solo = solo.run_until_done(MasterId::new(0), 10_000_000).unwrap();

        // Same master against three greedy streaming interferers.
        let mut builder = SocBuilder::new(no_refresh()).master_full(
            "crit",
            critical(),
            MasterKind::Cpu,
            OpenGate,
            1,
        );
        for i in 0..3 {
            builder = builder.master(
                format!("dma{i}"),
                SequentialSource::writes((1 << 28) * (i as u64 + 1), 4096, u64::MAX),
                MasterKind::Accelerator,
            );
        }
        let mut contended = builder.build();
        let t_cont = contended
            .run_until_done(MasterId::new(0), 100_000_000)
            .unwrap();

        let slowdown = t_cont.get() as f64 / t_solo.get() as f64;
        assert!(
            slowdown > 1.5,
            "expected visible interference, got {slowdown:.2}x"
        );
        // The interferers should also keep the DRAM far busier.
        assert!(contended.dram_stats().bytes_completed > solo.dram_stats().bytes_completed);
    }

    #[test]
    fn master_lookup_by_name() {
        let soc = SocBuilder::new(no_refresh())
            .master("x", SequentialSource::reads(0, 64, 1), MasterKind::Cpu)
            .master("y", SequentialSource::reads(0, 64, 1), MasterKind::Cpu)
            .build();
        assert_eq!(soc.master_id("y"), Some(MasterId::new(1)));
        assert_eq!(soc.master_id("z"), None);
    }

    #[test]
    fn run_until_done_times_out() {
        let mut soc = SocBuilder::new(no_refresh())
            .master(
                "inf",
                SequentialSource::reads(0, 64, u64::MAX),
                MasterKind::Cpu,
            )
            .build();
        assert!(soc.run_until_done(MasterId::new(0), 1_000).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one master")]
    fn empty_soc_rejected() {
        let _ = SocBuilder::new(no_refresh()).build();
    }

    #[test]
    fn window_recording() {
        let mut soc = SocBuilder::new(no_refresh())
            .master(
                "dma",
                SequentialSource::reads(0, 1024, 200),
                MasterKind::Accelerator,
            )
            .record_windows(1_000)
            .build();
        soc.run_until_all_done(1_000_000).unwrap();
        let st = soc.master_stats(MasterId::new(0));
        let w = st.window.as_ref().unwrap();
        assert!(w.windows().iter().sum::<u64>() <= st.bytes_completed);
        assert!(w.max_window() > 0);
    }
}
