//! Measurement infrastructure: bandwidth meters, latency statistics and
//! per-window recorders.
//!
//! All statistics are computed online with O(1) memory (the latency
//! histogram uses fixed log-linear buckets, HDR-style), so they can stay
//! attached to every master for arbitrarily long runs.

use crate::time::{Bandwidth, Cycle, Freq};
use fgqos_snap::{CowVec, SnapDecodeError, SnapReader, StateHasher};

/// Accumulates transferred bytes over an interval and converts the count
/// into a [`Bandwidth`].
///
/// ```
/// use fgqos_sim::stats::BandwidthMeter;
/// use fgqos_sim::time::{Cycle, Freq};
///
/// let mut m = BandwidthMeter::new(Cycle::ZERO);
/// m.record(1_600);
/// let bw = m.bandwidth(Cycle::new(100), Freq::ghz(1));
/// assert_eq!(bw.bytes_per_s(), 16e9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BandwidthMeter {
    bytes: u64,
    txns: u64,
    start: Cycle,
}

impl BandwidthMeter {
    /// Creates a meter whose interval starts at `start`.
    pub fn new(start: Cycle) -> Self {
        BandwidthMeter {
            bytes: 0,
            txns: 0,
            start,
        }
    }

    /// Records one completed transfer of `bytes` bytes.
    #[inline]
    pub fn record(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.txns += 1;
    }

    /// Total bytes recorded since the interval start.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total transactions recorded since the interval start.
    #[inline]
    pub fn txns(&self) -> u64 {
        self.txns
    }

    /// Average throughput over `[start, now]` at clock `freq`.
    pub fn bandwidth(&self, now: Cycle, freq: Freq) -> Bandwidth {
        Bandwidth::from_bytes_over(self.bytes, now.saturating_since(self.start), freq)
    }

    /// Resets the counters and restarts the interval at `now`.
    pub fn reset(&mut self, now: Cycle) {
        self.bytes = 0;
        self.txns = 0;
        self.start = now;
    }

    /// Feeds the meter's state into a snapshot fingerprint.
    pub fn snap(&self, h: &mut StateHasher) {
        h.section("meter");
        h.write_counter_u64(self.bytes);
        h.write_counter_u64(self.txns);
        h.write_cycle(self.start.get());
    }

    /// Restores the meter from a serialized snapshot stream (the decode
    /// mirror of [`BandwidthMeter::snap`]).
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`] aborts the whole load.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("meter")?;
        self.bytes = r.read_u64("meter bytes")?;
        self.txns = r.read_u64("meter txns")?;
        self.start = Cycle::new(r.read_u64("meter start")?);
        Ok(())
    }
}

/// Number of log2 magnitude groups in [`LatencyStats`].
const GROUPS: usize = 40;
/// Linear sub-buckets per magnitude group (higher = finer percentiles).
const SUBS: usize = 16;

/// Online latency distribution with HDR-style log-linear buckets.
///
/// Tracks count/mean/min/max exactly and percentiles to within ~6 %
/// relative error (one part in the per-group sub-bucket count).
///
/// ```
/// use fgqos_sim::stats::LatencyStats;
/// let mut s = LatencyStats::new();
/// for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 10);
/// assert_eq!(s.max(), 100);
/// assert!(s.percentile(0.5) >= 40 && s.percentile(0.5) <= 70);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyStats {
    // Copy-on-write so forked runs share the warm-up histogram until
    // their first sample (see `fgqos_snap::CowVec`).
    buckets: CowVec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        LatencyStats {
            buckets: CowVec::new(vec![0; GROUPS * SUBS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        // Values below SUBS land in the first group with exact resolution.
        if value < SUBS as u64 {
            return value as usize;
        }
        let group = 64 - value.leading_zeros() as usize - SUBS.trailing_zeros() as usize;
        let group = group.min(GROUPS - 1);
        let shift = group - 1;
        let sub = ((value >> shift) as usize) - SUBS;
        group * SUBS + sub.min(SUBS - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        let group = index / SUBS;
        let sub = (index % SUBS) as u64;
        if group == 0 {
            return sub;
        }
        let shift = group - 1;
        (SUBS as u64 + sub) << shift
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (`0.0..=1.0`), e.g. `percentile(0.99)`.
    ///
    /// Returns the lower bound of the bucket containing the quantile;
    /// 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be within 0..=1");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Iterates the non-empty histogram buckets as
    /// `(bucket_lower_bound, count)`, in ascending value order — the raw
    /// distribution for export or plotting.
    ///
    /// ```
    /// use fgqos_sim::stats::LatencyStats;
    /// let mut s = LatencyStats::new();
    /// s.record(3);
    /// s.record(3);
    /// s.record(100);
    /// let buckets: Vec<(u64, u64)> = s.nonzero_buckets().collect();
    /// assert_eq!(buckets[0], (3, 2));
    /// assert_eq!(buckets.len(), 2);
    /// ```
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_value(i), c))
    }

    /// Resets the distribution in place without reallocating the bucket
    /// array (used by per-window latency recording, which reuses one
    /// scratch histogram per window).
    pub fn clear(&mut self) {
        self.buckets.make_mut().fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        for (a, b) in self.buckets.make_mut().iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Feeds the distribution's state into a snapshot fingerprint
    /// (summary fields plus the non-empty buckets as index/count pairs).
    pub fn snap(&self, h: &mut StateHasher) {
        h.section("latency");
        h.write_counter_u64(self.count);
        h.write_counter_u128(self.sum);
        h.write_u64(self.min);
        h.write_u64(self.max);
        for (i, &c) in self.buckets.iter().enumerate().filter(|(_, &c)| c > 0) {
            h.write_usize(i);
            h.write_counter_u64(c);
        }
    }

    /// Restores the distribution from a serialized snapshot stream (the
    /// decode mirror of [`LatencyStats::snap`]). The bucket pairs carry
    /// no length prefix; they are read until their counts sum to the
    /// recorded total, with strictly increasing indices — any deviation
    /// is a diagnostic error.
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`] aborts the whole load.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("latency")?;
        let count = r.read_u64("latency count")?;
        let sum = r.read_u128("latency sum")?;
        let min = r.read_u64("latency min")?;
        let max = r.read_u64("latency max")?;
        self.clear();
        self.count = count;
        self.sum = sum;
        self.min = min;
        self.max = max;
        let buckets = self.buckets.make_mut();
        let mut acc: u64 = 0;
        let mut last: Option<usize> = None;
        while acc < count {
            let at = r.position();
            let i = r.read_usize("latency bucket index")?;
            let c = r.read_u64("latency bucket count")?;
            if i >= buckets.len() || c == 0 || last.is_some_and(|l| i <= l) || c > count - acc {
                return Err(SnapDecodeError::BadValue {
                    what: format!("latency bucket ({i}, {c}) inconsistent with count {count}"),
                    at,
                });
            }
            buckets[i] = c;
            acc += c;
            last = Some(i);
        }
        Ok(())
    }
}

/// Records a per-window time series of a counter (e.g. bytes completed per
/// window), for timeline figures.
///
/// ```
/// use fgqos_sim::stats::WindowRecorder;
/// use fgqos_sim::time::Cycle;
/// let mut r = WindowRecorder::new(100);
/// r.add(Cycle::new(10), 5);
/// r.add(Cycle::new(150), 7);
/// r.finish(Cycle::new(200));
/// assert_eq!(r.windows(), &[5, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct WindowRecorder {
    window_cycles: u64,
    current_window: u64,
    current_value: u64,
    // Copy-on-write so forked runs share the warm-up series until they
    // close their first window.
    windows: CowVec<u64>,
    /// Scratch histogram for the current window; `Some` enables per-window
    /// latency summaries (see [`WindowRecorder::with_latency`]).
    lat_scratch: Option<LatencyStats>,
    lat_windows: CowVec<WindowLatency>,
}

/// Per-window latency summary produced by a [`WindowRecorder`] in latency
/// mode (one entry per closed window, aligned with
/// [`WindowRecorder::windows`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowLatency {
    /// Samples recorded within the window.
    pub count: u64,
    /// Approximate median latency within the window (0 if idle).
    pub p50: u64,
    /// Approximate 99th-percentile latency within the window (0 if idle).
    pub p99: u64,
}

impl WindowRecorder {
    /// Creates a recorder with windows of `window_cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    pub fn new(window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window length must be non-zero");
        WindowRecorder {
            window_cycles,
            current_window: 0,
            current_value: 0,
            windows: CowVec::default(),
            lat_scratch: None,
            lat_windows: CowVec::default(),
        }
    }

    /// Enables per-window latency summaries: each closed window also
    /// records a [`WindowLatency`] (p50/p99/count) computed from the
    /// samples passed to [`WindowRecorder::add_with_latency`]. Costs one
    /// reusable scratch histogram; byte recording is unaffected.
    pub fn with_latency(mut self) -> Self {
        self.lat_scratch = Some(LatencyStats::new());
        self
    }

    /// `true` when per-window latency summaries are enabled.
    pub fn records_latency(&self) -> bool {
        self.lat_scratch.is_some()
    }

    /// Window length in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    fn roll_to(&mut self, target_window: u64) {
        while self.current_window < target_window {
            self.windows.push(self.current_value);
            self.current_value = 0;
            if let Some(scratch) = &mut self.lat_scratch {
                self.lat_windows.push(WindowLatency {
                    count: scratch.count(),
                    p50: scratch.percentile(0.50),
                    p99: scratch.percentile(0.99),
                });
                scratch.clear();
            }
            self.current_window += 1;
        }
    }

    /// Adds `value` at time `now`, closing any windows that elapsed since
    /// the previous call (they record their accumulated value; fully idle
    /// windows record zero).
    pub fn add(&mut self, now: Cycle, value: u64) {
        self.roll_to(now.get() / self.window_cycles);
        self.current_value += value;
    }

    /// Like [`WindowRecorder::add`], additionally feeding one `latency`
    /// sample into the current window's summary when latency mode is
    /// enabled (the sample is ignored otherwise).
    pub fn add_with_latency(&mut self, now: Cycle, value: u64, latency: u64) {
        self.roll_to(now.get() / self.window_cycles);
        self.current_value += value;
        if let Some(scratch) = &mut self.lat_scratch {
            scratch.record(latency);
        }
    }

    /// Flushes all windows up to (but not including) the one containing
    /// `now`.
    pub fn finish(&mut self, now: Cycle) {
        self.add(now, 0);
    }

    /// The closed windows recorded so far.
    pub fn windows(&self) -> &[u64] {
        &self.windows
    }

    /// Per-window latency summaries (empty unless latency mode is on;
    /// otherwise aligned one-to-one with [`WindowRecorder::windows`]).
    pub fn latency_windows(&self) -> &[WindowLatency] {
        &self.lat_windows
    }

    /// Largest closed-window value, or 0 if none.
    pub fn max_window(&self) -> u64 {
        self.windows.iter().copied().max().unwrap_or(0)
    }

    /// Feeds the recorder's state into a snapshot fingerprint.
    pub fn snap(&self, h: &mut StateHasher) {
        h.section("window-recorder");
        h.write_u64(self.window_cycles);
        h.write_u64(self.current_window);
        h.write_u64(self.current_value);
        h.write_usize(self.windows.len());
        for &w in self.windows.iter() {
            h.write_u64(w);
        }
        match &self.lat_scratch {
            Some(s) => {
                h.write_bool(true);
                s.snap(h);
            }
            None => h.write_bool(false),
        }
        h.write_usize(self.lat_windows.len());
        for lw in self.lat_windows.iter() {
            h.write_u64(lw.count);
            h.write_u64(lw.p50);
            h.write_u64(lw.p99);
        }
    }

    /// Reconstructs a recorder from a serialized snapshot stream (the
    /// decode mirror of [`WindowRecorder::snap`]); the stream carries
    /// everything, so no pre-built skeleton recorder is needed.
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`] aborts the whole load.
    pub fn snap_load(r: &mut SnapReader<'_>) -> Result<WindowRecorder, SnapDecodeError> {
        r.section("window-recorder")?;
        let at = r.position();
        let window_cycles = r.read_u64("window-recorder window_cycles")?;
        if window_cycles == 0 {
            return Err(SnapDecodeError::BadValue {
                what: "window-recorder window_cycles must be non-zero".to_string(),
                at,
            });
        }
        let mut rec = WindowRecorder::new(window_cycles);
        rec.current_window = r.read_u64("window-recorder current_window")?;
        rec.current_value = r.read_u64("window-recorder current_value")?;
        let n = r.read_usize("window-recorder windows len")?;
        for _ in 0..n {
            rec.windows
                .push(r.read_u64("window-recorder window value")?);
        }
        rec.lat_scratch = if r.read_bool("window-recorder scratch flag")? {
            let mut s = LatencyStats::new();
            s.snap_load(r)?;
            Some(s)
        } else {
            None
        };
        let m = r.read_usize("window-recorder latency windows len")?;
        for _ in 0..m {
            rec.lat_windows.push(WindowLatency {
                count: r.read_u64("window-latency count")?,
                p50: r.read_u64("window-latency p50")?,
                p99: r.read_u64("window-latency p99")?,
            });
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_basic() {
        let mut m = BandwidthMeter::new(Cycle::new(100));
        m.record(64);
        m.record(64);
        assert_eq!(m.bytes(), 128);
        assert_eq!(m.txns(), 2);
        let bw = m.bandwidth(Cycle::new(228), Freq::ghz(1));
        assert_eq!(bw.bytes_per_s(), 1e9);
        m.reset(Cycle::new(228));
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.bandwidth(Cycle::new(300), Freq::ghz(1)), Bandwidth::ZERO);
    }

    #[test]
    fn meter_zero_interval() {
        let m = BandwidthMeter::new(Cycle::new(5));
        assert_eq!(m.bandwidth(Cycle::new(5), Freq::ghz(1)), Bandwidth::ZERO);
    }

    #[test]
    fn latency_exact_small_values() {
        let mut s = LatencyStats::new();
        for v in 0..16u64 {
            s.record(v);
        }
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 15);
        assert_eq!(s.count(), 16);
        assert!((s.mean() - 7.5).abs() < 1e-9);
        // Small values are stored exactly.
        assert_eq!(s.percentile(1.0), 15);
    }

    #[test]
    fn latency_bucket_roundtrip_error_bounded() {
        // bucket_value(bucket_index(v)) must be within 1/SUBS of v.
        for v in [
            1u64,
            17,
            100,
            1000,
            4096,
            65_535,
            1 << 20,
            (1 << 33) + 12345,
        ] {
            let idx = LatencyStats::bucket_index(v);
            let lo = LatencyStats::bucket_value(idx);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            let rel = (v - lo) as f64 / v as f64;
            assert!(
                rel <= 1.0 / SUBS as f64 + 1e-9,
                "error {rel} too large for {v}"
            );
        }
    }

    #[test]
    fn latency_percentiles_ordered() {
        let mut s = LatencyStats::new();
        for v in 1..=1000u64 {
            s.record(v);
        }
        let p50 = s.percentile(0.50);
        let p90 = s.percentile(0.90);
        let p99 = s.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!((450..=560).contains(&p50), "p50 = {p50}");
        assert!((850..=1000).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn latency_empty() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.percentile(0.5), 0);
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let mut s = LatencyStats::new();
        for v in [1u64, 1, 5, 700, 700, 700, 12_345] {
            s.record(v);
        }
        let buckets: Vec<(u64, u64)> = s.nonzero_buckets().collect();
        let total: u64 = buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, s.count());
        // Ascending and within range.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(buckets[0], (1, 2));
    }

    #[test]
    fn latency_merge() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn window_recorder_gaps() {
        let mut r = WindowRecorder::new(10);
        r.add(Cycle::new(0), 1);
        r.add(Cycle::new(35), 2); // windows 0..3 close; 0 has value 1, 1-2 idle
        r.finish(Cycle::new(40));
        assert_eq!(r.windows(), &[1, 0, 0, 2]);
        assert_eq!(r.max_window(), 2);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn window_recorder_zero_window() {
        let _ = WindowRecorder::new(0);
    }

    #[test]
    fn latency_clear_resets_in_place() {
        let mut s = LatencyStats::new();
        for v in [5u64, 50, 500] {
            s.record(v);
        }
        s.clear();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.nonzero_buckets().count(), 0);
        s.record(7);
        assert_eq!(s.count(), 1);
        assert_eq!(s.percentile(1.0), 7);
    }

    #[test]
    fn window_recorder_latency_mode() {
        let mut r = WindowRecorder::new(10).with_latency();
        assert!(r.records_latency());
        r.add_with_latency(Cycle::new(1), 64, 100);
        r.add_with_latency(Cycle::new(2), 64, 200);
        r.add_with_latency(Cycle::new(15), 32, 9); // window 0 closes
        r.finish(Cycle::new(20)); // window 1 closes
        assert_eq!(r.windows(), &[128, 32]);
        let lw = r.latency_windows();
        assert_eq!(lw.len(), 2);
        assert_eq!(lw[0].count, 2);
        assert!(lw[0].p50 >= 100 && lw[0].p99 <= 200);
        assert_eq!(lw[1].count, 1);
        assert_eq!(lw[1].p99, 9);
    }

    #[test]
    fn window_recorder_latency_disabled_ignores_samples() {
        let mut r = WindowRecorder::new(10);
        r.add_with_latency(Cycle::new(0), 1, 999);
        r.finish(Cycle::new(20));
        assert_eq!(r.windows(), &[1, 0]);
        assert!(r.latency_windows().is_empty());
        assert!(!r.records_latency());
    }
}
