//! Minimal, dependency-free JSON document model with a deterministic
//! writer and a strict parser.
//!
//! The workspace deliberately carries no external crates, so the
//! observability layer (metrics export, Chrome traces, experiment
//! artifacts) shares this module instead of `serde`. The model keeps
//! object keys in *insertion order*, which makes every exported artifact
//! byte-stable across runs — a requirement for the drift-checked
//! experiment book (see `docs/observability.md`).
//!
//! Numbers are stored as `f64`; integers round-trip exactly up to
//! 2^53, far above any counter the simulator produces in practice.
//!
//! ```
//! use fgqos_sim::json::Value;
//!
//! let mut obj = Value::obj();
//! obj.set("schema", Value::str("fgqos.example"));
//! obj.set("version", Value::from(1u64));
//! let text = obj.to_pretty();
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(back.get("version").unwrap().as_u64(), Some(1));
//! ```

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integers are exact up to 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with keys kept in insertion order.
    Obj(Vec<(String, Value)>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Num(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Num(v as f64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Num(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    /// Creates an empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Creates an empty array.
    pub fn arr() -> Value {
        Value::Arr(Vec::new())
    }

    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Inserts or replaces `key` on an object, preserving first-insertion
    /// order for existing keys.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: impl Into<String>, value: Value) -> &mut Value {
        let Value::Obj(entries) = self else {
            panic!("Value::set on a non-object");
        };
        let key = key.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
        self
    }

    /// Appends `value` to an array.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: Value) -> &mut Value {
        let Value::Arr(items) = self else {
            panic!("Value::push on a non-array");
        };
        items.push(value);
        self
    }

    /// Looks up `key` on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries in insertion order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Serializes without any whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a deterministic layout
    /// (insertion-order keys, `\n` line endings, no trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Writes a number the way every JSON consumer expects: integers without
/// a fractional part, everything else via Rust's shortest-roundtrip
/// `f64` formatting.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; exporters must never produce them, but a
        // null beats an unparsable document if one slips through.
        out.push_str("null");
        return;
    }
    if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Value::parse`] with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or_else(|| self.err("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos one past the last digit; the
                            // trailing `pos += 1` below is skipped via continue.
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let mut v = Value::obj();
        v.set("name", Value::str("soc.master.dma0"));
        v.set("count", Value::from(42u64));
        v.set("ratio", Value::from(0.5));
        v.set("flags", Value::Arr(vec![Value::Bool(true), Value::Null]));
        let text = v.to_pretty();
        assert_eq!(Value::parse(&text).unwrap(), v);
        let compact = v.to_compact();
        assert_eq!(Value::parse(&compact).unwrap(), v);
        assert!(!compact.contains('\n'));
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut v = Value::obj();
        v.set("z", Value::from(1u64));
        v.set("a", Value::from(2u64));
        v.set("z", Value::from(3u64));
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(v.get("z").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn string_escapes() {
        let v = Value::str("a\"b\\c\nd\te\u{1}");
        let text = v.to_compact();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = Value::parse("\"\\u00e9\\ud83d\\ude00x\"").unwrap();
        assert_eq!(v.as_str(), Some("é😀x"));
    }

    #[test]
    fn numbers() {
        assert_eq!(Value::parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(Value::parse("-2.5").unwrap().as_f64(), Some(-2.5));
        assert_eq!(Value::parse("1e3").unwrap().as_f64(), Some(1000.0));
        let mut out = String::new();
        write_number(&mut out, 12.81);
        assert_eq!(out, "12.81");
        out.clear();
        write_number(&mut out, 5.0);
        assert_eq!(out, "5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("true false").is_err());
        assert!(Value::parse("\"abc").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::parse("{}").unwrap(), Value::obj());
        assert_eq!(Value::parse("[ ]").unwrap(), Value::arr());
        assert_eq!(Value::obj().to_pretty(), "{}");
        assert_eq!(Value::arr().to_compact(), "[]");
    }
}
