//! Master models: traffic sources, per-master state machine and statistics.
//!
//! A [`Master`] owns a [`TrafficSource`] (what to access), a
//! [`PortGate`] (QoS regulation seam) and an
//! outstanding-transaction limit (how aggressively it can pipeline).
//! CPU-like latency-sensitive actors and DMA-like accelerators differ only
//! in their source pattern and outstanding limit.

use crate::arena::TxnArena;
use crate::axi::{Dir, MasterId, Request, Response, BEAT_BYTES, MAX_BURST_BEATS};
use crate::gate::{GateDecision, PortGate};
use crate::interconnect::Crossbar;
use crate::leap::LeapSupport;
use crate::stats::{BandwidthMeter, LatencyStats, WindowRecorder};
use crate::time::Cycle;
use fgqos_snap::{ForkCtx, SnapDecodeError, SnapReader, SnapshotError, StateHasher};
use std::fmt;

/// Broad class of a master, fixing sensible defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterKind {
    /// Latency-sensitive processor-like actor: low memory-level
    /// parallelism (2 outstanding transactions).
    Cpu,
    /// Bandwidth-hungry DMA/accelerator port: deep pipelining
    /// (8 outstanding transactions).
    Accelerator,
}

impl MasterKind {
    /// Default outstanding-transaction limit for this kind.
    pub fn default_outstanding(self) -> usize {
        match self {
            MasterKind::Cpu => 2,
            MasterKind::Accelerator => 8,
        }
    }
}

/// A request produced by a [`TrafficSource`], not yet presented to the
/// interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRequest {
    /// Byte address of the first beat.
    pub addr: u64,
    /// Burst length in beats.
    pub beats: u16,
    /// Transfer direction.
    pub dir: Dir,
    /// Earliest cycle at which the master may present this request
    /// (models compute gaps / arrival processes).
    pub not_before: Cycle,
}

/// Generates the memory-access stream of one master.
///
/// The owning [`Master`] pulls the next request only when it has issue
/// capacity (staged slot free and outstanding credit available), so
/// closed-loop sources see completions before the next pull.
pub trait TrafficSource {
    /// Produces the next request, or `None` if the source has nothing to
    /// issue right now (the master retries every cycle).
    fn next_request(&mut self, now: Cycle) -> Option<PendingRequest>;

    /// Observes a completion of a request this source generated.
    fn on_complete(&mut self, _response: &Response, _now: Cycle) {}

    /// `true` once the source will never produce another request.
    fn is_done(&self) -> bool {
        false
    }

    /// Earliest cycle `>= now` at which pulling from this source could
    /// yield a request whose `not_before` has arrived, assuming no
    /// completion is delivered in between (completions execute a cycle
    /// and re-ask). `None` means the source is exhausted. The default
    /// `Some(now)` declares "poll me every cycle" and merely disables
    /// fast-forwarding for the owning master — always safe.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Declares whether (and under what constraints) the clock may leap
    /// over a detected steady-state period while this source is
    /// attached. The default denies: only sources that can state
    /// exactly how their behavior depends on absolute time opt in.
    fn leap_support(&self, _now: Cycle) -> LeapSupport {
        LeapSupport::deny()
    }

    /// Deep-copies this source for a forked run, remapping shared
    /// handles through `ctx`. Returning `None` — the default — declares
    /// the source unforkable and makes
    /// [`Soc::snapshot`](crate::system::Soc::snapshot) fail.
    fn fork_source(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn TrafficSource>> {
        None
    }

    /// Feeds this source's architectural state into a snapshot
    /// fingerprint. Stateful sources must hash every field that
    /// influences the remaining request stream.
    fn snap_state(&self, h: &mut StateHasher) {
        h.section("source");
    }

    /// Restores this source's state from a serialized snapshot stream
    /// (the decode mirror of [`TrafficSource::snap_state`]). The default
    /// refuses with a diagnostic [`SnapDecodeError::Unsupported`].
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`] aborts the whole load.
    fn snap_load(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        Err(SnapDecodeError::unsupported("traffic source"))
    }
}

impl TrafficSource for Box<dyn TrafficSource> {
    fn next_request(&mut self, now: Cycle) -> Option<PendingRequest> {
        self.as_mut().next_request(now)
    }

    fn on_complete(&mut self, response: &Response, now: Cycle) {
        self.as_mut().on_complete(response, now);
    }

    fn is_done(&self) -> bool {
        self.as_ref().is_done()
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        self.as_ref().next_activity(now)
    }

    fn leap_support(&self, now: Cycle) -> LeapSupport {
        self.as_ref().leap_support(now)
    }

    fn fork_source(&self, ctx: &mut ForkCtx) -> Option<Box<dyn TrafficSource>> {
        self.as_ref().fork_source(ctx)
    }

    fn snap_state(&self, h: &mut StateHasher) {
        self.as_ref().snap_state(h);
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        self.as_mut().snap_load(r)
    }
}

/// Sequential (streaming) traffic source.
///
/// Covers the paper's synthetic generators: sequential reads or writes of
/// a fixed burst size, optionally rate-limited by an issue gap, made
/// closed-loop by a think time, and confined to a footprint so the row
/// locality is controllable.
///
/// ```
/// use fgqos_sim::master::{SequentialSource, TrafficSource};
/// use fgqos_sim::time::Cycle;
///
/// let mut src = SequentialSource::reads(0x1000, 256, 2);
/// let a = src.next_request(Cycle::ZERO).unwrap();
/// let b = src.next_request(Cycle::ZERO).unwrap();
/// assert_eq!(b.addr, a.addr + 256);
/// assert!(src.next_request(Cycle::ZERO).is_none());
/// assert!(src.is_done());
/// ```
#[derive(Debug, Clone)]
pub struct SequentialSource {
    base: u64,
    next_addr: u64,
    beats: u16,
    dir: Dir,
    total_txns: u64,
    issued: u64,
    gap: u64,
    think_time: u64,
    footprint: u64,
    next_ready: Cycle,
}

impl SequentialSource {
    /// Creates a source issuing `total_txns` transactions of
    /// `bytes_per_txn` bytes starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_txn` is not a positive multiple of
    /// [`BEAT_BYTES`] not exceeding one maximum burst.
    pub fn new(base: u64, bytes_per_txn: u64, total_txns: u64, dir: Dir) -> Self {
        assert!(
            bytes_per_txn > 0 && bytes_per_txn.is_multiple_of(BEAT_BYTES),
            "bytes_per_txn must be a positive multiple of {BEAT_BYTES}"
        );
        let beats = bytes_per_txn / BEAT_BYTES;
        assert!(
            beats <= MAX_BURST_BEATS as u64,
            "bytes_per_txn exceeds the maximum burst ({} bytes)",
            MAX_BURST_BEATS as u64 * BEAT_BYTES
        );
        SequentialSource {
            base,
            next_addr: base,
            beats: beats as u16,
            dir,
            total_txns,
            issued: 0,
            gap: 0,
            think_time: 0,
            footprint: 0,
            next_ready: Cycle::ZERO,
        }
    }

    /// Sequential read stream (see [`SequentialSource::new`]).
    pub fn reads(base: u64, bytes_per_txn: u64, total_txns: u64) -> Self {
        SequentialSource::new(base, bytes_per_txn, total_txns, Dir::Read)
    }

    /// Sequential write stream (see [`SequentialSource::new`]).
    pub fn writes(base: u64, bytes_per_txn: u64, total_txns: u64) -> Self {
        SequentialSource::new(base, bytes_per_txn, total_txns, Dir::Write)
    }

    /// Minimum issue-to-issue spacing in cycles (arrival-rate limit).
    pub fn with_gap(mut self, cycles: u64) -> Self {
        self.gap = cycles;
        self
    }

    /// Closed-loop think time: the next request is generated no earlier
    /// than `cycles` after the previous completion. Combine with an
    /// outstanding limit of 1–2 for a CPU-like latency-sensitive actor.
    pub fn with_think_time(mut self, cycles: u64) -> Self {
        self.think_time = cycles;
        self
    }

    /// Confines addresses to `[base, base + bytes)`, wrapping around.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one transaction.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        assert!(
            bytes >= self.beats as u64 * BEAT_BYTES,
            "footprint must hold at least one transaction"
        );
        self.footprint = bytes;
        self
    }

    /// Delays the first request until `cycle`: the source sleeps (its
    /// `next_activity` reports `cycle` while idle) and the first
    /// request's `not_before` is at least `cycle`.
    ///
    /// Warm-start sweeps use this to keep a measured master idle through
    /// the shared warm-up phase, so the quiesce point can be taken
    /// before it issues its first transaction.
    pub fn with_start(mut self, cycle: u64) -> Self {
        self.next_ready = Cycle::new(cycle);
        self
    }

    /// Transactions generated so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl TrafficSource for SequentialSource {
    fn next_request(&mut self, now: Cycle) -> Option<PendingRequest> {
        if self.issued >= self.total_txns {
            return None;
        }
        let not_before = self.next_ready.max(now);
        self.next_ready = not_before + self.gap;
        let addr = self.next_addr;
        self.next_addr += self.beats as u64 * BEAT_BYTES;
        if self.footprint > 0 && self.next_addr >= self.base + self.footprint {
            self.next_addr = self.base;
        }
        self.issued += 1;
        Some(PendingRequest {
            addr,
            beats: self.beats,
            dir: self.dir,
            not_before,
        })
    }

    fn on_complete(&mut self, response: &Response, _now: Cycle) {
        if self.think_time > 0 {
            self.next_ready = self.next_ready.max(response.completed_at + self.think_time);
        }
    }

    fn is_done(&self) -> bool {
        self.issued >= self.total_txns
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.issued >= self.total_txns {
            None
        } else {
            // Pulling at `next_ready.max(now)` yields the same
            // `not_before` and the same updated schedule as pulling on
            // any earlier cycle would have.
            Some(self.next_ready.max(now))
        }
    }

    fn leap_support(&self, _now: Cycle) -> LeapSupport {
        // A bounded stream caps the leap so exhaustion lands on a
        // simulated cycle. Without a footprint `next_addr` grows
        // monotonically — a plain snapshot field that never recurs, so
        // the recurrence check itself keeps such runs conservative.
        if self.total_txns == u64::MAX {
            LeapSupport::clear()
        } else {
            LeapSupport::budget(self.total_txns.saturating_sub(self.issued))
        }
    }

    fn fork_source(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn TrafficSource>> {
        Some(Box::new(self.clone()))
    }

    fn snap_state(&self, h: &mut StateHasher) {
        h.section("seq-source");
        h.write_u64(self.base);
        h.write_u64(self.next_addr);
        h.write_u16(self.beats);
        h.write_bool(self.dir == Dir::Write);
        h.write_u64(self.total_txns);
        h.write_counter_u64(self.issued);
        h.write_u64(self.gap);
        h.write_u64(self.think_time);
        h.write_u64(self.footprint);
        h.write_cycle(self.next_ready.get());
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("seq-source")?;
        self.base = r.read_u64("seq-source base")?;
        self.next_addr = r.read_u64("seq-source next_addr")?;
        self.beats = r.read_u16("seq-source beats")?;
        self.dir = if r.read_bool("seq-source dir")? {
            Dir::Write
        } else {
            Dir::Read
        };
        self.total_txns = r.read_u64("seq-source total_txns")?;
        self.issued = r.read_u64("seq-source issued")?;
        self.gap = r.read_u64("seq-source gap")?;
        self.think_time = r.read_u64("seq-source think_time")?;
        self.footprint = r.read_u64("seq-source footprint")?;
        self.next_ready = Cycle::new(r.read_u64("seq-source next_ready")?);
        Ok(())
    }
}

/// Per-master measurement record.
#[derive(Debug, Default, Clone)]
pub struct MasterStats {
    /// Requests accepted into the interconnect.
    pub issued_txns: u64,
    /// Requests completed by the memory system.
    pub completed_txns: u64,
    /// Bytes of completed requests.
    pub bytes_completed: u64,
    /// End-to-end latency distribution (includes regulation stalls).
    pub latency: LatencyStats,
    /// Memory-system latency distribution (acceptance to completion).
    pub service_latency: LatencyStats,
    /// Cycles a staged request was denied by the port gate.
    pub gate_stall_cycles: u64,
    /// Cycles a staged request waited for interconnect FIFO space.
    pub fifo_stall_cycles: u64,
    /// Throughput meter over the whole run.
    pub meter: BandwidthMeter,
    /// Optional per-window byte series for timeline figures.
    pub window: Option<WindowRecorder>,
}

impl MasterStats {
    /// Feeds the record into a snapshot fingerprint.
    pub fn snap(&self, h: &mut StateHasher) {
        h.section("stats");
        h.write_counter_u64(self.issued_txns);
        h.write_counter_u64(self.completed_txns);
        h.write_counter_u64(self.bytes_completed);
        self.latency.snap(h);
        self.service_latency.snap(h);
        h.write_counter_u64(self.gate_stall_cycles);
        h.write_counter_u64(self.fifo_stall_cycles);
        self.meter.snap(h);
        match &self.window {
            Some(w) => {
                h.write_bool(true);
                w.snap(h);
            }
            None => h.write_bool(false),
        }
    }

    /// Restores the record from a serialized snapshot stream (the decode
    /// mirror of [`MasterStats::snap`]).
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`] aborts the whole load.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("stats")?;
        self.issued_txns = r.read_u64("stats issued_txns")?;
        self.completed_txns = r.read_u64("stats completed_txns")?;
        self.bytes_completed = r.read_u64("stats bytes_completed")?;
        self.latency.snap_load(r)?;
        self.service_latency.snap_load(r)?;
        self.gate_stall_cycles = r.read_u64("stats gate_stall_cycles")?;
        self.fifo_stall_cycles = r.read_u64("stats fifo_stall_cycles")?;
        self.meter.snap_load(r)?;
        self.window = if r.read_bool("stats window flag")? {
            Some(WindowRecorder::snap_load(r)?)
        } else {
            None
        };
        Ok(())
    }
}

/// One master port: source + gate + issue state machine.
pub struct Master {
    id: MasterId,
    name: String,
    kind: MasterKind,
    source: Box<dyn TrafficSource>,
    gate: Box<dyn PortGate>,
    max_outstanding: usize,
    staged: Option<(PendingRequest, Option<Cycle>)>,
    in_flight: usize,
    serial: u64,
    // Fast-forward bookkeeping: whether the most recent gate attempt for
    // the currently staged request was a denial, and whether a completion
    // has touched the gate/source since that attempt (which may flip a
    // capacity-based denial without any gate-internal schedule).
    last_denied: bool,
    gate_dirty: bool,
    // The gate's flip cycle, latched *at the denied cycle*. A time-pure
    // gate (e.g. TDMA) queried after its accept window has already
    // opened reports the window's *end*, not its start — so the wake for
    // a denied retry must be captured while the denial is in force.
    retry_at: Option<Cycle>,
    // Whether the most recent tick ended stalled on interconnect FIFO
    // space. While true, every naive cycle would burn one fifo-stall
    // cycle without consulting the gate; the event loop replicates that
    // over skipped spans in `catch_up` and wakes the master when the
    // crossbar pops from its port.
    fifo_blocked: bool,
    // A naive master pulls from its source on the first cycle its staged
    // slot is free — *before* any completion delivered later that same
    // span can shift the source's arrival schedule (`on_complete`). The
    // pull must therefore run at that exact cycle, not be deferred to
    // `source.next_activity`: this flag forces a wake on the cycle after
    // a push (and at reset) so the pull lands where naive's would.
    pull_pending: bool,
    // Last cycle `tick` ran; `catch_up` replicates the per-cycle stall
    // accounting of the cycles skipped since.
    last_tick: Cycle,
    stats: MasterStats,
}

impl fmt::Debug for Master {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Master")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("max_outstanding", &self.max_outstanding)
            .field("in_flight", &self.in_flight)
            .field("serial", &self.serial)
            .finish_non_exhaustive()
    }
}

impl Master {
    /// Creates a master. Most users go through
    /// [`SocBuilder`](crate::system::SocBuilder) instead.
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero.
    pub fn new(
        id: MasterId,
        name: impl Into<String>,
        kind: MasterKind,
        source: Box<dyn TrafficSource>,
        gate: Box<dyn PortGate>,
        max_outstanding: usize,
    ) -> Self {
        assert!(max_outstanding > 0, "max_outstanding must be non-zero");
        Master {
            id,
            name: name.into(),
            kind,
            source,
            gate,
            max_outstanding,
            staged: None,
            in_flight: 0,
            serial: 0,
            last_denied: false,
            gate_dirty: false,
            retry_at: None,
            fifo_blocked: false,
            pull_pending: true,
            last_tick: Cycle::ZERO,
            stats: MasterStats::default(),
        }
    }

    /// This master's port id.
    pub fn id(&self) -> MasterId {
        self.id
    }

    /// Human-readable name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The master's kind.
    pub fn kind(&self) -> MasterKind {
        self.kind
    }

    /// Measurement record.
    pub fn stats(&self) -> &MasterStats {
        &self.stats
    }

    /// Currently outstanding transactions.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Enables per-window byte recording with the given window length.
    pub fn record_windows(&mut self, window_cycles: u64) {
        self.stats.window = Some(WindowRecorder::new(window_cycles));
    }

    /// Enables per-window byte *and* latency (p50/p99) recording.
    pub fn record_windows_with_latency(&mut self, window_cycles: u64) {
        self.stats.window = Some(WindowRecorder::new(window_cycles).with_latency());
    }

    /// `true` when the source is exhausted and no transaction is staged or
    /// in flight.
    pub fn is_done(&self) -> bool {
        self.source.is_done() && self.staged.is_none() && self.in_flight == 0
    }

    /// Advances this master by one cycle: pulls from the source, applies
    /// the gate, and pushes at most one request into the crossbar.
    /// Accepted requests are parked in `arena` and enter the crossbar as
    /// [`crate::arena::TxnId`] handles.
    pub fn tick(&mut self, now: Cycle, xbar: &mut Crossbar, arena: &mut TxnArena) {
        self.last_tick = now;
        self.gate.on_cycle(now);

        if self.staged.is_none() {
            self.pull_pending = false;
            if self.in_flight < self.max_outstanding && !self.source.is_done() {
                if let Some(p) = self.source.next_request(now) {
                    self.staged = Some((p, None));
                }
            }
        }

        let Some((pending, first_attempt)) = self.staged.as_mut() else {
            self.fifo_blocked = false;
            return;
        };
        if now < pending.not_before || self.in_flight >= self.max_outstanding {
            self.fifo_blocked = false;
            return;
        }
        let first = *first_attempt.get_or_insert(now);
        if !xbar.has_space(self.id) {
            self.stats.fifo_stall_cycles += 1;
            self.fifo_blocked = true;
            return;
        }
        self.fifo_blocked = false;
        let mut request = Request::new(
            self.id,
            self.serial,
            pending.addr,
            pending.beats,
            pending.dir,
            first,
        );
        request.accepted_at = now;
        self.gate_dirty = false;
        match self.gate.try_accept(&request, now) {
            GateDecision::Accept => {
                xbar.push(arena.alloc(&request), self.id);
                self.serial += 1;
                self.in_flight += 1;
                self.stats.issued_txns += 1;
                self.staged = None;
                self.last_denied = false;
                // Naive pulls the next request on the very next cycle;
                // wake then so the pull precedes any later completion.
                self.pull_pending = true;
            }
            GateDecision::Deny => {
                self.stats.gate_stall_cycles += 1;
                self.last_denied = true;
                // Latch the flip cycle now, while the gate still reports
                // the denied state's edge (see `retry_at`).
                self.retry_at = self.gate.next_activity(now);
            }
        }
    }

    /// Earliest cycle `>= now` at which ticking this master could change
    /// any state, assuming no response is delivered and no crossbar pop
    /// frees its ingress FIFO in between (the event loop wakes the
    /// master for both).
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // Gate-internal schedules (window rolls, telemetry registers)
        // must run at their naive cycles even when the master itself has
        // nothing to present, so the gate is consulted unconditionally.
        let gate = self.gate.next_activity(now);
        let own = if let Some((pending, _)) = &self.staged {
            if now < pending.not_before {
                Some(pending.not_before)
            } else if self.in_flight >= self.max_outstanding || self.fifo_blocked {
                // Unblocked only by a completion (outstanding cap) or a
                // crossbar pop from this port (FIFO space) — both are
                // executed cycles that explicitly wake this master.
                None
            } else if self.last_denied && !self.gate_dirty {
                // The denial can only flip at the gate's latched edge.
                self.retry_at.map(|c| c.max(now))
            } else {
                Some(now) // ready to attempt, or a denial a completion may have flipped
            }
        } else if self.in_flight >= self.max_outstanding || self.source.is_done() {
            None // draining: unblocked only by completions
        } else if self.pull_pending {
            // The post-push pull must run at its naive cycle (see the
            // field comment): deferring it past a completion would let
            // `on_complete` shift the source schedule under it.
            Some(now)
        } else {
            self.source.next_activity(now)
        };
        match (gate, own) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Merged leap constraints of this master's source and gate. A
    /// window-series recorder denies outright: it materializes one entry
    /// per window, which an algebraic leap cannot reproduce.
    pub(crate) fn leap_support(&self, now: Cycle) -> LeapSupport {
        if self.stats.window.is_some() {
            return LeapSupport::deny();
        }
        self.source
            .leap_support(now)
            .merge(self.gate.leap_support(now))
    }

    /// Replicates the per-cycle stall accounting of every naive cycle in
    /// `(last_tick, now)` — the cycles the event loop skipped for this
    /// master. Called immediately before a wake tick at `now`, and once
    /// more at run end (with `now` = final cycle) to flush the tail.
    ///
    /// A skipped cycle has exactly one of three per-cycle effects in
    /// naive stepping: a FIFO-blocked staged request burns a fifo-stall
    /// cycle (the gate is never consulted behind a full FIFO), a
    /// gate-denied staged request burns a gate-stall cycle plus the
    /// gate's own per-denied-cycle accounting, or nothing (idle, draining
    /// or waiting sleep states touch no counters).
    pub(crate) fn catch_up(&mut self, now: Cycle) {
        let span = now.get().saturating_sub(self.last_tick.get() + 1);
        if span == 0 || self.staged.is_none() {
            return;
        }
        if self.fifo_blocked {
            self.stats.fifo_stall_cycles += span;
        } else if self.last_denied {
            self.stats.gate_stall_cycles += span;
            self.gate.on_denied_skip(span);
        }
    }

    /// Flushes skipped-cycle accounting up to (but not including)
    /// `final_cycle` and records it as caught up, so statistics read
    /// between runs match naive stepping exactly.
    pub(crate) fn finish_fast_run(&mut self, final_cycle: Cycle) {
        self.catch_up(final_cycle);
        self.last_tick = Cycle::new(final_cycle.get().saturating_sub(1)).max(self.last_tick);
    }

    /// Delivers a completion belonging to this master.
    ///
    /// # Panics
    ///
    /// Panics if the response does not belong to this master or no
    /// transaction is in flight.
    pub fn on_response(&mut self, response: &Response, now: Cycle) {
        assert_eq!(
            response.request.master, self.id,
            "response routed to wrong master"
        );
        assert!(
            self.in_flight > 0,
            "completion without in-flight transaction"
        );
        self.in_flight -= 1;
        let bytes = response.request.bytes();
        self.stats.completed_txns += 1;
        self.stats.bytes_completed += bytes;
        self.stats.latency.record(response.latency());
        self.stats
            .service_latency
            .record(response.service_latency());
        self.stats.meter.record(bytes);
        if let Some(w) = self.stats.window.as_mut() {
            w.add_with_latency(response.completed_at, bytes, response.latency());
        }
        self.source.on_complete(response, now);
        self.gate.on_complete(response, now);
        // A completion may flip a capacity-based gate denial (e.g. an
        // in-flight cap): force one live retry before sleeping again.
        self.gate_dirty = true;
    }

    /// Deep-copies this master for a forked run, remapping shared
    /// handles through `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Unforkable`] when the source or gate
    /// does not implement forking.
    pub(crate) fn fork(&self, ctx: &mut ForkCtx) -> Result<Master, SnapshotError> {
        let source = self
            .source
            .fork_source(ctx)
            .ok_or_else(|| SnapshotError::Unforkable {
                label: format!("{}.source", self.name),
            })?;
        let gate = self
            .gate
            .fork_gate(ctx)
            .ok_or_else(|| SnapshotError::Unforkable {
                label: format!("{}.{}", self.name, self.gate.label()),
            })?;
        Ok(Master {
            id: self.id,
            name: self.name.clone(),
            kind: self.kind,
            source,
            gate,
            max_outstanding: self.max_outstanding,
            staged: self.staged,
            in_flight: self.in_flight,
            serial: self.serial,
            last_denied: self.last_denied,
            gate_dirty: self.gate_dirty,
            retry_at: self.retry_at,
            fifo_blocked: self.fifo_blocked,
            pull_pending: self.pull_pending,
            last_tick: self.last_tick,
            stats: self.stats.clone(),
        })
    }

    /// Feeds the master's full state — issue state machine, fast-forward
    /// bookkeeping, source, gate and statistics — into a snapshot
    /// fingerprint.
    pub(crate) fn snap(&self, h: &mut StateHasher) {
        h.section("master");
        h.write_usize(self.id.index());
        h.write_str(&self.name);
        h.write_u8(match self.kind {
            MasterKind::Cpu => 0,
            MasterKind::Accelerator => 1,
        });
        h.write_usize(self.max_outstanding);
        match &self.staged {
            Some((p, first)) => {
                h.write_bool(true);
                h.write_u64(p.addr);
                h.write_u16(p.beats);
                h.write_bool(p.dir == Dir::Write);
                h.write_cycle(p.not_before.get());
                match first {
                    Some(c) => {
                        h.write_bool(true);
                        h.write_cycle(c.get());
                    }
                    None => h.write_bool(false),
                }
            }
            None => h.write_bool(false),
        }
        h.write_usize(self.in_flight);
        h.write_counter_u64(self.serial);
        h.write_bool(self.last_denied);
        h.write_bool(self.gate_dirty);
        match self.retry_at {
            Some(c) => {
                h.write_bool(true);
                h.write_cycle(c.get());
            }
            None => h.write_bool(false),
        }
        h.write_bool(self.fifo_blocked);
        h.write_bool(self.pull_pending);
        h.write_cycle(self.last_tick.get());
        self.source.snap_state(h);
        self.gate.snap_state(h);
        self.stats.snap(h);
    }

    /// Restores the master's full state from a serialized snapshot
    /// stream (the decode mirror of [`Master::snap`]). Identity fields —
    /// id, name, kind, outstanding limit — come from the rebuilt
    /// skeleton and are *verified* against the stream rather than
    /// overwritten, so a stream loaded into the wrong scenario fails
    /// loudly at the first divergent master.
    pub(crate) fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        r.section("master")?;
        let at = r.position();
        let id = r.read_usize("master id")?;
        if id != self.id.index() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "master id {} in stream, skeleton has {}",
                    id,
                    self.id.index()
                ),
                at,
            });
        }
        let at = r.position();
        let name = r.read_str("master name")?;
        if name != self.name {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "master name {name:?} in stream, skeleton has {:?}",
                    self.name
                ),
                at,
            });
        }
        let at = r.position();
        let kind = r.read_u8("master kind")?;
        let own_kind = match self.kind {
            MasterKind::Cpu => 0,
            MasterKind::Accelerator => 1,
        };
        if kind != own_kind {
            return Err(SnapDecodeError::BadValue {
                what: format!("master {name:?} kind {kind} in stream, skeleton has {own_kind}"),
                at,
            });
        }
        let at = r.position();
        let outstanding = r.read_usize("master max_outstanding")?;
        if outstanding != self.max_outstanding {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "master {name:?} max_outstanding {outstanding} in stream, skeleton has {}",
                    self.max_outstanding
                ),
                at,
            });
        }
        self.staged = if r.read_bool("master staged flag")? {
            let addr = r.read_u64("staged addr")?;
            let beats = r.read_u16("staged beats")?;
            let dir = if r.read_bool("staged dir")? {
                Dir::Write
            } else {
                Dir::Read
            };
            let not_before = Cycle::new(r.read_u64("staged not_before")?);
            let first = if r.read_bool("staged first flag")? {
                Some(Cycle::new(r.read_u64("staged first cycle")?))
            } else {
                None
            };
            Some((
                PendingRequest {
                    addr,
                    beats,
                    dir,
                    not_before,
                },
                first,
            ))
        } else {
            None
        };
        self.in_flight = r.read_usize("master in_flight")?;
        self.serial = r.read_u64("master serial")?;
        self.last_denied = r.read_bool("master last_denied")?;
        self.gate_dirty = r.read_bool("master gate_dirty")?;
        self.retry_at = if r.read_bool("master retry_at flag")? {
            Some(Cycle::new(r.read_u64("master retry_at")?))
        } else {
            None
        };
        self.fifo_blocked = r.read_bool("master fifo_blocked")?;
        self.pull_pending = r.read_bool("master pull_pending")?;
        self.last_tick = Cycle::new(r.read_u64("master last_tick")?);
        self.source.snap_load(r)?;
        self.gate.snap_load(r)?;
        self.stats.snap_load(r)
    }

    /// Shared access to the port gate (metrics snapshots).
    pub fn gate(&self) -> &dyn PortGate {
        self.gate.as_ref()
    }

    /// Mutable access to the port gate (used by tests and ablations).
    pub fn gate_mut(&mut self) -> &mut dyn PortGate {
        self.gate.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::{DramConfig, DramController};
    use crate::gate::OpenGate;
    use crate::interconnect::{Crossbar, XbarConfig};

    fn harness() -> (Crossbar, DramController) {
        (
            Crossbar::new(XbarConfig::default(), 1),
            DramController::new(DramConfig {
                t_refi: 0,
                ..DramConfig::default()
            }),
        )
    }

    fn run(master: &mut Master, xbar: &mut Crossbar, dram: &mut DramController, cycles: u64) {
        let mut arena = TxnArena::new();
        for t in 0..cycles {
            let now = Cycle::new(t);
            master.tick(now, xbar, &mut arena);
            xbar.tick(now, dram, &arena);
            for r in dram.tick(now, &mut arena) {
                master.on_response(r, now);
            }
            if master.is_done() && dram.is_idle() {
                break;
            }
        }
    }

    #[test]
    fn sequential_source_advances_and_terminates() {
        let mut s = SequentialSource::reads(0, 64, 3);
        let a = s.next_request(Cycle::ZERO).unwrap();
        let b = s.next_request(Cycle::ZERO).unwrap();
        let c = s.next_request(Cycle::ZERO).unwrap();
        assert_eq!([a.addr, b.addr, c.addr], [0, 64, 128]);
        assert_eq!(a.beats, 4);
        assert!(s.next_request(Cycle::ZERO).is_none());
        assert!(s.is_done());
        assert_eq!(s.issued(), 3);
    }

    #[test]
    fn boxed_source_delegates() {
        let mut s: Box<dyn TrafficSource> = Box::new(SequentialSource::reads(0, 64, 1));
        assert!(s.next_request(Cycle::ZERO).is_some());
        assert!(s.next_request(Cycle::ZERO).is_none());
        assert!(s.is_done());
    }

    #[test]
    fn sequential_source_gap_spaces_issues() {
        let mut s = SequentialSource::reads(0, 64, 10).with_gap(100);
        let a = s.next_request(Cycle::new(5)).unwrap();
        let b = s.next_request(Cycle::new(5)).unwrap();
        assert_eq!(a.not_before.get(), 5);
        assert_eq!(b.not_before.get(), 105);
    }

    #[test]
    fn sequential_source_footprint_wraps() {
        let mut s = SequentialSource::writes(0x1000, 64, 10).with_footprint(128);
        let addrs: Vec<u64> = (0..4)
            .map(|_| s.next_request(Cycle::ZERO).unwrap().addr)
            .collect();
        assert_eq!(addrs, [0x1000, 0x1040, 0x1000, 0x1040]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn sequential_source_rejects_partial_beats() {
        let _ = SequentialSource::reads(0, 50, 1);
    }

    #[test]
    #[should_panic(expected = "maximum burst")]
    fn sequential_source_rejects_oversized_txn() {
        let _ = SequentialSource::reads(0, 8192, 1);
    }

    #[test]
    fn master_completes_fixed_workload() {
        let (mut xbar, mut dram) = harness();
        let mut m = Master::new(
            MasterId::new(0),
            "m0",
            MasterKind::Cpu,
            Box::new(SequentialSource::reads(0, 256, 20)),
            Box::new(OpenGate),
            2,
        );
        run(&mut m, &mut xbar, &mut dram, 100_000);
        assert!(m.is_done());
        assert_eq!(m.stats().completed_txns, 20);
        assert_eq!(m.stats().bytes_completed, 20 * 256);
        assert_eq!(m.stats().latency.count(), 20);
        assert!(m.stats().latency.min() > 0);
    }

    #[test]
    fn outstanding_limit_respected() {
        let (mut xbar, mut dram) = harness();
        let mut m = Master::new(
            MasterId::new(0),
            "m0",
            MasterKind::Accelerator,
            Box::new(SequentialSource::reads(0, 4096, u64::MAX)),
            Box::new(OpenGate),
            3,
        );
        let mut arena = TxnArena::new();
        for t in 0..5_000u64 {
            let now = Cycle::new(t);
            m.tick(now, &mut xbar, &mut arena);
            assert!(m.in_flight() <= 3);
            xbar.tick(now, &mut dram, &arena);
            for r in dram.tick(now, &mut arena) {
                m.on_response(r, now);
            }
        }
        assert!(m.stats().completed_txns > 0);
    }

    #[test]
    fn think_time_throttles_closed_loop() {
        // With a large think time the master's throughput is bounded by
        // 1 txn per (latency + think) cycles.
        let (mut xbar, mut dram) = harness();
        let mut m = Master::new(
            MasterId::new(0),
            "cpu",
            MasterKind::Cpu,
            Box::new(SequentialSource::reads(0, 64, u64::MAX).with_think_time(1_000)),
            Box::new(OpenGate),
            1,
        );
        let mut arena = TxnArena::new();
        for t in 0..20_000u64 {
            let now = Cycle::new(t);
            m.tick(now, &mut xbar, &mut arena);
            xbar.tick(now, &mut dram, &arena);
            for r in dram.tick(now, &mut arena) {
                m.on_response(r, now);
            }
        }
        let n = m.stats().completed_txns;
        assert!(
            (15..=21).contains(&n),
            "closed-loop rate off: {n} txns in 20k cycles"
        );
    }

    #[test]
    fn gate_denial_counts_stall_cycles() {
        struct DenyAll;
        impl PortGate for DenyAll {
            fn try_accept(&mut self, _r: &Request, _n: Cycle) -> GateDecision {
                GateDecision::Deny
            }
        }
        let (mut xbar, mut dram) = harness();
        let mut m = Master::new(
            MasterId::new(0),
            "m0",
            MasterKind::Cpu,
            Box::new(SequentialSource::reads(0, 64, 1)),
            Box::new(DenyAll),
            1,
        );
        run(&mut m, &mut xbar, &mut dram, 100);
        assert_eq!(m.stats().issued_txns, 0);
        assert!(m.stats().gate_stall_cycles >= 99);
    }

    #[test]
    #[should_panic(expected = "wrong master")]
    fn response_for_wrong_master_panics() {
        let mut m = Master::new(
            MasterId::new(0),
            "m0",
            MasterKind::Cpu,
            Box::new(SequentialSource::reads(0, 64, 1)),
            Box::new(OpenGate),
            1,
        );
        let req = Request::new(MasterId::new(1), 0, 0, 1, Dir::Read, Cycle::ZERO);
        let resp = Response {
            request: req,
            completed_at: Cycle::new(10),
        };
        m.on_response(&resp, Cycle::new(10));
    }
}
