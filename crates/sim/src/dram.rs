//! Banked DRAM controller with open-row policy, FR-FCFS scheduling and a
//! shared data bus.
//!
//! The model reproduces the three mechanisms through which co-running
//! masters interfere on a real Zynq-class DDR controller:
//!
//! 1. **Queueing** — a finite request queue shared by all masters; a
//!    latency-sensitive request arriving behind a burst of DMA traffic
//!    waits for it.
//! 2. **Bank/row locality** — per-bank open-row state; a row hit costs
//!    `tCL`, a miss pays `tRP + tRCD + tCL`. Interleaved streams destroy
//!    each other's row locality.
//! 3. **Data-bus occupancy** — every transaction occupies the shared data
//!    bus for one cycle per beat; long DMA bursts delay everyone.
//!
//! Scheduling is First-Ready FCFS with a configurable *row-hit streak cap*
//! so that hit-first reordering cannot starve older requests indefinitely
//! (as in real controllers).

use crate::arena::{TxnArena, TxnId};
use crate::axi::{Dir, Response};
use crate::stats::LatencyStats;
use crate::time::Cycle;
use std::collections::VecDeque;

/// A window of densified refresh: between `start` (inclusive) and `end`
/// (exclusive) refreshes recur every `interval` cycles instead of every
/// `t_refi`.
///
/// Storms model worst-case refresh interference (high-temperature
/// derating, per-bank refresh pile-ups): each refresh still blocks all
/// banks for `t_rfc` cycles, so an `interval` close to `t_rfc` starves
/// the device for the storm's duration. Declared in scenarios via the
/// `refresh_storm` fault directive (see `docs/scenario-format.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshStorm {
    /// First cycle of the storm window.
    pub start: u64,
    /// First cycle after the storm window.
    pub end: u64,
    /// Refresh-to-refresh spacing inside the window, in cycles.
    pub interval: u64,
}

/// Timing and geometry parameters of the DRAM model.
///
/// Defaults approximate a DDR4-2400 device behind a 1 GHz controller
/// clock, with a 16-byte data bus (one beat per cycle).
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Number of banks (bank groups are not modelled separately).
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Precharge latency in cycles (tRP).
    pub t_rp: u64,
    /// Activate-to-CAS latency in cycles (tRCD).
    pub t_rcd: u64,
    /// CAS latency in cycles (tCL).
    pub t_cl: u64,
    /// Shared request-queue capacity.
    pub queue_capacity: usize,
    /// Maximum number of consecutive younger row hits that may bypass the
    /// oldest request (FR-FCFS starvation bound).
    pub row_hit_cap: u32,
    /// Refresh interval in cycles (tREFI); 0 disables refresh.
    pub t_refi: u64,
    /// Refresh duration in cycles (tRFC).
    pub t_rfc: u64,
    /// Fixed request/response transport latency added to every
    /// transaction (interconnect forwarding + response return).
    pub transport_latency: u64,
    /// How far ahead of `bus_free` the scheduler may pipeline the next
    /// request (cycles). Models command-queue lookahead.
    pub pipeline_lookahead: u64,
    /// Bus turnaround penalty when a read follows a write (tWTR-like).
    pub t_wtr: u64,
    /// Bus turnaround penalty when a write follows a read (tRTW-like).
    pub t_rtw: u64,
    /// Read-priority scheduling with write draining: reads are served
    /// first; writes buffer until they fill 3/4 of the queue, then drain
    /// down to 1/4 (standard controller behaviour). Off by default so the
    /// calibrated experiments keep their direction-neutral arbiter.
    pub read_priority: bool,
    /// Windows of densified refresh, sorted and non-overlapping. Empty
    /// by default; requires `t_refi != 0`.
    pub storms: Vec<RefreshStorm>,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 16,
            row_bytes: 2048,
            t_rp: 15,
            t_rcd: 15,
            t_cl: 15,
            queue_capacity: 24,
            row_hit_cap: 4,
            t_refi: 7_800,
            t_rfc: 350,
            transport_latency: 20,
            pipeline_lookahead: 48,
            t_wtr: 12,
            t_rtw: 6,
            read_priority: false,
            storms: Vec::new(),
        }
    }
}

impl DramConfig {
    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 {
            return Err("banks must be non-zero".into());
        }
        if !self.row_bytes.is_power_of_two() {
            return Err("row_bytes must be a power of two".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be non-zero".into());
        }
        if self.t_refi != 0 && self.t_rfc >= self.t_refi {
            return Err("t_rfc must be smaller than t_refi".into());
        }
        if !self.storms.is_empty() && self.t_refi == 0 {
            return Err("refresh storms require refresh to be enabled (t_refi != 0)".into());
        }
        let mut prev_end = 0u64;
        for s in &self.storms {
            if s.interval == 0 {
                return Err("refresh storm interval must be non-zero".into());
            }
            if s.start >= s.end {
                return Err("refresh storm must end after it starts".into());
            }
            if s.start < prev_end {
                return Err("refresh storms must be sorted and non-overlapping".into());
            }
            prev_end = s.end;
        }
        Ok(())
    }

    /// The cycle of the refresh following one scheduled at `fired`:
    /// `t_refi` later normally, the storm's `interval` later inside a
    /// storm window, and never skipping past the start of an upcoming
    /// storm. Only meaningful when `t_refi != 0`.
    fn next_refresh_after(&self, fired: u64) -> u64 {
        let in_storm = self
            .storms
            .iter()
            .find(|s| fired >= s.start && fired < s.end);
        let mut next = match in_storm {
            Some(s) if fired + s.interval < s.end => fired + s.interval,
            _ => fired + self.t_refi,
        };
        for s in &self.storms {
            if s.start > fired && s.start < next {
                next = s.start;
            }
        }
        next
    }

    /// Decomposes a byte address into (bank, row) coordinates.
    ///
    /// Rows are interleaved across banks at row granularity, the mapping
    /// used by Zynq US+ defaults (bank bits above column bits).
    #[inline]
    pub fn map(&self, addr: u64) -> (usize, u64) {
        let row_index = addr / self.row_bytes;
        let bank = (row_index % self.banks as u64) as usize;
        let row = row_index / self.banks as u64;
        (bank, row)
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    ready_at: Cycle,
}

/// A queued transaction: the arena handle plus copies of the fields the
/// scheduler reads every selection round, so FR-FCFS scans dense local
/// data instead of chasing arena columns per candidate.
#[derive(Debug, Clone, Copy)]
struct Queued {
    txn: TxnId,
    addr: u64,
    beats: u16,
    dir: Dir,
    arrived: Cycle,
}

#[derive(Debug, Clone, Copy)]
struct InService {
    txn: TxnId,
    complete_at: Cycle,
}

/// Aggregate counters exposed by the controller.
#[derive(Debug, Clone, Default)]
pub struct DramStats {
    /// Bytes of all *completed* transactions.
    pub bytes_completed: u64,
    /// Completed read transactions.
    pub reads: u64,
    /// Completed write transactions.
    pub writes: u64,
    /// Scheduled accesses that hit an open row.
    pub row_hits: u64,
    /// Scheduled accesses that required activate (and possibly precharge).
    pub row_misses: u64,
    /// Cycles the data bus spent transferring beats.
    pub bus_busy_cycles: u64,
    /// All-bank refresh operations performed.
    pub refreshes: u64,
    /// Distribution of cycles requests waited in the shared queue before
    /// being scheduled (the queueing component of interference).
    pub queue_wait: LatencyStats,
}

impl DramStats {
    /// Row-hit ratio over all scheduled accesses (0.0 when none).
    pub fn row_hit_ratio(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The DRAM controller: shared queue, per-bank row state, FR-FCFS
/// scheduler, shared data bus.
#[derive(Debug, Clone)]
pub struct DramController {
    cfg: DramConfig,
    queue: VecDeque<Queued>,
    banks: Vec<BankState>,
    bus_free_at: Cycle,
    last_dir: Option<Dir>,
    in_service: Vec<InService>,
    next_refresh: Cycle,
    hit_streak: u32,
    draining_writes: bool,
    // Reused completion buffer so the per-cycle tick allocates nothing.
    completed_buf: Vec<Response>,
    stats: DramStats,
}

impl DramController {
    /// Creates a controller from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DramConfig::validate`].
    pub fn new(cfg: DramConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DramConfig: {e}");
        }
        let banks = vec![
            BankState {
                open_row: None,
                ready_at: Cycle::ZERO
            };
            cfg.banks
        ];
        let next_refresh = if cfg.t_refi == 0 {
            Cycle::new(u64::MAX)
        } else {
            Cycle::new(cfg.next_refresh_after(0))
        };
        DramController {
            cfg,
            queue: VecDeque::new(),
            banks,
            bus_free_at: Cycle::ZERO,
            last_dir: None,
            in_service: Vec::new(),
            next_refresh,
            hit_streak: 0,
            draining_writes: false,
            completed_buf: Vec::new(),
            stats: DramStats::default(),
        }
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Whether the shared request queue can admit another request.
    #[inline]
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.cfg.queue_capacity
    }

    /// Current queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Admits a transaction into the shared queue, copying the fields the
    /// scheduler needs from `arena`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; callers must check [`Self::has_space`].
    pub fn enqueue(&mut self, txn: TxnId, arena: &TxnArena, now: Cycle) {
        assert!(self.has_space(), "DRAM queue overflow");
        self.queue.push_back(Queued {
            txn,
            addr: arena.addr(txn),
            beats: arena.beats(txn),
            dir: arena.dir(txn),
            arrived: now,
        });
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// FR-FCFS selection: index into `queue` of the request to schedule,
    /// or `None` when the queue is empty.
    fn select(&mut self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        let eligible_dir = self.eligible_direction();
        // Find the oldest eligible request and the first eligible row hit.
        let mut oldest: Option<usize> = None;
        let mut hit: Option<usize> = None;
        for (i, q) in self.queue.iter().enumerate() {
            if let Some(d) = eligible_dir {
                if q.dir != d {
                    continue;
                }
            }
            if oldest.is_none() {
                oldest = Some(i);
            }
            if hit.is_none() {
                let (bank, row) = self.cfg.map(q.addr);
                if self.banks[bank].open_row == Some(row) {
                    hit = Some(i);
                }
            }
            if oldest.is_some() && hit.is_some() {
                break;
            }
        }
        let oldest = oldest?;
        match hit {
            Some(i) if i != oldest && self.hit_streak < self.cfg.row_hit_cap => {
                self.hit_streak += 1;
                Some(i)
            }
            _ => {
                self.hit_streak = 0;
                Some(oldest)
            }
        }
    }

    /// Under read-priority scheduling, the direction currently eligible
    /// for service (`None` = any).
    fn eligible_direction(&mut self) -> Option<Dir> {
        if !self.cfg.read_priority {
            return None;
        }
        let writes = self.queue.iter().filter(|q| q.dir == Dir::Write).count();
        let reads = self.queue.len() - writes;
        let cap = self.cfg.queue_capacity;
        if self.draining_writes {
            if writes <= cap / 4 {
                self.draining_writes = false;
            }
        } else if writes >= cap * 3 / 4 {
            self.draining_writes = true;
        }
        if self.draining_writes && writes > 0 {
            Some(Dir::Write)
        } else if reads > 0 {
            Some(Dir::Read)
        } else if writes > 0 {
            Some(Dir::Write)
        } else {
            None
        }
    }

    /// Advances the controller by one cycle; returns transactions that
    /// completed this cycle (their arena slots are released). The returned
    /// slice borrows an internal buffer that is overwritten by the next
    /// call.
    pub fn tick(&mut self, now: Cycle, arena: &mut TxnArena) -> &[Response] {
        // 1. Collect completions.
        self.completed_buf.clear();
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].complete_at <= now {
                let s = self.in_service.swap_remove(i);
                let request = arena.take(s.txn);
                self.stats.bytes_completed += request.bytes();
                match request.dir {
                    Dir::Read => self.stats.reads += 1,
                    Dir::Write => self.stats.writes += 1,
                }
                self.completed_buf.push(Response {
                    request,
                    completed_at: s.complete_at,
                });
            } else {
                i += 1;
            }
        }

        // 2. All-bank refresh.
        if now >= self.next_refresh {
            let until = now + self.cfg.t_rfc;
            for b in &mut self.banks {
                b.ready_at = b.ready_at.max(until);
                b.open_row = None;
            }
            self.bus_free_at = self.bus_free_at.max(until);
            self.next_refresh = Cycle::new(self.cfg.next_refresh_after(self.next_refresh.get()));
            self.stats.refreshes += 1;
        }

        // 3. Schedule one request per cycle while the pipeline window has
        //    room (overlaps bank preparation with the current transfer).
        if self.bus_free_at.saturating_since(now) <= self.cfg.pipeline_lookahead {
            if let Some(idx) = self.select() {
                let q = self.queue.remove(idx).expect("selected index valid");
                self.issue(q, now);
            }
        }

        &self.completed_buf
    }

    /// Earliest cycle `>= now` at which ticking the controller can change
    /// state: the next completion, the next cycle the pipeline window
    /// admits a queued request, or the next refresh. `None` when the
    /// controller is idle with refresh disabled.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let mut wake: Option<Cycle> = None;
        let mut merge = |c: Cycle| {
            wake = Some(wake.map_or(c, |w: Cycle| w.min(c)));
        };
        for s in &self.in_service {
            merge(s.complete_at.max(now));
        }
        if !self.queue.is_empty() {
            let sched = Cycle::new(
                self.bus_free_at
                    .get()
                    .saturating_sub(self.cfg.pipeline_lookahead),
            );
            merge(sched.max(now));
        }
        if self.cfg.t_refi != 0 {
            merge(self.next_refresh.max(now));
        }
        wake
    }

    fn issue(&mut self, q: Queued, now: Cycle) {
        self.stats
            .queue_wait
            .record(now.saturating_since(q.arrived));
        let (bank_idx, row) = self.cfg.map(q.addr);
        let bank = &mut self.banks[bank_idx];
        let bank_ready = bank.ready_at.max(now);
        let (access, hit) = match bank.open_row {
            Some(open) if open == row => (self.cfg.t_cl, true),
            Some(_) => (self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cl, false),
            None => (self.cfg.t_rcd + self.cfg.t_cl, false),
        };
        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        let beats = q.beats as u64;
        // Bus turnaround when the transfer direction changes.
        let turnaround = match (self.last_dir, q.dir) {
            (Some(Dir::Write), Dir::Read) => self.cfg.t_wtr,
            (Some(Dir::Read), Dir::Write) => self.cfg.t_rtw,
            _ => 0,
        };
        self.last_dir = Some(q.dir);
        let data_start = (bank_ready + access).max(self.bus_free_at + turnaround);
        let data_end = data_start + beats;
        self.bus_free_at = data_end;
        bank.ready_at = data_end;
        bank.open_row = Some(row);
        self.stats.bus_busy_cycles += beats;
        self.in_service.push(InService {
            txn: q.txn,
            complete_at: data_end + self.cfg.transport_latency,
        });
    }

    /// True when no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_empty()
    }

    /// Feeds the controller's architectural state — queue, bank rows,
    /// bus/turnaround state, refresh schedule and statistics — into a
    /// snapshot fingerprint.
    pub fn snap(&self, h: &mut fgqos_snap::StateHasher) {
        h.section("dram");
        h.write_usize(self.queue.len());
        for q in &self.queue {
            h.write_usize(q.txn.index());
            h.write_u64(q.addr);
            h.write_u16(q.beats);
            h.write_bool(q.dir == Dir::Write);
            h.write_u64(q.arrived.get());
        }
        for b in &self.banks {
            match b.open_row {
                Some(r) => {
                    h.write_bool(true);
                    h.write_u64(r);
                }
                None => h.write_bool(false),
            }
            h.write_cycle(b.ready_at.get());
        }
        h.write_cycle(self.bus_free_at.get());
        match self.last_dir {
            Some(d) => {
                h.write_bool(true);
                h.write_bool(d == Dir::Write);
            }
            None => h.write_bool(false),
        }
        h.write_usize(self.in_service.len());
        for s in &self.in_service {
            h.write_usize(s.txn.index());
            h.write_u64(s.complete_at.get());
        }
        h.write_cycle(self.next_refresh.get());
        h.write_u32(self.hit_streak);
        h.write_bool(self.draining_writes);
        h.write_counter_u64(self.stats.bytes_completed);
        h.write_counter_u64(self.stats.reads);
        h.write_counter_u64(self.stats.writes);
        h.write_counter_u64(self.stats.row_hits);
        h.write_counter_u64(self.stats.row_misses);
        h.write_counter_u64(self.stats.bus_busy_cycles);
        h.write_counter_u64(self.stats.refreshes);
        self.stats.queue_wait.snap(h);
    }

    /// Leap constraints of the refresh schedule (see [`crate::leap`]).
    ///
    /// Regular refresh needs no horizon: `next_refresh` is a cycle field
    /// in the snapshot stream, so a verified recurrence already forces
    /// the period to a multiple of `t_refi`. Storm windows are one-shot
    /// absolute-time behavior changes — and their influence starts one
    /// refresh *early*: [`DramConfig::next_refresh_after`] clamps a
    /// successor to an upcoming storm's start, so a refresh fired after
    /// `start − t_refi` already schedules differently than translation
    /// predicts. The pre-storm horizon is therefore `start − t_refi`,
    /// and inside a storm the last in-storm refresh is scheduled at
    /// `end − interval`, after which successors revert to `t_refi`
    /// spacing. Past the last storm the schedule is
    /// translation-invariant again.
    pub(crate) fn leap_support(&self, now: Cycle) -> crate::leap::LeapSupport {
        use crate::leap::LeapSupport;
        for s in &self.cfg.storms {
            if now.get() < s.start {
                return LeapSupport::until(Cycle::new(s.start.saturating_sub(self.cfg.t_refi)));
            }
            if now.get() < s.end {
                return LeapSupport::until(Cycle::new(s.end.saturating_sub(s.interval)));
            }
        }
        LeapSupport::clear()
    }

    /// Restores the controller from a serialized snapshot stream (the
    /// decode mirror of [`DramController::snap`]). Only quiesced streams
    /// — empty request queue, nothing in service — can be loaded, since
    /// queue entries are handles into the transaction arena, which
    /// serializes no live slots. The bank count comes from the rebuilt
    /// configuration (the stream's bank records are unprefixed).
    ///
    /// # Errors
    ///
    /// Any [`fgqos_snap::SnapDecodeError`] aborts the whole load.
    pub fn snap_load(
        &mut self,
        r: &mut fgqos_snap::SnapReader<'_>,
    ) -> Result<(), fgqos_snap::SnapDecodeError> {
        use fgqos_snap::SnapDecodeError;
        r.section("dram")?;
        let at = r.position();
        let qlen = r.read_usize("dram queue length")?;
        if qlen != 0 {
            return Err(SnapDecodeError::BadValue {
                what: format!("dram queue holds {qlen} request(s); only quiesced snapshots load"),
                at,
            });
        }
        self.queue.clear();
        for b in &mut self.banks {
            b.open_row = if r.read_bool("dram bank open flag")? {
                Some(r.read_u64("dram bank open row")?)
            } else {
                None
            };
            b.ready_at = Cycle::new(r.read_u64("dram bank ready_at")?);
        }
        self.bus_free_at = Cycle::new(r.read_u64("dram bus_free_at")?);
        self.last_dir = if r.read_bool("dram last_dir flag")? {
            Some(if r.read_bool("dram last_dir")? {
                Dir::Write
            } else {
                Dir::Read
            })
        } else {
            None
        };
        let at = r.position();
        let in_service = r.read_usize("dram in-service length")?;
        if in_service != 0 {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "dram has {in_service} access(es) in service; only quiesced snapshots load"
                ),
                at,
            });
        }
        self.in_service.clear();
        self.next_refresh = Cycle::new(r.read_u64("dram next_refresh")?);
        self.hit_streak = r.read_u32("dram hit_streak")?;
        self.draining_writes = r.read_bool("dram draining_writes")?;
        self.stats.bytes_completed = r.read_u64("dram bytes_completed")?;
        self.stats.reads = r.read_u64("dram reads")?;
        self.stats.writes = r.read_u64("dram writes")?;
        self.stats.row_hits = r.read_u64("dram row_hits")?;
        self.stats.row_misses = r.read_u64("dram row_misses")?;
        self.stats.bus_busy_cycles = r.read_u64("dram bus_busy_cycles")?;
        self.stats.refreshes = r.read_u64("dram refreshes")?;
        self.stats.queue_wait.snap_load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::{Dir, MasterId, Request};

    fn cfg_no_refresh() -> DramConfig {
        DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        }
    }

    fn enq(d: &mut DramController, a: &mut TxnArena, r: Request, now: Cycle) {
        let id = a.alloc(&r);
        d.enqueue(id, a, now);
    }

    fn run_until_idle(
        d: &mut DramController,
        a: &mut TxnArena,
        start: Cycle,
    ) -> (Vec<Response>, Cycle) {
        let mut now = start;
        let mut out = Vec::new();
        #[allow(clippy::explicit_counter_loop)]
        for _ in 0..1_000_000 {
            out.extend(d.tick(now, a));
            if d.is_idle() {
                return (out, now);
            }
            now += 1;
        }
        panic!("DRAM did not drain");
    }

    fn req(master: usize, serial: u64, addr: u64, beats: u16, dir: Dir) -> Request {
        Request::new(MasterId::new(master), serial, addr, beats, dir, Cycle::ZERO)
    }

    #[test]
    fn config_validation() {
        assert!(DramConfig::default().validate().is_ok());
        assert!(DramConfig {
            banks: 0,
            ..DramConfig::default()
        }
        .validate()
        .is_err());
        assert!(DramConfig {
            row_bytes: 1000,
            ..DramConfig::default()
        }
        .validate()
        .is_err());
        assert!(DramConfig {
            queue_capacity: 0,
            ..DramConfig::default()
        }
        .validate()
        .is_err());
        assert!(DramConfig {
            t_rfc: 10_000,
            ..DramConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn storm_config_validation() {
        let storm = |start, end, interval| RefreshStorm {
            start,
            end,
            interval,
        };
        assert!(DramConfig {
            storms: vec![storm(1_000, 5_000, 400)],
            ..DramConfig::default()
        }
        .validate()
        .is_ok());
        // Storms need refresh enabled.
        assert!(DramConfig {
            t_refi: 0,
            storms: vec![storm(1_000, 5_000, 400)],
            ..DramConfig::default()
        }
        .validate()
        .is_err());
        // Zero interval, inverted window, overlap.
        assert!(DramConfig {
            storms: vec![storm(1_000, 5_000, 0)],
            ..DramConfig::default()
        }
        .validate()
        .is_err());
        assert!(DramConfig {
            storms: vec![storm(5_000, 1_000, 400)],
            ..DramConfig::default()
        }
        .validate()
        .is_err());
        assert!(DramConfig {
            storms: vec![storm(1_000, 5_000, 400), storm(4_000, 9_000, 400)],
            ..DramConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn storm_densifies_refresh_cadence() {
        let cfg = DramConfig {
            t_refi: 1_000,
            t_rfc: 50,
            storms: vec![RefreshStorm {
                start: 2_500,
                end: 3_500,
                interval: 200,
            }],
            ..DramConfig::default()
        };
        // Normal cadence up to the storm, pulled in to its start.
        assert_eq!(cfg.next_refresh_after(0), 1_000);
        assert_eq!(cfg.next_refresh_after(1_000), 2_000);
        assert_eq!(cfg.next_refresh_after(2_000), 2_500);
        // Inside the storm: every `interval`.
        assert_eq!(cfg.next_refresh_after(2_500), 2_700);
        assert_eq!(cfg.next_refresh_after(2_700), 2_900);
        // Last in-storm refresh: normal cadence resumes.
        assert_eq!(cfg.next_refresh_after(3_300), 4_300);
    }

    #[test]
    fn storm_inflates_refresh_count() {
        let mk = |storms: Vec<RefreshStorm>| {
            DramController::new(DramConfig {
                t_refi: 1_000,
                t_rfc: 50,
                storms,
                ..DramConfig::default()
            })
        };
        let mut calm = mk(vec![]);
        let mut stormy = mk(vec![RefreshStorm {
            start: 2_000,
            end: 8_000,
            interval: 100,
        }]);
        let mut a = TxnArena::new();
        for t in 0..10_000u64 {
            calm.tick(Cycle::new(t), &mut a);
            stormy.tick(Cycle::new(t), &mut a);
        }
        assert_eq!(calm.stats().refreshes, 9);
        assert!(
            stormy.stats().refreshes > 5 * calm.stats().refreshes,
            "storm should densify refreshes ({} vs {})",
            stormy.stats().refreshes,
            calm.stats().refreshes
        );
    }

    #[test]
    fn address_mapping_interleaves_banks() {
        let cfg = DramConfig::default();
        let (b0, r0) = cfg.map(0);
        let (b1, r1) = cfg.map(cfg.row_bytes);
        assert_eq!(b0, 0);
        assert_eq!(r0, 0);
        assert_eq!(b1, 1);
        assert_eq!(r1, 0);
        // Same row, different column -> same (bank, row).
        assert_eq!(cfg.map(64), (0, 0));
        // After a full stripe of banks, the row advances.
        let (b, r) = cfg.map(cfg.row_bytes * cfg.banks as u64);
        assert_eq!((b, r), (0, 1));
    }

    #[test]
    fn single_request_latency() {
        let cfg = cfg_no_refresh();
        let (t_rcd, t_cl, transport) = (cfg.t_rcd, cfg.t_cl, cfg.transport_latency);
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        enq(&mut d, &mut a, req(0, 0, 0, 4, Dir::Read), Cycle::ZERO);
        let (resps, _) = run_until_idle(&mut d, &mut a, Cycle::ZERO);
        assert_eq!(resps.len(), 1);
        // Closed bank: tRCD + tCL + 4 beats + transport.
        let expected = t_rcd + t_cl + 4 + transport;
        assert_eq!(resps[0].completed_at.get(), expected);
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().bytes_completed, 4 * crate::axi::BEAT_BYTES);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let cfg = cfg_no_refresh();
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        // Two requests to the same row: second is a hit.
        enq(&mut d, &mut a, req(0, 0, 0, 1, Dir::Read), Cycle::ZERO);
        enq(&mut d, &mut a, req(0, 1, 64, 1, Dir::Read), Cycle::ZERO);
        let (resps, _) = run_until_idle(&mut d, &mut a, Cycle::ZERO);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
        let gap_same_row = resps[1].completed_at - resps[0].completed_at;

        // Two requests to different rows in the same bank: conflict.
        let cfg = cfg_no_refresh();
        let stride = cfg.row_bytes * cfg.banks as u64; // same bank, next row
        let mut d2 = DramController::new(cfg);
        enq(&mut d2, &mut a, req(0, 0, 0, 1, Dir::Read), Cycle::ZERO);
        enq(
            &mut d2,
            &mut a,
            req(0, 1, stride, 1, Dir::Read),
            Cycle::ZERO,
        );
        let (resps2, _) = run_until_idle(&mut d2, &mut a, Cycle::ZERO);
        assert_eq!(d2.stats().row_misses, 2);
        let gap_conflict = resps2[1].completed_at - resps2[0].completed_at;
        assert!(
            gap_conflict > gap_same_row,
            "row conflict ({gap_conflict}) should be slower than hit ({gap_same_row})"
        );
    }

    #[test]
    fn fr_fcfs_prefers_row_hit_but_respects_cap() {
        let mut cfg = cfg_no_refresh();
        cfg.row_hit_cap = 2;
        let stride = cfg.row_bytes * cfg.banks as u64;
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        // Open row 0 of bank 0.
        enq(&mut d, &mut a, req(0, 0, 0, 1, Dir::Read), Cycle::ZERO);
        let (_, now) = run_until_idle(&mut d, &mut a, Cycle::ZERO);
        // Oldest request: a conflicting row. Younger requests: hits.
        enq(&mut d, &mut a, req(1, 0, stride, 1, Dir::Read), now);
        for s in 0..4u64 {
            enq(
                &mut d,
                &mut a,
                req(0, s + 1, 64 * (s + 1), 1, Dir::Read),
                now,
            );
        }
        let (resps, _) = run_until_idle(&mut d, &mut a, now);
        // With cap 2, exactly 2 hits bypass the old conflict request.
        let order: Vec<usize> = resps.iter().map(|r| r.request.master.index()).collect();
        assert_eq!(
            order[..3],
            [0, 0, 1],
            "two hits bypass, then oldest: {order:?}"
        );
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut cfg = cfg_no_refresh();
        cfg.queue_capacity = 2;
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        enq(&mut d, &mut a, req(0, 0, 0, 1, Dir::Read), Cycle::ZERO);
        assert!(d.has_space());
        enq(&mut d, &mut a, req(0, 1, 64, 1, Dir::Read), Cycle::ZERO);
        assert!(!d.has_space());
    }

    #[test]
    #[should_panic(expected = "queue overflow")]
    fn enqueue_overflow_panics() {
        let mut cfg = cfg_no_refresh();
        cfg.queue_capacity = 1;
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        enq(&mut d, &mut a, req(0, 0, 0, 1, Dir::Read), Cycle::ZERO);
        enq(&mut d, &mut a, req(0, 1, 64, 1, Dir::Read), Cycle::ZERO);
    }

    #[test]
    fn refresh_blocks_banks() {
        let mut cfg = cfg_no_refresh();
        cfg.t_refi = 100;
        cfg.t_rfc = 50;
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        // Let a refresh happen, then observe the delay it imposes.
        let mut now = Cycle::ZERO;
        for _ in 0..105 {
            d.tick(now, &mut a);
            now += 1;
        }
        assert_eq!(d.stats().refreshes, 1);
        enq(&mut d, &mut a, req(0, 0, 0, 1, Dir::Read), now);
        let (resps, _) = run_until_idle(&mut d, &mut a, now);
        // Request issued at cycle 105 must wait until refresh end (150).
        assert!(
            resps[0].completed_at.get() >= 150,
            "completion {} should be delayed past refresh end",
            resps[0].completed_at
        );
    }

    #[test]
    fn read_priority_serves_reads_before_older_writes() {
        let mut cfg = cfg_no_refresh();
        cfg.read_priority = true;
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        // An older write and a younger read to different banks.
        enq(&mut d, &mut a, req(0, 0, 0, 4, Dir::Write), Cycle::ZERO);
        enq(&mut d, &mut a, req(1, 0, 2048, 4, Dir::Read), Cycle::ZERO);
        let (resps, _) = run_until_idle(&mut d, &mut a, Cycle::ZERO);
        assert_eq!(
            resps[0].request.dir,
            Dir::Read,
            "read must bypass the older write"
        );
        assert_eq!(resps[1].request.dir, Dir::Write);
    }

    #[test]
    fn write_drain_engages_when_writes_pile_up() {
        let mut cfg = cfg_no_refresh();
        cfg.read_priority = true;
        cfg.queue_capacity = 8;
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        // Fill 6/8 slots with writes (>= 3/4 watermark) plus one read.
        for s in 0..6u64 {
            enq(
                &mut d,
                &mut a,
                req(0, s, s * 4096, 4, Dir::Write),
                Cycle::ZERO,
            );
        }
        enq(
            &mut d,
            &mut a,
            req(1, 0, 1 << 20, 4, Dir::Read),
            Cycle::ZERO,
        );
        let (resps, _) = run_until_idle(&mut d, &mut a, Cycle::ZERO);
        // Drain mode: writes are served down to the low watermark before
        // the read gets the bus.
        let read_pos = resps
            .iter()
            .position(|r| r.request.dir == Dir::Read)
            .unwrap();
        assert!(
            read_pos >= 4,
            "drain should serve several writes before the read, got position {read_pos}"
        );
    }

    #[test]
    fn direction_neutral_default_unchanged() {
        let cfg = cfg_no_refresh();
        assert!(!cfg.read_priority);
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        enq(&mut d, &mut a, req(0, 0, 0, 4, Dir::Write), Cycle::ZERO);
        enq(&mut d, &mut a, req(1, 0, 2048, 4, Dir::Read), Cycle::ZERO);
        let (resps, _) = run_until_idle(&mut d, &mut a, Cycle::ZERO);
        assert_eq!(
            resps[0].request.dir,
            Dir::Write,
            "FCFS order without read priority"
        );
    }

    #[test]
    fn bus_serializes_bursts() {
        let cfg = cfg_no_refresh();
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        // Two max-locality requests to different banks: bank prep overlaps
        // but data beats serialize on the bus.
        enq(&mut d, &mut a, req(0, 0, 0, 64, Dir::Read), Cycle::ZERO);
        enq(&mut d, &mut a, req(1, 0, 2048, 64, Dir::Read), Cycle::ZERO);
        let (resps, _) = run_until_idle(&mut d, &mut a, Cycle::ZERO);
        let delta = resps[1].completed_at - resps[0].completed_at;
        assert!(
            delta >= 64,
            "second burst must wait for 64 bus beats, got {delta}"
        );
        assert_eq!(d.stats().bus_busy_cycles, 128);
    }

    #[test]
    fn throughput_approaches_bus_rate_for_streaming() {
        // A long stream of row-friendly max bursts should achieve close to
        // 1 beat/cycle.
        let cfg = cfg_no_refresh();
        let mut d = DramController::new(cfg);
        let mut a = TxnArena::new();
        let mut now = Cycle::ZERO;
        let mut addr = 0u64;
        let mut sent = 0;
        let total = 200;
        let mut completed = 0;
        while completed < total {
            if sent < total && d.has_space() {
                enq(&mut d, &mut a, req(0, sent, addr, 128, Dir::Read), now);
                addr += 128 * crate::axi::BEAT_BYTES;
                sent += 1;
            }
            completed += d.tick(now, &mut a).len() as u64;
            now += 1;
        }
        let beats = 200 * 128;
        let efficiency = beats as f64 / now.get() as f64;
        assert!(
            efficiency > 0.85,
            "streaming efficiency too low: {efficiency}"
        );
    }
}
