//! Port gating: the attachment point for QoS regulators.
//!
//! On the real FPGA, the paper's regulator IP sits between an
//! accelerator's AXI master port and the system interconnect and gates the
//! address-channel handshake. In the simulator, every master owns a
//! [`PortGate`]; the master consults it each cycle before pushing a staged
//! request into its interconnect port.
//!
//! The `fgqos-core` crate implements the paper's tightly-coupled regulator
//! on this trait; `fgqos-baselines` implements MemGuard-style software
//! regulation and PREM-style TDMA on the same seam, which makes the
//! schemes directly comparable.

use crate::axi::{Request, Response};
use crate::leap::LeapSupport;
use crate::metrics::MetricsRegistry;
use crate::time::Cycle;
use fgqos_snap::{ForkCtx, SnapDecodeError, SnapReader, StateHasher};

/// Outcome of presenting a request to a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// The request may enter the interconnect this cycle. The gate has
    /// debited any budget it keeps.
    Accept,
    /// The request is stalled; the master must retry on a later cycle.
    Deny,
}

impl GateDecision {
    /// Returns `true` for [`GateDecision::Accept`].
    #[inline]
    pub fn is_accept(self) -> bool {
        matches!(self, GateDecision::Accept)
    }
}

/// A per-port admission gate.
///
/// Implementations must be *monotonic within a cycle*: once `try_accept`
/// returns [`GateDecision::Accept`] for a request, the caller will issue
/// that request in the same cycle (the master guarantees interconnect FIFO
/// space before consulting the gate), so accounting done in `try_accept`
/// is final.
///
/// # Fast-forward contract
///
/// The simulator skips cycles in which no component can change state
/// (see [`Soc::step`](crate::system::Soc)). Two hooks keep gated runs
/// bit-identical to naive cycle-by-cycle stepping:
///
/// * [`PortGate::next_activity`] reports the earliest cycle `>= now` at
///   which the gate's admission decision or externally visible state
///   (telemetry registers, window counters) can change *on its own* —
///   that is, assuming no request is accepted and no completion arrives
///   in between, since both of those execute a full cycle anyway. The
///   default is `Some(now)`, which declares "I may change every cycle"
///   and disables skipping for the owning master — always safe.
/// * [`PortGate::on_denied_skip`] replicates the per-cycle accounting a
///   denying gate would have done over `cycles` skipped retry cycles
///   (stall counters, status registers). Any gate that returns a
///   `next_activity` later than `now` while it is denying must implement
///   it; the default is a no-op.
pub trait PortGate {
    /// Called once per simulation cycle before any admission attempt.
    ///
    /// Under fast-forward this is only invoked at *executed* cycles, so
    /// periodic work must catch up over gaps (e.g. roll every elapsed
    /// window, not just one).
    fn on_cycle(&mut self, _now: Cycle) {}

    /// Decides whether `request` may enter the interconnect at `now`.
    fn try_accept(&mut self, request: &Request, now: Cycle) -> GateDecision;

    /// Observes a completion on this port (for completion-based
    /// accounting schemes).
    fn on_complete(&mut self, _response: &Response, _now: Cycle) {}

    /// Earliest cycle `>= now` at which this gate can change state on its
    /// own; `None` means never (see the trait-level contract).
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Accounts for `cycles` skipped cycles during which the master
    /// would have retried a request this gate kept denying.
    fn on_denied_skip(&mut self, _cycles: u64) {}

    /// Declares whether (and under what constraints) the clock may leap
    /// over a detected steady-state period while this gate regulates the
    /// port. The default denies: a gate opts in only when its admission
    /// behavior depends on nothing but its snapshotted state and the
    /// constraints it states here (e.g. a TDMA gate reads `now % frame`
    /// and must stay denied).
    fn leap_support(&self, _now: Cycle) -> LeapSupport {
        LeapSupport::deny()
    }

    /// Short human-readable label for reports.
    fn label(&self) -> &'static str {
        "gate"
    }

    /// Registers this gate's telemetry into `registry` under `prefix`
    /// (e.g. `soc.master.dma0.gate`).
    ///
    /// Called only when a caller snapshots metrics (pull-based, see
    /// [`crate::metrics`]); the default registers nothing, so stateless
    /// gates cost nothing. Regulators should expose their configured
    /// budget/period and accumulated counters here with stable names.
    fn collect_metrics(&self, _prefix: &str, _registry: &mut MetricsRegistry) {}

    /// Deep-copies this gate for a forked run, remapping shared handles
    /// (register files, aggregate budget state) through `ctx`.
    ///
    /// Returning `None` — the default — declares the gate unforkable and
    /// makes [`Soc::snapshot`](crate::system::Soc::snapshot) fail with
    /// [`fgqos_snap::SnapshotError::Unforkable`]. Forkable gates must
    /// copy *every* field that influences future decisions, so a forked
    /// run is bit-identical to continuing the original.
    fn fork_gate(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn PortGate>> {
        None
    }

    /// Feeds this gate's architectural state into a snapshot fingerprint.
    ///
    /// The default writes only the label, which is sufficient for
    /// stateless gates; stateful gates must hash every field covered by
    /// [`PortGate::fork_gate`].
    fn snap_state(&self, h: &mut StateHasher) {
        h.section(self.label());
    }

    /// Restores this gate's architectural state from a serialized
    /// snapshot stream, reading exactly the fields
    /// [`PortGate::snap_state`] wrote, in the same order.
    ///
    /// The default refuses: gate kinds that never opted into persistence
    /// surface a diagnostic [`SnapDecodeError::Unsupported`] instead of
    /// silently desynchronizing the stream.
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`] aborts the whole load.
    fn snap_load(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        Err(SnapDecodeError::unsupported(self.label()))
    }
}

impl PortGate for Box<dyn PortGate> {
    fn on_cycle(&mut self, now: Cycle) {
        self.as_mut().on_cycle(now);
    }

    fn try_accept(&mut self, request: &Request, now: Cycle) -> GateDecision {
        self.as_mut().try_accept(request, now)
    }

    fn on_complete(&mut self, response: &Response, now: Cycle) {
        self.as_mut().on_complete(response, now);
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        self.as_ref().next_activity(now)
    }

    fn on_denied_skip(&mut self, cycles: u64) {
        self.as_mut().on_denied_skip(cycles);
    }

    fn leap_support(&self, now: Cycle) -> LeapSupport {
        self.as_ref().leap_support(now)
    }

    fn label(&self) -> &'static str {
        self.as_ref().label()
    }

    fn collect_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        self.as_ref().collect_metrics(prefix, registry);
    }

    fn fork_gate(&self, ctx: &mut ForkCtx) -> Option<Box<dyn PortGate>> {
        self.as_ref().fork_gate(ctx)
    }

    fn snap_state(&self, h: &mut StateHasher) {
        self.as_ref().snap_state(h);
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        self.as_mut().snap_load(r)
    }
}

/// A gate that admits everything: the unregulated baseline.
///
/// ```
/// use fgqos_sim::gate::{GateDecision, OpenGate, PortGate};
/// use fgqos_sim::axi::{Dir, MasterId, Request};
/// use fgqos_sim::time::Cycle;
///
/// let mut g = OpenGate;
/// let r = Request::new(MasterId::new(0), 0, 0, 1, Dir::Read, Cycle::ZERO);
/// assert_eq!(g.try_accept(&r, Cycle::ZERO), GateDecision::Accept);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenGate;

impl PortGate for OpenGate {
    fn try_accept(&mut self, _request: &Request, _now: Cycle) -> GateDecision {
        GateDecision::Accept
    }

    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn leap_support(&self, _now: Cycle) -> LeapSupport {
        LeapSupport::clear()
    }

    fn label(&self) -> &'static str {
        "open"
    }

    fn fork_gate(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn PortGate>> {
        Some(Box::new(*self))
    }

    fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapDecodeError> {
        // Stateless: the stream carries only the section tag.
        r.section("open")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::{Dir, MasterId, Request};

    #[test]
    fn open_gate_always_accepts() {
        let mut g = OpenGate;
        for i in 0..100 {
            let r = Request::new(MasterId::new(0), i, i * 64, 4, Dir::Write, Cycle::new(i));
            assert!(g.try_accept(&r, Cycle::new(i)).is_accept());
        }
        assert_eq!(g.label(), "open");
    }

    #[test]
    fn boxed_gate_delegates() {
        let mut g: Box<dyn PortGate> = Box::new(OpenGate);
        let r = Request::new(MasterId::new(0), 0, 0, 1, Dir::Read, Cycle::ZERO);
        g.on_cycle(Cycle::ZERO);
        assert!(g.try_accept(&r, Cycle::ZERO).is_accept());
        assert_eq!(g.label(), "open");
    }

    #[test]
    fn decision_predicates() {
        assert!(GateDecision::Accept.is_accept());
        assert!(!GateDecision::Deny.is_accept());
    }
}
