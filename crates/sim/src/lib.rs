//! # fgqos-sim — cycle-level FPGA HeSoC memory-subsystem simulator
//!
//! This crate is the *substrate* for the `fgqos` reproduction of
//! "Fine-Grained QoS Control via Tightly-Coupled Bandwidth Monitoring and
//! Regulation for FPGA-based Heterogeneous SoCs" (DAC 2023). It models the
//! shared memory path of a Zynq UltraScale+-class heterogeneous SoC:
//!
//! * an AXI-like transaction fabric ([`axi`]) with bursts, independent
//!   read/write traffic and per-master outstanding-transaction limits,
//! * a multi-port crossbar [`interconnect`] with round-robin or
//!   fixed-priority arbitration,
//! * a banked [`dram`] controller with open-row state, FR-FCFS scheduling
//!   and a shared data bus,
//! * [`master`] models that replay traffic from pluggable
//!   [`TrafficSource`]s (CPU-like latency-sensitive actors, DMA-like
//!   bandwidth-hungry accelerators),
//! * per-port [`PortGate`] hooks where QoS regulators attach — this is the
//!   exact seam where the paper's tightly-coupled regulator IP sits on the
//!   real FPGA,
//! * bandwidth / latency [`stats`] collection.
//!
//! The simulation is a deterministic, single-clock-domain, cycle-stepped
//! model. It is not a DRAM-vendor-accurate timing model; it reproduces the
//! three mechanisms that create memory interference on the real chip
//! (arbitration, bank/row locality, data-bus occupancy), which is what the
//! paper's experiments exercise.
//!
//! ## Quickstart
//!
//! ```
//! use fgqos_sim::prelude::*;
//!
//! // A two-master SoC: one latency-sensitive reader, one greedy writer.
//! let mut soc = SocBuilder::new(SocConfig::default())
//!     .master(
//!         "critical",
//!         SequentialSource::reads(0x0000_0000, 256, 4096).with_gap(200),
//!         MasterKind::Cpu,
//!     )
//!     .master(
//!         "interferer",
//!         SequentialSource::writes(0x4000_0000, 256, u64::MAX),
//!         MasterKind::Accelerator,
//!     )
//!     .build();
//! soc.run(100_000);
//! let stats = soc.master_stats(MasterId::new(0));
//! assert!(stats.completed_txns > 0);
//! ```
//!
//! ## Observability
//!
//! Every run can be inspected without instrumenting the hot path:
//! [`metrics`] pulls a named snapshot of all component counters,
//! [`stats`] records per-window time series, and [`trace`] captures
//! per-event logs exportable to Chrome/Perfetto. See
//! `docs/observability.md` for the naming scheme and walkthroughs.

#![warn(missing_docs)]

pub mod arena;
pub mod axi;
pub mod calendar;
pub mod cpu;
pub mod dram;
pub mod gate;
pub mod interconnect;
pub mod json;
pub mod leap;
pub mod master;
pub mod metrics;
pub mod snapshot;
pub mod stats;
pub mod system;
pub mod time;
pub mod trace;

pub use arena::{TxnArena, TxnId};
pub use axi::{Dir, MasterId, Request, Response, BEAT_BYTES, MAX_BURST_BEATS};
pub use calendar::EventCalendar;
pub use cpu::{Cache, CacheConfig, CacheOutcome, CacheStats, CachedSource};
pub use dram::{DramConfig, DramController, DramStats, RefreshStorm};
pub use gate::{GateDecision, OpenGate, PortGate};
pub use interconnect::{Arbitration, XbarConfig};
pub use leap::{LeapSupport, LeapTelemetry};
pub use master::{
    Master, MasterKind, MasterStats, PendingRequest, SequentialSource, TrafficSource,
};
pub use metrics::{HistogramSnapshot, MetricValue, MetricsRegistry};
pub use snapshot::{SocSnapshot, SNAPSHOT_VERSION};
pub use stats::{BandwidthMeter, LatencyStats, WindowLatency, WindowRecorder};
pub use system::{Controller, Soc, SocBuilder, SocConfig, WindowBoundary};
pub use time::{Bandwidth, Cycle, Freq};
pub use trace::{ChromeTraceBuilder, Trace, TraceEvent, TracingGate};

// Snapshot building blocks, re-exported so downstream crates implement the
// fork/snap seams without depending on `fgqos-snap` directly.
pub use fgqos_snap::{
    BlobStore, CowVec, ForkCtx, SharedFork, SnapDecodeError, SnapReader, SnapshotBlob,
    SnapshotError, StateHasher, TypedSnapshot,
};

/// Commonly used items, intended for glob import in examples and tests.
pub mod prelude {
    pub use crate::axi::{Dir, MasterId, Request, Response, BEAT_BYTES};
    pub use crate::cpu::{Cache, CacheConfig, CachedSource};
    pub use crate::dram::{DramConfig, RefreshStorm};
    pub use crate::gate::{GateDecision, OpenGate, PortGate};
    pub use crate::interconnect::{Arbitration, XbarConfig};
    pub use crate::leap::{LeapSupport, LeapTelemetry};
    pub use crate::master::{
        MasterKind, MasterStats, PendingRequest, SequentialSource, TrafficSource,
    };
    pub use crate::metrics::{MetricValue, MetricsRegistry};
    pub use crate::snapshot::{SocSnapshot, SNAPSHOT_VERSION};
    pub use crate::stats::{BandwidthMeter, LatencyStats};
    pub use crate::system::{Controller, Soc, SocBuilder, SocConfig};
    pub use crate::time::{Bandwidth, Cycle, Freq};
    pub use crate::trace::{Trace, TracingGate};
}
