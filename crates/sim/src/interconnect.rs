//! Multi-master crossbar interconnect.
//!
//! Models the PS/PL AXI port aggregation of a Zynq-class SoC: each master
//! owns an ingress FIFO; one request per cycle is forwarded to the DRAM
//! controller, selected by round-robin or fixed-priority arbitration.

use crate::arena::{TxnArena, TxnId};
use crate::axi::MasterId;
use crate::dram::DramController;
use crate::time::Cycle;
use std::collections::VecDeque;

/// Arbitration policy between master ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// Fair rotation between ports with pending requests (default; this is
    /// the policy of the Zynq US+ PS interconnect ports).
    #[default]
    RoundRobin,
    /// Lower master index always wins. Models AXI QoS signalling with
    /// statically assigned priorities.
    FixedPriority,
    /// Smooth weighted round-robin over [`XbarConfig::weights`]. Models
    /// AXI QoS *weighting*: shares bandwidth proportionally but — unlike
    /// regulation — puts no bound on what a backlogged port receives
    /// when others idle, and no bound on burst interleaving.
    WeightedRoundRobin,
}

impl Arbitration {
    /// Stable lower-case name used in metric exports.
    pub fn label(self) -> &'static str {
        match self {
            Arbitration::RoundRobin => "round_robin",
            Arbitration::FixedPriority => "fixed_priority",
            Arbitration::WeightedRoundRobin => "weighted_round_robin",
        }
    }
}

/// Crossbar parameters.
#[derive(Debug, Clone)]
pub struct XbarConfig {
    /// Depth of each per-master ingress FIFO.
    pub port_fifo_depth: usize,
    /// Arbitration policy.
    pub arbitration: Arbitration,
    /// Per-port weights for [`Arbitration::WeightedRoundRobin`]; empty
    /// means every port weighs 1. Ignored by the other policies.
    pub weights: Vec<u32>,
}

impl Default for XbarConfig {
    fn default() -> Self {
        XbarConfig {
            port_fifo_depth: 4,
            arbitration: Arbitration::RoundRobin,
            weights: Vec::new(),
        }
    }
}

/// The crossbar: per-port FIFOs plus an arbiter towards the DRAM queue.
///
/// Port FIFOs hold [`TxnId`] handles into the SoC's transaction arena,
/// so a queued transaction is one machine word and forwarding copies no
/// payload.
#[derive(Debug, Clone)]
pub struct Crossbar {
    cfg: XbarConfig,
    ports: Vec<VecDeque<TxnId>>,
    // Total entries across all port FIFOs, so backlog checks are O(1).
    queued: usize,
    rr_next: usize,
    weights: Vec<u32>,
    swrr_credit: Vec<i64>,
    // Reused across arbitration rounds so the per-cycle scan allocates
    // nothing.
    swrr_scratch: Vec<usize>,
}

impl Crossbar {
    /// Creates a crossbar with `ports` master ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero or the FIFO depth is zero.
    pub fn new(cfg: XbarConfig, ports: usize) -> Self {
        assert!(ports > 0, "crossbar needs at least one port");
        assert!(cfg.port_fifo_depth > 0, "port FIFO depth must be non-zero");
        let weights: Vec<u32> = if cfg.weights.is_empty() {
            vec![1; ports]
        } else {
            assert_eq!(cfg.weights.len(), ports, "one weight per port required");
            assert!(
                cfg.weights.iter().all(|&w| w > 0),
                "weights must be non-zero"
            );
            cfg.weights.clone()
        };
        Crossbar {
            cfg,
            ports: (0..ports).map(|_| VecDeque::new()).collect(),
            queued: 0,
            rr_next: 0,
            swrr_credit: vec![0; ports],
            swrr_scratch: Vec::with_capacity(ports),
            weights,
        }
    }

    /// Number of master ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The configuration this crossbar was built with.
    pub fn config(&self) -> &XbarConfig {
        &self.cfg
    }

    /// Whether `master`'s ingress FIFO can admit another request.
    #[inline]
    pub fn has_space(&self, master: MasterId) -> bool {
        self.ports[master.index()].len() < self.cfg.port_fifo_depth
    }

    /// Occupancy of `master`'s ingress FIFO.
    pub fn port_len(&self, master: MasterId) -> usize {
        self.ports[master.index()].len()
    }

    /// Total entries queued across all port FIFOs.
    #[inline]
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Pushes a transaction handle into `master`'s ingress FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full; callers must check [`Self::has_space`].
    pub fn push(&mut self, txn: TxnId, master: MasterId) {
        let port = &mut self.ports[master.index()];
        assert!(port.len() < self.cfg.port_fifo_depth, "port FIFO overflow");
        port.push_back(txn);
        self.queued += 1;
    }

    /// Smooth weighted round-robin: every backlogged port gains its
    /// weight in credit; the richest port wins and pays the total weight
    /// of the backlogged set.
    fn swrr_pick(&mut self) -> Option<usize> {
        let mut backlogged = std::mem::take(&mut self.swrr_scratch);
        backlogged.clear();
        backlogged.extend((0..self.ports.len()).filter(|&p| !self.ports[p].is_empty()));
        if backlogged.is_empty() {
            self.swrr_scratch = backlogged;
            return None;
        }
        let mut total = 0i64;
        for &p in &backlogged {
            self.swrr_credit[p] += self.weights[p] as i64;
            total += self.weights[p] as i64;
        }
        let winner = backlogged
            .iter()
            .copied()
            .max_by_key(|&p| self.swrr_credit[p])
            .expect("backlogged set non-empty");
        self.swrr_credit[winner] -= total;
        self.swrr_scratch = backlogged;
        Some(winner)
    }

    /// Earliest cycle `>= now` at which the crossbar can change state on
    /// its own: any backlogged ingress FIFO may forward a request as soon
    /// as the DRAM queue has space, so a non-empty crossbar reports
    /// activity every cycle; an empty one only moves when a master pushes
    /// (which executes a cycle anyway).
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.queued > 0 {
            Some(now)
        } else {
            None
        }
    }

    /// Feeds the crossbar's architectural state — FIFO contents,
    /// arbitration cursor and weighted-round-robin credit — into a
    /// snapshot fingerprint.
    pub fn snap(&self, h: &mut fgqos_snap::StateHasher) {
        h.section("xbar");
        h.write_str(self.cfg.arbitration.label());
        h.write_usize(self.cfg.port_fifo_depth);
        h.write_usize(self.ports.len());
        for port in &self.ports {
            h.write_usize(port.len());
            for id in port {
                h.write_usize(id.index());
            }
        }
        h.write_usize(self.queued);
        h.write_usize(self.rr_next);
        for &w in &self.weights {
            h.write_u32(w);
        }
        for &c in &self.swrr_credit {
            h.write_u64(c as u64);
        }
    }

    /// Restores the crossbar from a serialized snapshot stream (the
    /// decode mirror of [`Crossbar::snap`]). Configuration-derived
    /// fields — arbitration policy, FIFO depth, port count, weights —
    /// are verified against the rebuilt skeleton; only quiesced streams
    /// (empty FIFOs) can be loaded, because FIFO entries are handles
    /// into the transaction arena, which serializes no live slots.
    ///
    /// # Errors
    ///
    /// Any [`fgqos_snap::SnapDecodeError`] aborts the whole load.
    pub fn snap_load(
        &mut self,
        r: &mut fgqos_snap::SnapReader<'_>,
    ) -> Result<(), fgqos_snap::SnapDecodeError> {
        use fgqos_snap::SnapDecodeError;
        r.section("xbar")?;
        let at = r.position();
        let arb = r.read_str("xbar arbitration")?;
        if arb != self.cfg.arbitration.label() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "xbar arbitration {arb:?} in stream, skeleton has {:?}",
                    self.cfg.arbitration.label()
                ),
                at,
            });
        }
        let at = r.position();
        let depth = r.read_usize("xbar port_fifo_depth")?;
        if depth != self.cfg.port_fifo_depth {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "xbar FIFO depth {depth} in stream, skeleton has {}",
                    self.cfg.port_fifo_depth
                ),
                at,
            });
        }
        let at = r.position();
        let nports = r.read_usize("xbar port count")?;
        if nports != self.ports.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "xbar has {nports} port(s) in stream, skeleton has {}",
                    self.ports.len()
                ),
                at,
            });
        }
        for (p, port) in self.ports.iter_mut().enumerate() {
            let at = r.position();
            let len = r.read_usize("xbar port FIFO length")?;
            if len != 0 {
                return Err(SnapDecodeError::BadValue {
                    what: format!(
                        "xbar port {p} FIFO holds {len} entr(ies); only quiesced snapshots load"
                    ),
                    at,
                });
            }
            port.clear();
        }
        let at = r.position();
        let queued = r.read_usize("xbar queued")?;
        if queued != 0 {
            return Err(SnapDecodeError::BadValue {
                what: format!("xbar queued count {queued} with empty FIFOs"),
                at,
            });
        }
        self.queued = 0;
        self.rr_next = r.read_usize("xbar rr_next")?;
        for (p, w) in self.weights.iter().enumerate() {
            let at = r.position();
            let sw = r.read_u32("xbar weight")?;
            if sw != *w {
                return Err(SnapDecodeError::BadValue {
                    what: format!("xbar port {p} weight {sw} in stream, skeleton has {w}"),
                    at,
                });
            }
        }
        for c in &mut self.swrr_credit {
            *c = r.read_u64("xbar swrr credit")? as i64;
        }
        Ok(())
    }

    /// One arbitration round: forwards at most one request into the DRAM
    /// queue if it has space. Returns the port index that forwarded, so
    /// the event loop can wake the master whose FIFO gained a slot.
    pub fn tick(
        &mut self,
        now: Cycle,
        dram: &mut DramController,
        arena: &TxnArena,
    ) -> Option<usize> {
        if !dram.has_space() {
            return None;
        }
        let n = self.ports.len();
        let winner = match self.cfg.arbitration {
            Arbitration::RoundRobin => (0..n)
                .map(|k| (self.rr_next + k) % n)
                .find(|&p| !self.ports[p].is_empty()),
            Arbitration::FixedPriority => (0..n).find(|&p| !self.ports[p].is_empty()),
            Arbitration::WeightedRoundRobin => self.swrr_pick(),
        };
        if let Some(p) = winner {
            let txn = self.ports[p].pop_front().expect("winner port non-empty");
            self.queued -= 1;
            dram.enqueue(txn, arena, now);
            if matches!(self.cfg.arbitration, Arbitration::RoundRobin) {
                self.rr_next = (p + 1) % n;
            }
        }
        winner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::{Dir, Request};
    use crate::dram::DramConfig;

    fn push(x: &mut Crossbar, a: &mut TxnArena, master: usize, serial: u64) {
        let r = Request::new(
            MasterId::new(master),
            serial,
            serial * 4096,
            1,
            Dir::Read,
            Cycle::ZERO,
        );
        let id = a.alloc(&r);
        x.push(id, MasterId::new(master));
    }

    fn dram() -> DramController {
        DramController::new(DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        })
    }

    #[test]
    fn fifo_space_tracking() {
        let mut x = Crossbar::new(
            XbarConfig {
                port_fifo_depth: 2,
                ..Default::default()
            },
            2,
        );
        let mut a = TxnArena::new();
        let m0 = MasterId::new(0);
        assert!(x.has_space(m0));
        push(&mut x, &mut a, 0, 0);
        push(&mut x, &mut a, 0, 1);
        assert!(!x.has_space(m0));
        assert!(x.has_space(MasterId::new(1)));
        assert_eq!(x.port_len(m0), 2);
        assert_eq!(x.queued(), 2);
    }

    #[test]
    #[should_panic(expected = "port FIFO overflow")]
    fn push_overflow_panics() {
        let mut x = Crossbar::new(
            XbarConfig {
                port_fifo_depth: 1,
                ..Default::default()
            },
            1,
        );
        let mut a = TxnArena::new();
        push(&mut x, &mut a, 0, 0);
        push(&mut x, &mut a, 0, 1);
    }

    #[test]
    fn round_robin_alternates() {
        let mut x = Crossbar::new(XbarConfig::default(), 3);
        let mut d = dram();
        let mut a = TxnArena::new();
        for s in 0..2 {
            for m in 0..3 {
                push(&mut x, &mut a, m, s);
            }
        }
        // Drain 6 requests; round robin must rotate 0,1,2,0,1,2.
        for t in 0..6 {
            let before = d.queue_len();
            let popped = x.tick(Cycle::new(t), &mut d, &a);
            assert_eq!(d.queue_len(), before + 1);
            assert_eq!(popped, Some((t % 3) as usize));
        }
        // All ports drained evenly.
        for m in 0..3 {
            assert_eq!(x.port_len(MasterId::new(m)), 0);
        }
        assert_eq!(x.queued(), 0);
    }

    #[test]
    fn fixed_priority_prefers_low_index() {
        let mut x = Crossbar::new(
            XbarConfig {
                arbitration: Arbitration::FixedPriority,
                ..Default::default()
            },
            2,
        );
        let mut d = dram();
        let mut a = TxnArena::new();
        push(&mut x, &mut a, 1, 0);
        push(&mut x, &mut a, 0, 0);
        push(&mut x, &mut a, 0, 1);
        x.tick(Cycle::ZERO, &mut d, &a);
        x.tick(Cycle::new(1), &mut d, &a);
        // Port 0 should have been fully drained before port 1 moves.
        assert_eq!(x.port_len(MasterId::new(0)), 0);
        assert_eq!(x.port_len(MasterId::new(1)), 1);
    }

    #[test]
    fn weighted_round_robin_shares_proportionally() {
        let mut x = Crossbar::new(
            XbarConfig {
                arbitration: Arbitration::WeightedRoundRobin,
                weights: vec![3, 1],
                port_fifo_depth: 64,
            },
            2,
        );
        let mut d = DramController::new(DramConfig {
            t_refi: 0,
            queue_capacity: 1_000,
            ..DramConfig::default()
        });
        let mut a = TxnArena::new();
        for s in 0..48u64 {
            push(&mut x, &mut a, 0, s);
        }
        for s in 0..16u64 {
            push(&mut x, &mut a, 1, s);
        }
        // 32 grants: 3:1 split means port 0 gets 24, port 1 gets 8.
        for t in 0..32u64 {
            x.tick(Cycle::new(t), &mut d, &a);
        }
        assert_eq!(x.port_len(MasterId::new(0)), 48 - 24);
        assert_eq!(x.port_len(MasterId::new(1)), 16 - 8);
    }

    #[test]
    fn weighted_round_robin_gives_idle_share_away() {
        // With port 1 empty, port 0 gets every grant despite low weight.
        let mut x = Crossbar::new(
            XbarConfig {
                arbitration: Arbitration::WeightedRoundRobin,
                weights: vec![1, 7],
                port_fifo_depth: 16,
            },
            2,
        );
        let mut d = DramController::new(DramConfig {
            t_refi: 0,
            queue_capacity: 1_000,
            ..DramConfig::default()
        });
        let mut a = TxnArena::new();
        for s in 0..8u64 {
            push(&mut x, &mut a, 0, s);
        }
        for t in 0..8u64 {
            x.tick(Cycle::new(t), &mut d, &a);
        }
        assert_eq!(x.port_len(MasterId::new(0)), 0);
    }

    #[test]
    #[should_panic(expected = "one weight per port")]
    fn weight_count_must_match_ports() {
        let _ = Crossbar::new(
            XbarConfig {
                arbitration: Arbitration::WeightedRoundRobin,
                weights: vec![1, 2, 3],
                ..Default::default()
            },
            2,
        );
    }

    #[test]
    fn stalls_when_dram_full() {
        let mut d = DramController::new(DramConfig {
            t_refi: 0,
            queue_capacity: 1,
            ..DramConfig::default()
        });
        let mut x = Crossbar::new(XbarConfig::default(), 1);
        let mut a = TxnArena::new();
        push(&mut x, &mut a, 0, 0);
        push(&mut x, &mut a, 0, 1);
        x.tick(Cycle::ZERO, &mut d, &a);
        assert_eq!(d.queue_len(), 1);
        // DRAM queue full (nothing scheduled at cycle 0 tick already done):
        // second tick must not move the request.
        let before = x.port_len(MasterId::new(0));
        if !d.has_space() {
            assert_eq!(x.tick(Cycle::new(1), &mut d, &a), None);
            assert_eq!(x.port_len(MasterId::new(0)), before);
        }
    }
}
