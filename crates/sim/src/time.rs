//! Simulation time: cycles, frequencies and bandwidth quantities.
//!
//! The whole simulator runs in a single clock domain. [`Cycle`] is the
//! simulation timestamp; [`Freq`] converts cycles to wall-clock time and
//! [`Bandwidth`] expresses byte throughput so experiment harnesses never
//! juggle raw `f64`s with implicit units.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in clock cycles since reset.
///
/// `Cycle` is a transparent ordinal: arithmetic with plain `u64` cycle
/// *counts* is provided via `+`/`-` operators so call sites read naturally
/// (`now + period`).
///
/// ```
/// use fgqos_sim::time::Cycle;
/// let t = Cycle::new(100);
/// assert_eq!((t + 20).get(), 120);
/// assert_eq!(t.cycles_since(Cycle::new(40)), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The instant of simulation reset.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a timestamp at `cycles` cycles after reset.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Number of cycles elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn cycles_since(self, earlier: Cycle) -> u64 {
        debug_assert!(
            earlier.0 <= self.0,
            "cycles_since: earlier is in the future"
        );
        self.0 - earlier.0
    }

    /// Saturating cycle difference (`0` if `earlier` is in the future).
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.cycles_since(rhs)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// A clock frequency, used to convert between cycles and wall-clock time.
///
/// ```
/// use fgqos_sim::time::Freq;
/// let f = Freq::mhz(500);
/// assert_eq!(f.hz(), 500_000_000);
/// assert_eq!(f.cycles_in_us(2), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freq(u64);

impl Freq {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub const fn hz_new(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Freq(hz)
    }

    /// Creates a frequency from megahertz.
    pub const fn mhz(mhz: u64) -> Self {
        Freq::hz_new(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    pub const fn ghz(ghz: u64) -> Self {
        Freq::hz_new(ghz * 1_000_000_000)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub const fn hz(self) -> u64 {
        self.0
    }

    /// Number of clock cycles in `us` microseconds (rounded down).
    #[inline]
    pub const fn cycles_in_us(self, us: u64) -> u64 {
        self.0 / 1_000_000 * us
    }

    /// Number of clock cycles in `ns` nanoseconds (rounded down).
    #[inline]
    pub const fn cycles_in_ns(self, ns: u64) -> u64 {
        (self.0 as u128 * ns as u128 / 1_000_000_000) as u64
    }

    /// Converts a cycle count into nanoseconds (floating point).
    #[inline]
    pub fn cycles_to_ns(self, cycles: u64) -> f64 {
        cycles as f64 * 1e9 / self.0 as f64
    }

    /// Converts a cycle count into microseconds (floating point).
    #[inline]
    pub fn cycles_to_us(self, cycles: u64) -> f64 {
        cycles as f64 * 1e6 / self.0 as f64
    }
}

impl Default for Freq {
    /// The default SoC clock used throughout the experiments: 1 GHz.
    fn default() -> Self {
        Freq::ghz(1)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{} GHz", self.0 / 1_000_000_000)
        } else if self.0.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.0 / 1_000_000)
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

/// A byte throughput.
///
/// Stored in bytes/second. Constructed either directly or from a byte count
/// observed over a cycle interval at a given [`Freq`].
///
/// ```
/// use fgqos_sim::time::{Bandwidth, Freq};
/// let bw = Bandwidth::from_bytes_over(16_000, 1_000, Freq::ghz(1));
/// assert_eq!(bw.bytes_per_s(), 16_000_000_000.0);
/// assert!((bw.gib_per_s() - 14.9).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero throughput.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_s` is negative or not finite.
    pub fn from_bytes_per_s(bytes_per_s: f64) -> Self {
        assert!(
            bytes_per_s.is_finite() && bytes_per_s >= 0.0,
            "bandwidth must be finite and non-negative"
        );
        Bandwidth(bytes_per_s)
    }

    /// Creates a bandwidth from mebibytes per second.
    pub fn from_mib_per_s(mib: f64) -> Self {
        Bandwidth::from_bytes_per_s(mib * 1024.0 * 1024.0)
    }

    /// Bandwidth observed when `bytes` flow during `cycles` at clock `freq`.
    ///
    /// Returns [`Bandwidth::ZERO`] if `cycles` is zero.
    pub fn from_bytes_over(bytes: u64, cycles: u64, freq: Freq) -> Self {
        if cycles == 0 {
            return Bandwidth::ZERO;
        }
        Bandwidth(bytes as f64 * freq.hz() as f64 / cycles as f64)
    }

    /// Returns the throughput in bytes per second.
    #[inline]
    pub fn bytes_per_s(self) -> f64 {
        self.0
    }

    /// Returns the throughput in mebibytes per second.
    #[inline]
    pub fn mib_per_s(self) -> f64 {
        self.0 / (1024.0 * 1024.0)
    }

    /// Returns the throughput in gibibytes per second.
    #[inline]
    pub fn gib_per_s(self) -> f64 {
        self.0 / (1024.0 * 1024.0 * 1024.0)
    }

    /// The fraction this bandwidth represents of `total` (0 if `total` is 0).
    pub fn fraction_of(self, total: Bandwidth) -> f64 {
        if total.0 == 0.0 {
            0.0
        } else {
            self.0 / total.0
        }
    }

    /// Converts this bandwidth into a per-window byte budget.
    ///
    /// This is the arithmetic the paper's driver performs when programming
    /// the regulator: a bandwidth target plus a replenishment period yields
    /// the `BUDGET` register value (rounded down to whole bytes).
    pub fn to_window_budget(self, window_cycles: u64, freq: Freq) -> u64 {
        (self.0 * window_cycles as f64 / freq.hz() as f64) as u64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB/s", self.gib_per_s())
        } else {
            write!(f, "{:.2} MiB/s", self.mib_per_s())
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle::new(10);
        assert_eq!((t + 5).get(), 15);
        assert_eq!(Cycle::new(15) - t, 5);
        assert_eq!(t.saturating_since(Cycle::new(20)), 0);
        let mut u = t;
        u += 7;
        assert_eq!(u.get(), 17);
        assert_eq!(t.max(u), u);
    }

    #[test]
    #[should_panic]
    fn cycle_since_future_panics_in_debug() {
        let _ = Cycle::new(5).cycles_since(Cycle::new(6));
    }

    #[test]
    fn freq_conversions() {
        let f = Freq::ghz(1);
        assert_eq!(f.cycles_in_us(1), 1_000);
        assert_eq!(f.cycles_in_ns(500), 500);
        assert_eq!(f.cycles_to_ns(100), 100.0);
        let f2 = Freq::mhz(250);
        assert_eq!(f2.cycles_in_us(4), 1_000);
        assert_eq!(f2.cycles_to_us(250), 1.0);
    }

    #[test]
    fn freq_display() {
        assert_eq!(Freq::ghz(2).to_string(), "2 GHz");
        assert_eq!(Freq::mhz(333).to_string(), "333 MHz");
        assert_eq!(Freq::hz_new(1234).to_string(), "1234 Hz");
    }

    #[test]
    fn bandwidth_from_observation() {
        // 16 bytes per cycle at 1 GHz = 16 GB/s.
        let bw = Bandwidth::from_bytes_over(16_000, 1_000, Freq::ghz(1));
        assert_eq!(bw.bytes_per_s(), 16e9);
        assert_eq!(
            Bandwidth::from_bytes_over(100, 0, Freq::ghz(1)),
            Bandwidth::ZERO
        );
    }

    #[test]
    fn bandwidth_budget_roundtrip() {
        let freq = Freq::ghz(1);
        let bw = Bandwidth::from_bytes_per_s(1e9); // 1 GB/s
                                                   // 1000-cycle window at 1 GHz = 1 us -> 1000 bytes.
        assert_eq!(bw.to_window_budget(1_000, freq), 1_000);
    }

    #[test]
    fn bandwidth_fraction() {
        let half = Bandwidth::from_bytes_per_s(5e8);
        let full = Bandwidth::from_bytes_per_s(1e9);
        assert!((half.fraction_of(full) - 0.5).abs() < 1e-12);
        assert_eq!(half.fraction_of(Bandwidth::ZERO), 0.0);
    }

    #[test]
    fn bandwidth_display_units() {
        assert!(Bandwidth::from_mib_per_s(10.0)
            .to_string()
            .contains("MiB/s"));
        assert!(Bandwidth::from_mib_per_s(4096.0)
            .to_string()
            .contains("GiB/s"));
    }
}
