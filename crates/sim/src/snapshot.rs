//! Quiesced-boundary snapshot and deterministic fork of a [`Soc`].
//!
//! A [`SocSnapshot`] captures a Soc at a **quiesced boundary** — no
//! transaction in flight anywhere on the memory path — which is exactly
//! the state from which no calendar, crossbar-FIFO, DRAM-queue or
//! in-service state needs to be serialised: the event calendar is
//! rebuilt from component `next_activity` contracts at every run entry,
//! and an empty transaction arena implies every queue between master and
//! DRAM is drained. What remains is per-component architectural state
//! (sources, gates, bank rows, statistics), which every component knows
//! how to deep-copy (`fork_*`) and hash (`snap_state`).
//!
//! **Fingerprint.** [`Soc::fingerprint`] folds the full architectural
//! state through a byte-stable FNV-1a stream ([`fgqos_snap::StateHasher`])
//! prefixed by [`SNAPSHOT_VERSION`]. Two Socs with equal fingerprints
//! behave identically for the rest of the run (same future requests,
//! same decisions, same reports); the fork-vs-cold proptest in
//! `tests/snapshot.rs` is the evidence.
//!
//! **Forking.** [`SocSnapshot::fork`] produces an independent Soc that
//! continues from the boundary. Shared handles (regulator register
//! files, aggregate budget state) are remapped through a
//! [`fgqos_snap::ForkCtx`] so sharing topology is preserved; external
//! driver handles can join the same context via
//! [`SocSnapshot::fork_with`] plus the driver-side rebinding helpers
//! (e.g. `RegulatorDriver::forked` in `fgqos-core`). Large stat arrays
//! are copy-on-write, so N forks share one warm-up history until they
//! write.
//!
//! **Versioning.** [`SNAPSHOT_VERSION`] is bumped whenever the hash
//! stream's encoding or component order changes, so fingerprints from
//! different stream layouts can never collide silently.

use crate::system::Soc;
use crate::time::Cycle;
use fgqos_snap::{ForkCtx, SnapDecodeError, SnapReader, SnapshotBlob, SnapshotError, StateHasher};

/// Version of the snapshot fingerprint stream. Bumped whenever the
/// encoding or the component traversal order changes; folded into every
/// fingerprint, so fingerprints from different versions never compare
/// equal.
pub const SNAPSHOT_VERSION: u32 = 2;

impl Soc {
    /// FNV-1a 64 fingerprint over the full architectural state: current
    /// cycle, every master (issue state machine, source, gate,
    /// statistics), crossbar, DRAM controller, controllers and the
    /// transaction arena, prefixed by [`SNAPSHOT_VERSION`].
    ///
    /// Callable at any cycle (not only quiesced boundaries); two Socs
    /// with equal fingerprints and equal in-flight state behave
    /// identically from here on.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StateHasher::new();
        self.snap(&mut h);
        h.finish()
    }

    /// Feeds the full architectural state into `h` (the fingerprint
    /// stream; see [`Soc::fingerprint`]).
    pub fn snap(&self, h: &mut StateHasher) {
        h.section("fgqos.soc-snapshot");
        h.write_u32(SNAPSHOT_VERSION);
        h.write_u64(self.freq.hz());
        h.write_cycle(self.cycle.get());
        h.write_bool(self.naive);
        h.write_usize(self.masters.len());
        for m in &self.masters {
            m.snap(h);
        }
        self.xbar.snap(h);
        self.dram.snap(h);
        h.write_usize(self.controllers.len());
        for c in &self.controllers {
            c.snap_state(h);
        }
        self.arena.snap(h);
    }

    /// Deep-copies this Soc, remapping shared handles through `ctx`.
    ///
    /// External driver handles bound to this Soc (e.g. a
    /// `RegulatorDriver` holding the same register file as a gate) can
    /// be rebound to the copy by passing the same `ctx` to their
    /// `forked` helpers, in any order relative to this call.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Unforkable`] when any source, gate or
    /// controller does not implement forking (interrupt dispatchers and
    /// tracing gates are the stock examples).
    pub fn fork_with(&self, ctx: &mut ForkCtx) -> Result<Soc, SnapshotError> {
        let mut masters = Vec::with_capacity(self.masters.len());
        for m in &self.masters {
            masters.push(m.fork(ctx)?);
        }
        let mut controllers = Vec::with_capacity(self.controllers.len());
        for c in &self.controllers {
            controllers.push(c.fork_ctrl(ctx).ok_or_else(|| SnapshotError::Unforkable {
                label: c.label().to_string(),
            })?);
        }
        Ok(Soc {
            freq: self.freq,
            cycle: self.cycle,
            masters,
            xbar: self.xbar.clone(),
            dram: self.dram.clone(),
            controllers,
            arena: self.arena.clone(),
            naive: self.naive,
            // The leap engine is an execution strategy, not architectural
            // state: a fork starts detection fresh with zeroed telemetry.
            leap: crate::leap::LeapState::new(self.leap.enabled),
        })
    }

    /// Captures this Soc into a versioned snapshot, consuming it.
    ///
    /// The Soc must be at a quiesced boundary (see [`Soc::is_quiesced`]
    /// and [`Soc::quiesce_point`]). Forkability of every component is
    /// validated by a probe fork at capture time, so the per-point
    /// [`SocSnapshot::fork`] calls cannot fail later.
    ///
    /// Consuming the Soc keeps its shared handles alive unchanged, which
    /// is what lets external drivers rebind to forks: the `ForkCtx` maps
    /// *original* handle pointers, and the originals live inside the
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NotQuiesced`] when transactions are in flight;
    /// [`SnapshotError::Unforkable`] when a component cannot be forked.
    pub fn snapshot(self) -> Result<SocSnapshot, SnapshotError> {
        if !self.is_quiesced() {
            return Err(SnapshotError::NotQuiesced {
                live_txns: self.arena.live(),
            });
        }
        // Probe fork: surfaces Unforkable now instead of per point.
        let mut probe = ForkCtx::new();
        self.fork_with(&mut probe)?;
        let fingerprint = self.fingerprint();
        Ok(SocSnapshot {
            soc: self,
            fingerprint,
        })
    }

    /// Reconstructs a runnable Soc from a snapshot (a fresh fork; the
    /// snapshot remains usable for further forks).
    pub fn restore(snapshot: &SocSnapshot) -> Soc {
        snapshot.fork()
    }

    /// Loads a serialized state stream (see [`SocSnapshot::state_bytes`])
    /// into this Soc, which must be a freshly built skeleton of the same
    /// scenario: structural, configuration-derived facts (clock, master
    /// identities, crossbar configuration, controller count) are
    /// *verified* against the stream, while mutable architectural state
    /// is overwritten. Callers should re-fingerprint afterwards and
    /// compare against the capture-time fingerprint — that is what makes
    /// a wrong or partial load impossible to miss
    /// (see [`SocSnapshot::load_into`]).
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`]: version mismatch, truncation, a stream
    /// that disagrees with this skeleton, a component that does not
    /// support loading, or trailing bytes. The Soc is left in an
    /// unspecified partially-loaded state on error and must be discarded.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), SnapDecodeError> {
        let mut r = SnapReader::new(bytes);
        r.section("fgqos.soc-snapshot")?;
        let version = r.read_u32("snapshot version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapDecodeError::Version {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let at = r.position();
        let hz = r.read_u64("soc clock hz")?;
        if hz != self.freq.hz() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "soc clock {hz} Hz in stream, skeleton has {}",
                    self.freq.hz()
                ),
                at,
            });
        }
        self.cycle = Cycle::new(r.read_u64("soc cycle")?);
        self.naive = r.read_bool("soc naive flag")?;
        let at = r.position();
        let n = r.read_usize("master count")?;
        if n != self.masters.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "{n} master(s) in stream, skeleton has {}",
                    self.masters.len()
                ),
                at,
            });
        }
        for m in &mut self.masters {
            m.snap_load(&mut r)?;
        }
        self.xbar.snap_load(&mut r)?;
        self.dram.snap_load(&mut r)?;
        let at = r.position();
        let nc = r.read_usize("controller count")?;
        if nc != self.controllers.len() {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "{nc} controller(s) in stream, skeleton has {}",
                    self.controllers.len()
                ),
                at,
            });
        }
        for c in &mut self.controllers {
            c.snap_load(&mut r)?;
        }
        self.arena.snap_load(&mut r)?;
        r.expect_end()
    }
}

/// A [`Soc`] captured at a quiesced boundary, ready to fork N divergent
/// runs.
///
/// ```
/// use fgqos_sim::prelude::*;
///
/// let mut soc = SocBuilder::new(SocConfig::default())
///     .master("dma", SequentialSource::reads(0, 1024, 64), MasterKind::Accelerator)
///     .build();
/// soc.run(5_000);
/// let at = soc.quiesce_point(1_000_000).expect("drains");
/// let snap = soc.snapshot().expect("quiesced and forkable");
/// assert_eq!(snap.cycle(), at);
///
/// // Two forks diverge independently but start bit-identical.
/// let mut a = snap.fork();
/// let mut b = snap.fork();
/// assert_eq!(a.fingerprint(), snap.fingerprint());
/// a.run(10_000);
/// b.run(20_000);
/// ```
pub struct SocSnapshot {
    soc: Soc,
    fingerprint: u64,
}

impl std::fmt::Debug for SocSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocSnapshot")
            .field("version", &SNAPSHOT_VERSION)
            .field("cycle", &self.soc.now())
            .field("fingerprint", &format_args!("{:#018x}", self.fingerprint))
            .finish()
    }
}

impl SocSnapshot {
    /// The fingerprint stream version this snapshot was captured under.
    pub fn version(&self) -> u32 {
        SNAPSHOT_VERSION
    }

    /// Fingerprint of the captured state (see [`Soc::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The boundary cycle the snapshot was captured at.
    pub fn cycle(&self) -> Cycle {
        self.soc.now()
    }

    /// Forks an independent Soc continuing from the captured boundary.
    ///
    /// Use when no external driver handles need rebinding; otherwise see
    /// [`SocSnapshot::fork_with`].
    pub fn fork(&self) -> Soc {
        let mut ctx = ForkCtx::new();
        self.fork_with(&mut ctx)
    }

    /// Forks an independent Soc, remapping shared handles through `ctx`
    /// so external driver handles can be rebound to the same fork (pass
    /// the same `ctx` to the drivers' `forked` helpers).
    pub fn fork_with(&self, ctx: &mut ForkCtx) -> Soc {
        self.soc
            .fork_with(ctx)
            .expect("forkability was validated at capture")
    }

    /// Recomputes the captured state's fingerprint and compares it with
    /// the one recorded at capture (a self-check for tests and debug
    /// assertions; snapshots are immutable, so this can only fail on a
    /// hashing bug).
    pub fn verify(&self) -> bool {
        self.soc.fingerprint() == self.fingerprint
    }

    /// Serializes the captured state to its canonical byte stream: the
    /// exact bytes the fingerprint hashes, captured by running the
    /// [`StateHasher`] in recording mode. By construction,
    /// `fnv64(state_bytes()) == fingerprint()`.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut h = StateHasher::recording();
        self.soc.snap(&mut h);
        debug_assert_eq!(h.finish(), self.fingerprint);
        h.take_bytes()
    }

    /// Packages the snapshot as a durable [`SnapshotBlob`], embedding
    /// `scenario` — the recipe text that rebuilds the structural
    /// skeleton the state loads into (see [`SocSnapshot::load_into`]).
    pub fn to_blob(&self, scenario: impl Into<String>) -> SnapshotBlob {
        SnapshotBlob {
            snapshot_version: SNAPSHOT_VERSION,
            fingerprint: self.fingerprint,
            cycle: self.soc.now().get(),
            scenario: scenario.into(),
            state: self.state_bytes(),
        }
    }

    /// Restores a serialized snapshot: loads `blob`'s state stream into
    /// `soc` (a freshly built skeleton of the blob's embedded scenario)
    /// and re-verifies the fingerprint end to end, so the returned
    /// snapshot forks runs bit-identical to forks of the original.
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`]; in particular
    /// [`SnapDecodeError::Version`] for an incompatible stream version
    /// and [`SnapDecodeError::FingerprintMismatch`] when the loaded
    /// state does not hash back to the fingerprint recorded at capture.
    pub fn load_into(mut soc: Soc, blob: &SnapshotBlob) -> Result<SocSnapshot, SnapDecodeError> {
        if blob.snapshot_version != SNAPSHOT_VERSION {
            return Err(SnapDecodeError::Version {
                found: blob.snapshot_version,
                expected: SNAPSHOT_VERSION,
            });
        }
        soc.load_state(&blob.state)?;
        if soc.now().get() != blob.cycle {
            return Err(SnapDecodeError::BadValue {
                what: format!(
                    "blob header cycle {} disagrees with state-stream cycle {}",
                    blob.cycle,
                    soc.now().get()
                ),
                at: 0,
            });
        }
        let fingerprint = soc.fingerprint();
        if fingerprint != blob.fingerprint {
            return Err(SnapDecodeError::FingerprintMismatch {
                expected: blob.fingerprint,
                found: fingerprint,
            });
        }
        soc.snapshot().map_err(|e| match e {
            SnapshotError::Unforkable { label } => {
                SnapDecodeError::Unsupported { component: label }
            }
            SnapshotError::NotQuiesced { live_txns } => SnapDecodeError::BadValue {
                what: format!("{live_txns} live transaction(s) after load"),
                at: 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::MasterId;
    use crate::dram::DramConfig;
    use crate::master::{MasterKind, SequentialSource};
    use crate::system::{SocBuilder, SocConfig};

    fn cfg() -> SocConfig {
        SocConfig {
            dram: DramConfig {
                t_refi: 0,
                ..DramConfig::default()
            },
            ..SocConfig::default()
        }
    }

    fn two_master_soc() -> Soc {
        SocBuilder::new(cfg())
            .master(
                "dma",
                SequentialSource::reads(0, 1024, 400).with_gap(500),
                MasterKind::Accelerator,
            )
            .master(
                "cpu",
                SequentialSource::reads(1 << 24, 256, 400).with_think_time(300),
                MasterKind::Cpu,
            )
            .build()
    }

    #[test]
    fn quiesce_point_reaches_empty_pipeline() {
        let mut soc = two_master_soc();
        soc.run(10_000);
        let at = soc
            .quiesce_point(10_000_000)
            .expect("gapped traffic drains");
        assert!(soc.is_quiesced());
        assert_eq!(soc.now(), at);
    }

    #[test]
    fn snapshot_rejects_in_flight_state() {
        let mut soc = SocBuilder::new(cfg())
            .master(
                "dma",
                SequentialSource::reads(0, 4096, u64::MAX),
                MasterKind::Accelerator,
            )
            .build();
        soc.run(5_000);
        assert!(!soc.is_quiesced(), "saturated soc must have live txns");
        match soc.snapshot() {
            Err(SnapshotError::NotQuiesced { live_txns }) => assert!(live_txns > 0),
            other => panic!("expected NotQuiesced, got {other:?}"),
        }
    }

    #[test]
    fn fork_continues_bit_identical_to_original() {
        let mut soc = two_master_soc();
        soc.run(20_000);
        soc.quiesce_point(10_000_000).expect("drains");
        let baseline = soc.fingerprint();
        let snap = soc.snapshot().expect("quiesced");
        assert_eq!(snap.fingerprint(), baseline);
        assert!(snap.verify());

        let mut a = snap.fork();
        let mut b = Soc::restore(&snap);
        assert_eq!(a.fingerprint(), baseline);
        a.run(50_000);
        b.run(50_000);
        assert_eq!(a.fingerprint(), b.fingerprint(), "forks must not diverge");
        assert_ne!(a.fingerprint(), baseline, "runs must make progress");
        assert_eq!(
            a.master_stats(MasterId::new(0)).completed_txns,
            b.master_stats(MasterId::new(0)).completed_txns
        );
    }

    #[test]
    fn forks_are_independent() {
        let mut soc = two_master_soc();
        soc.run(20_000);
        soc.quiesce_point(10_000_000).expect("drains");
        let snap = soc.snapshot().expect("quiesced");
        let mut a = snap.fork();
        let b = snap.fork();
        let b_before = b.fingerprint();
        a.run(100_000);
        assert_eq!(
            b.fingerprint(),
            b_before,
            "running a fork must not touch another"
        );
    }

    #[test]
    fn serialized_state_restores_bit_identical() {
        let mut soc = two_master_soc();
        soc.run(20_000);
        soc.quiesce_point(10_000_000).expect("drains");
        let snap = soc.snapshot().expect("quiesced");
        let blob = snap.to_blob("two_master_soc");
        assert_eq!(fgqos_snap::fnv64(&blob.state), snap.fingerprint());

        let enc = blob.encode();
        let dec = SnapshotBlob::decode(&enc).expect("container round-trips");
        let restored = SocSnapshot::load_into(two_master_soc(), &dec).expect("state loads");
        assert_eq!(restored.fingerprint(), snap.fingerprint());
        assert_eq!(restored.cycle(), snap.cycle());

        let mut a = snap.fork();
        let mut b = restored.fork();
        a.run(50_000);
        b.run(50_000);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "restored fork diverged from in-memory fork"
        );
    }

    #[test]
    fn load_rejects_wrong_version_flips_and_wrong_skeleton() {
        let mut soc = two_master_soc();
        soc.run(20_000);
        soc.quiesce_point(10_000_000).expect("drains");
        let snap = soc.snapshot().expect("quiesced");
        let blob = snap.to_blob("two_master_soc");

        // Wrong snapshot version fails before any state is interpreted.
        let mut wrong = blob.clone();
        wrong.snapshot_version = SNAPSHOT_VERSION + 1;
        assert!(matches!(
            SocSnapshot::load_into(two_master_soc(), &wrong),
            Err(SnapDecodeError::Version { .. })
        ));

        // A flipped state byte that slips past the container checksum is
        // still caught — by a decode error or the final fingerprint check,
        // never a panic or silent acceptance.
        for pos in [10, blob.state.len() / 2, blob.state.len() - 9] {
            let mut bad = blob.clone();
            bad.state[pos] ^= 0x01;
            assert!(
                SocSnapshot::load_into(two_master_soc(), &bad).is_err(),
                "flipped state byte {pos} loaded cleanly"
            );
        }

        // Loading into a structurally different skeleton is diagnostic.
        let other = SocBuilder::new(cfg())
            .master(
                "other",
                SequentialSource::reads(0, 1024, 10),
                MasterKind::Accelerator,
            )
            .build();
        assert!(matches!(
            SocSnapshot::load_into(other, &blob),
            Err(SnapDecodeError::BadValue { .. })
        ));
    }

    #[test]
    fn quiesce_point_times_out_under_saturation() {
        let mut soc = SocBuilder::new(cfg())
            .master(
                "dma",
                SequentialSource::reads(0, 4096, u64::MAX),
                MasterKind::Accelerator,
            )
            .build();
        soc.run(5_000);
        // An unregulated streaming master keeps the pipeline full.
        assert_eq!(soc.quiesce_point(50_000), None);
    }
}
