//! Struct-of-arrays arena for in-flight AXI transactions.
//!
//! Every transaction accepted into the interconnect lives in one
//! [`TxnArena`] slot from acceptance to completion. Components on the
//! memory path (crossbar port FIFOs, the DRAM request queue and service
//! list) carry a 8-byte generational [`TxnId`] instead of a full
//! [`Request`], so moving a transaction between queues copies one word
//! and the scheduler scans dense columns instead of pointer-sized
//! records.
//!
//! Slots are recycled through a free list; the per-slot generation
//! counter turns use-after-release into a deterministic panic instead of
//! silent aliasing. The arena never shrinks — a simulation's live-set
//! high-water mark (bounded by FIFO depths and the DRAM queue) is a few
//! dozen slots, allocated once and reused for the rest of the run.

use crate::axi::{Dir, MasterId, Request};
use crate::time::Cycle;

/// Generational handle to one in-flight transaction in a [`TxnArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnId {
    idx: u32,
    gen: u32,
}

impl TxnId {
    /// Dense slot index (stable while the transaction is in flight).
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

/// Struct-of-arrays storage for in-flight transactions.
///
/// ```
/// use fgqos_sim::arena::TxnArena;
/// use fgqos_sim::axi::{Dir, MasterId, Request};
/// use fgqos_sim::time::Cycle;
///
/// let mut arena = TxnArena::new();
/// let req = Request::new(MasterId::new(0), 7, 0x1000, 4, Dir::Read, Cycle::new(3));
/// let id = arena.alloc(&req);
/// assert_eq!(arena.master(id), MasterId::new(0));
/// assert_eq!(arena.take(id), req);
/// assert_eq!(arena.live(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TxnArena {
    master: Vec<MasterId>,
    serial: Vec<u64>,
    addr: Vec<u64>,
    beats: Vec<u16>,
    dir: Vec<Dir>,
    issued_at: Vec<Cycle>,
    accepted_at: Vec<Cycle>,
    gen: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl TxnArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TxnArena::default()
    }

    /// Number of transactions currently in flight.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (the live-set high-water mark).
    pub fn capacity(&self) -> usize {
        self.gen.len()
    }

    /// Copies `req` into a slot and returns its handle.
    pub fn alloc(&mut self, req: &Request) -> TxnId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            self.master[i] = req.master;
            self.serial[i] = req.serial;
            self.addr[i] = req.addr;
            self.beats[i] = req.beats;
            self.dir[i] = req.dir;
            self.issued_at[i] = req.issued_at;
            self.accepted_at[i] = req.accepted_at;
            TxnId {
                idx,
                gen: self.gen[i],
            }
        } else {
            let idx = self.gen.len() as u32;
            self.master.push(req.master);
            self.serial.push(req.serial);
            self.addr.push(req.addr);
            self.beats.push(req.beats);
            self.dir.push(req.dir);
            self.issued_at.push(req.issued_at);
            self.accepted_at.push(req.accepted_at);
            self.gen.push(0);
            TxnId { idx, gen: 0 }
        }
    }

    #[inline]
    fn check(&self, id: TxnId) -> usize {
        let i = id.idx as usize;
        assert_eq!(
            self.gen.get(i).copied(),
            Some(id.gen),
            "stale or invalid TxnId"
        );
        i
    }

    /// Issuing master of the transaction.
    #[inline]
    pub fn master(&self, id: TxnId) -> MasterId {
        self.master[self.check(id)]
    }

    /// First-beat byte address of the transaction.
    #[inline]
    pub fn addr(&self, id: TxnId) -> u64 {
        self.addr[self.check(id)]
    }

    /// Burst length in beats.
    #[inline]
    pub fn beats(&self, id: TxnId) -> u16 {
        self.beats[self.check(id)]
    }

    /// Transfer direction.
    #[inline]
    pub fn dir(&self, id: TxnId) -> Dir {
        self.dir[self.check(id)]
    }

    /// Reconstructs the full [`Request`] stored in the slot.
    pub fn request(&self, id: TxnId) -> Request {
        let i = self.check(id);
        let mut req = Request::new(
            self.master[i],
            self.serial[i],
            self.addr[i],
            self.beats[i],
            self.dir[i],
            self.issued_at[i],
        );
        req.accepted_at = self.accepted_at[i];
        req
    }

    /// Feeds the arena's slot-recycling state into a snapshot
    /// fingerprint.
    ///
    /// At a quiesced boundary no transaction is live, but the generation
    /// counters and free-list order still determine which `TxnId`s
    /// future allocations receive, so they are architectural state: two
    /// arenas that differ here diverge on the very next `alloc`.
    pub fn snap(&self, h: &mut fgqos_snap::StateHasher) {
        h.section("arena");
        h.write_usize(self.live);
        h.write_usize(self.gen.len());
        for &g in &self.gen {
            // Slot generations accumulate with wrapping arithmetic (see
            // `take`), so a leap advances them as wrapping counters.
            h.write_counter_u32(g);
        }
        for &f in &self.free {
            h.write_u32(f);
        }
    }

    /// Restores the arena from a serialized snapshot stream (the decode
    /// mirror of [`TxnArena::snap`]).
    ///
    /// Only quiesced arenas can be loaded: live slots would need their
    /// SoA payload columns reconstructed, which the stream (rightly)
    /// does not carry. With zero live slots the free list spans every
    /// slot, and the payload columns hold only dead values that the next
    /// `alloc` overwrites — placeholders suffice.
    ///
    /// # Errors
    ///
    /// Any [`SnapDecodeError`](fgqos_snap::SnapDecodeError) aborts the whole load; a non-zero live
    /// count is a diagnostic [`BadValue`](fgqos_snap::SnapDecodeError::BadValue).
    pub fn snap_load(
        &mut self,
        r: &mut fgqos_snap::SnapReader<'_>,
    ) -> Result<(), fgqos_snap::SnapDecodeError> {
        use fgqos_snap::SnapDecodeError;
        r.section("arena")?;
        let at = r.position();
        let live = r.read_usize("arena live")?;
        if live != 0 {
            return Err(SnapDecodeError::BadValue {
                what: format!("arena has {live} live transaction(s); only quiesced snapshots load"),
                at,
            });
        }
        let slots = r.read_usize("arena slot count")?;
        let mut gen = Vec::new();
        for _ in 0..slots {
            gen.push(r.read_u32("arena generation")?);
        }
        let mut free = Vec::new();
        for _ in 0..slots {
            let at = r.position();
            let f = r.read_u32("arena free slot")?;
            if f as usize >= slots {
                return Err(SnapDecodeError::BadValue {
                    what: format!("arena free-list entry {f} out of range for {slots} slot(s)"),
                    at,
                });
            }
            free.push(f);
        }
        self.live = 0;
        self.gen = gen;
        self.free = free;
        self.master = vec![MasterId::new(0); slots];
        self.serial = vec![0; slots];
        self.addr = vec![0; slots];
        self.beats = vec![0; slots];
        self.dir = vec![Dir::Read; slots];
        self.issued_at = vec![Cycle::ZERO; slots];
        self.accepted_at = vec![Cycle::ZERO; slots];
        Ok(())
    }

    /// Reconstructs the [`Request`] and releases the slot for reuse.
    pub fn take(&mut self, id: TxnId) -> Request {
        let req = self.request(id);
        let i = id.idx as usize;
        self.gen[i] = self.gen[i].wrapping_add(1);
        self.free.push(id.idx);
        self.live -= 1;
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(serial: u64) -> Request {
        let mut r = Request::new(
            MasterId::new(2),
            serial,
            serial * 512,
            32,
            Dir::Write,
            Cycle::new(10),
        );
        r.accepted_at = Cycle::new(12);
        r
    }

    #[test]
    fn roundtrip_preserves_all_fields() {
        let mut a = TxnArena::new();
        let id = a.alloc(&req(5));
        assert_eq!(a.master(id), MasterId::new(2));
        assert_eq!(a.addr(id), 5 * 512);
        assert_eq!(a.beats(id), 32);
        assert_eq!(a.dir(id), Dir::Write);
        assert_eq!(a.request(id), req(5));
        assert_eq!(a.take(id), req(5));
    }

    #[test]
    fn slots_recycle_through_free_list() {
        let mut a = TxnArena::new();
        let id0 = a.alloc(&req(0));
        let id1 = a.alloc(&req(1));
        assert_eq!(a.capacity(), 2);
        a.take(id0);
        let id2 = a.alloc(&req(2));
        // Slot reused, no growth.
        assert_eq!(id2.index(), id0.index());
        assert_eq!(a.capacity(), 2);
        assert_eq!(a.live(), 2);
        assert_eq!(a.request(id1).serial, 1);
        assert_eq!(a.request(id2).serial, 2);
    }

    #[test]
    #[should_panic(expected = "stale or invalid TxnId")]
    fn stale_handle_panics() {
        let mut a = TxnArena::new();
        let id = a.alloc(&req(0));
        a.take(id);
        let _ = a.request(id);
    }

    #[test]
    #[should_panic(expected = "stale or invalid TxnId")]
    fn reused_slot_rejects_old_generation() {
        let mut a = TxnArena::new();
        let id = a.alloc(&req(0));
        a.take(id);
        let _ = a.alloc(&req(1)); // same slot, new generation
        let _ = a.master(id);
    }
}
