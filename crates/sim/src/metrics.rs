//! Structured metrics: a pull-based registry with stable hierarchical
//! names and CSV/JSON export.
//!
//! # Design: zero cost when disabled
//!
//! The simulator's hot loop never touches this module. Components keep
//! their existing plain counters ([`crate::stats`]); a
//! [`MetricsRegistry`] is only materialized when a caller asks for a
//! snapshot (e.g. [`Soc::collect_metrics`](crate::system::Soc::collect_metrics)),
//! which *pulls* every counter, gauge and histogram out of the live
//! components at that instant. Not collecting metrics therefore costs
//! zero cycles and zero allocations — an invariant the observability
//! proptests pin down (see `tests/observability.rs`).
//!
//! # Naming scheme
//!
//! Metric names are dot-separated hierarchical paths, stable across
//! releases (documented in `docs/observability.md`):
//!
//! ```text
//! soc.cycle                                   simulation time (counter)
//! soc.master.<name>.bytes_completed           per-master counters
//! soc.master.<name>.latency                   request latency (histogram)
//! soc.master.<name>.gate.<metric>             gate/regulator telemetry
//! soc.xbar.<metric>                           crossbar configuration
//! soc.dram.<metric>                           DRAM controller counters
//! ```
//!
//! Components below the SoC expose their metrics through
//! [`PortGate::collect_metrics`](crate::gate::PortGate::collect_metrics)
//! (regulators) or are walked directly by the SoC snapshot.

use crate::json::Value;
use crate::stats::LatencyStats;

/// Point-in-time summary of a [`LatencyStats`] histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

impl From<&LatencyStats> for HistogramSnapshot {
    fn from(s: &LatencyStats) -> Self {
        HistogramSnapshot {
            count: s.count(),
            mean: s.mean(),
            min: s.min(),
            max: s.max(),
            p50: s.percentile(0.50),
            p90: s.percentile(0.90),
            p99: s.percentile(0.99),
        }
    }
}

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count (bytes, transactions, stall cycles, ...).
    Counter(u64),
    /// Instantaneous measurement (bandwidth, configured budget, ...).
    Gauge(f64),
    /// Static descriptive text (component labels, schemes).
    Text(String),
    /// Distribution summary.
    Histogram(HistogramSnapshot),
}

/// Schema identifier written into every metrics JSON export.
pub const METRICS_SCHEMA: &str = "fgqos.metrics";
/// Schema version written into every metrics JSON export.
pub const METRICS_VERSION: u64 = 1;

/// An ordered collection of named metrics.
///
/// Names are hierarchical dot-paths (see the module docs). Registration
/// order is preserved so exports are deterministic; re-registering a
/// name overwrites the previous value.
///
/// ```
/// use fgqos_sim::metrics::{MetricsRegistry, MetricValue};
///
/// let mut reg = MetricsRegistry::new();
/// reg.counter("soc.master.dma0.bytes_completed", 4096);
/// reg.gauge("soc.master.dma0.bandwidth_bytes_per_s", 1.6e9);
/// assert_eq!(
///     reg.get("soc.master.dma0.bytes_completed"),
///     Some(&MetricValue::Counter(4096))
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn insert(&mut self, name: String, value: MetricValue) {
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.entries.push((name, value));
        }
    }

    /// Registers a monotonic counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.insert(name.into(), MetricValue::Counter(value));
    }

    /// Registers an instantaneous gauge.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.insert(name.into(), MetricValue::Gauge(value));
    }

    /// Registers a static text attribute.
    pub fn text(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.insert(name.into(), MetricValue::Text(value.into()));
    }

    /// Registers a histogram snapshot taken from live [`LatencyStats`].
    pub fn histogram(&mut self, name: impl Into<String>, stats: &LatencyStats) {
        self.insert(name.into(), MetricValue::Histogram(stats.into()));
    }

    /// Looks up a metric by its full name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// All metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the registry as a schema-versioned JSON document:
    /// `{"schema": "fgqos.metrics", "version": 1, "metrics": {...}}`,
    /// with histograms expanded into objects.
    pub fn to_json(&self) -> Value {
        let mut metrics = Value::obj();
        for (name, value) in &self.entries {
            let v = match value {
                MetricValue::Counter(c) => Value::from(*c),
                MetricValue::Gauge(g) => Value::from(*g),
                MetricValue::Text(t) => Value::str(t.clone()),
                MetricValue::Histogram(h) => {
                    let mut obj = Value::obj();
                    obj.set("count", Value::from(h.count));
                    obj.set("mean", Value::from(h.mean));
                    obj.set("min", Value::from(h.min));
                    obj.set("max", Value::from(h.max));
                    obj.set("p50", Value::from(h.p50));
                    obj.set("p90", Value::from(h.p90));
                    obj.set("p99", Value::from(h.p99));
                    obj
                }
            };
            metrics.set(name.clone(), v);
        }
        let mut doc = Value::obj();
        doc.set("schema", Value::str(METRICS_SCHEMA));
        doc.set("version", Value::from(METRICS_VERSION));
        doc.set("metrics", metrics);
        doc
    }

    /// Serializes the registry as CSV with a schema-version comment line.
    ///
    /// Histograms are flattened to one row per summary statistic
    /// (`<name>.count`, `<name>.mean`, ... `<name>.p99`) so the output
    /// stays strictly `name,type,value`.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {METRICS_SCHEMA} v{METRICS_VERSION}\nname,type,value\n");
        let mut push = |name: &str, kind: &str, value: String| {
            out.push_str(name);
            out.push(',');
            out.push_str(kind);
            out.push(',');
            out.push_str(&value);
            out.push('\n');
        };
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => push(name, "counter", c.to_string()),
                MetricValue::Gauge(g) => push(name, "gauge", format!("{g}")),
                MetricValue::Text(t) => push(name, "text", t.clone()),
                MetricValue::Histogram(h) => {
                    push(&format!("{name}.count"), "histogram", h.count.to_string());
                    push(&format!("{name}.mean"), "histogram", format!("{}", h.mean));
                    push(&format!("{name}.min"), "histogram", h.min.to_string());
                    push(&format!("{name}.max"), "histogram", h.max.to_string());
                    push(&format!("{name}.p50"), "histogram", h.p50.to_string());
                    push(&format!("{name}.p90"), "histogram", h.p90.to_string());
                    push(&format!("{name}.p99"), "histogram", h.p99.to_string());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_overwrites_and_preserves_order() {
        let mut reg = MetricsRegistry::new();
        reg.counter("b.second", 1);
        reg.counter("a.first", 2);
        reg.counter("b.second", 3);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["b.second", "a.first"]);
        assert_eq!(reg.get("b.second"), Some(&MetricValue::Counter(3)));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn histogram_snapshot_matches_stats() {
        let mut s = LatencyStats::new();
        for v in 1..=100u64 {
            s.record(v);
        }
        let mut reg = MetricsRegistry::new();
        reg.histogram("lat", &s);
        let Some(MetricValue::Histogram(h)) = reg.get("lat") else {
            panic!("expected histogram");
        };
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert_eq!(h.p50, s.percentile(0.5));
    }

    #[test]
    fn json_export_is_schema_versioned() {
        let mut reg = MetricsRegistry::new();
        reg.counter("soc.cycle", 1000);
        reg.text("soc.master.a.gate.kind", "tc");
        let doc = reg.to_json();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(METRICS_SCHEMA));
        assert_eq!(doc.get("version").unwrap().as_u64(), Some(METRICS_VERSION));
        let m = doc.get("metrics").unwrap();
        assert_eq!(m.get("soc.cycle").unwrap().as_u64(), Some(1000));
        assert_eq!(
            m.get("soc.master.a.gate.kind").unwrap().as_str(),
            Some("tc")
        );
    }

    #[test]
    fn csv_export_flattens_histograms() {
        let mut s = LatencyStats::new();
        s.record(10);
        let mut reg = MetricsRegistry::new();
        reg.counter("c", 5);
        reg.histogram("h", &s);
        let csv = reg.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("# fgqos.metrics v1"));
        assert_eq!(lines.next(), Some("name,type,value"));
        assert_eq!(lines.next(), Some("c,counter,5"));
        assert!(csv.contains("h.count,histogram,1"));
        assert!(csv.contains("h.p99,histogram,10"));
    }
}
